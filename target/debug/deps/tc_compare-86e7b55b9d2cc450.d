/root/repo/target/debug/deps/tc_compare-86e7b55b9d2cc450.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtc_compare-86e7b55b9d2cc450.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
