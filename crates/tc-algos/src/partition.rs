//! 2-D work partitioning for multi-device runs, after TRUST's
//! partitioned layout (Pandey et al., TPDS 2021): the oriented edge list
//! is split into per-device tiles along a contiguous, degree-balanced
//! vertex cut. Device `d` owns pivot vertices `[b[d], b[d+1])` and —
//! because the edge arrays are in CSR order — the contiguous edge range
//! `[offsets[b[d]], offsets[b[d+1]])`. Every oriented triangle is rooted
//! at exactly one pivot (vertex iterators) or base edge (edge
//! iterators), so per-device counts sum to the single-device total
//! exactly, for every algorithm.
//!
//! The 2-D structure shows up in the traffic model: each device's probes
//! into adjacency lists homed on *other* tiles form a (owner, home) tile
//! matrix; [`PartitionPlan::remote_bytes_by_tile`] prices each off-
//! diagonal tile as one (offset, degree) descriptor plus the list words
//! per distinct remote destination.

/// A contiguous degree-balanced vertex partition of an oriented DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `num_devices + 1` vertex boundaries: device `d` owns the pivot
    /// vertices `[boundaries[d], boundaries[d + 1])`. Always starts at
    /// 0 and ends at `num_vertices`.
    pub boundaries: Vec<u32>,
}

impl PartitionPlan {
    /// Cut the vertex space into `num_devices` contiguous spans with
    /// near-equal *edge* (out-degree prefix) weight: boundary `d` is the
    /// first vertex whose prefix degree reaches `d/num_devices` of the
    /// total. Devices at the tail may own empty spans on tiny graphs.
    pub fn balanced(offsets: &[u32], num_devices: u32) -> PartitionPlan {
        assert!(num_devices >= 1, "need at least one device");
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        let nv = (offsets.len() - 1) as u32;
        let total = *offsets.last().unwrap() as u64;
        let n = num_devices as u64;
        let mut boundaries = Vec::with_capacity(num_devices as usize + 1);
        boundaries.push(0);
        let mut v = 0u32;
        for d in 1..num_devices as u64 {
            // Smallest vertex whose edge prefix covers share d/n.
            let target = total * d / n;
            while v < nv && (offsets[v as usize] as u64) < target {
                v += 1;
            }
            boundaries.push(v);
        }
        boundaries.push(nv);
        PartitionPlan { boundaries }
    }

    pub fn num_devices(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Pivot-vertex span owned by device `d`.
    pub fn pivot_range(&self, d: usize) -> (u32, u32) {
        (self.boundaries[d], self.boundaries[d + 1])
    }

    /// Edge span owned by device `d` under `offsets`.
    pub fn edge_range(&self, offsets: &[u32], d: usize) -> (u32, u32) {
        let (lo, hi) = self.pivot_range(d);
        (offsets[lo as usize], offsets[hi as usize])
    }

    /// Which device owns vertex `v`.
    pub fn owner_of(&self, v: u32) -> usize {
        // boundaries is sorted; find the last boundary <= v.
        match self.boundaries.binary_search(&v) {
            // v may equal several identical boundaries (empty spans);
            // ownership goes to the first non-empty span starting at v.
            Ok(mut i) => {
                while i + 1 < self.boundaries.len() && self.boundaries[i + 1] == v {
                    i += 1;
                }
                i.min(self.num_devices() - 1)
            }
            Err(i) => i - 1,
        }
    }

    /// Interconnect traffic of device `d`, by *home tile*: entry `j` is
    /// the bytes device `d` must pull from device `j`'s slice of the
    /// adjacency data — for every **distinct** remote destination `v` of
    /// an owned edge, one 8-byte (offset, degree) descriptor plus
    /// `4 * out_degree(v)` list bytes. Entry `d` is always 0 (local
    /// reads are priced by the kernel's own memory model).
    pub fn remote_bytes_by_tile(&self, offsets: &[u32], dst: &[u32], d: usize) -> Vec<u64> {
        let mut by_tile = vec![0u64; self.num_devices()];
        let (e_lo, e_hi) = self.edge_range(offsets, d);
        let mut seen = std::collections::HashSet::new();
        for &v in &dst[e_lo as usize..e_hi as usize] {
            let home = self.owner_of(v);
            if home == d || !seen.insert(v) {
                continue;
            }
            let deg = (offsets[v as usize + 1] - offsets[v as usize]) as u64;
            by_tile[home] += 8 + 4 * deg;
        }
        by_tile
    }

    /// Total interconnect bytes device `d` pulls from all remote tiles.
    pub fn remote_bytes(&self, offsets: &[u32], dst: &[u32], d: usize) -> u64 {
        self.remote_bytes_by_tile(offsets, dst, d).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_data::{clean_edges, gen, orient, Orientation};

    fn fixture_offsets() -> (Vec<u32>, Vec<u32>) {
        let raw = gen::barabasi_albert(300, 5, 0.3, 11);
        let (g, _) = clean_edges(&raw);
        let dag = orient(&g, Orientation::DegreeAsc);
        let (_, dst) = dag.edge_arrays();
        (dag.csr().offsets().to_vec(), dst)
    }

    #[test]
    fn balanced_boundaries_are_monotone_and_cover() {
        let (offsets, _) = fixture_offsets();
        for n in [1u32, 2, 3, 4, 8] {
            let plan = PartitionPlan::balanced(&offsets, n);
            assert_eq!(plan.num_devices(), n as usize);
            assert_eq!(plan.boundaries[0], 0);
            assert_eq!(*plan.boundaries.last().unwrap() as usize, offsets.len() - 1);
            assert!(plan.boundaries.windows(2).all(|w| w[0] <= w[1]));
            // Edge spans partition the edge list.
            let mut covered = 0u32;
            for d in 0..plan.num_devices() {
                let (lo, hi) = plan.edge_range(&offsets, d);
                assert_eq!(lo, covered);
                covered = hi;
            }
            assert_eq!(covered, *offsets.last().unwrap());
        }
    }

    #[test]
    fn single_device_plan_is_the_full_range() {
        let (offsets, _) = fixture_offsets();
        let plan = PartitionPlan::balanced(&offsets, 1);
        assert_eq!(plan.boundaries, vec![0, (offsets.len() - 1) as u32]);
        assert_eq!(plan.edge_range(&offsets, 0), (0, *offsets.last().unwrap()));
    }

    #[test]
    fn balanced_cut_is_roughly_even_by_edges() {
        let (offsets, _) = fixture_offsets();
        let total = *offsets.last().unwrap() as u64;
        let plan = PartitionPlan::balanced(&offsets, 4);
        let max_deg = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u64)
            .max()
            .unwrap();
        for d in 0..4 {
            let (lo, hi) = plan.edge_range(&offsets, d);
            // Each span is within one max-degree of the ideal share.
            assert!(
                ((hi - lo) as u64) <= total / 4 + max_deg,
                "device {d} owns {} of {total} edges",
                hi - lo
            );
        }
    }

    #[test]
    fn owner_of_matches_pivot_ranges() {
        let (offsets, _) = fixture_offsets();
        let plan = PartitionPlan::balanced(&offsets, 4);
        for d in 0..plan.num_devices() {
            let (lo, hi) = plan.pivot_range(d);
            for v in lo..hi {
                assert_eq!(plan.owner_of(v), d, "vertex {v}");
            }
        }
    }

    #[test]
    fn remote_bytes_diagonal_is_zero_and_prices_descriptors() {
        let (offsets, dst) = fixture_offsets();
        let plan = PartitionPlan::balanced(&offsets, 4);
        for d in 0..4 {
            let by_tile = plan.remote_bytes_by_tile(&offsets, &dst, d);
            assert_eq!(by_tile.len(), 4);
            assert_eq!(by_tile[d], 0, "local reads are free on the link");
            assert_eq!(
                by_tile.iter().sum::<u64>(),
                plan.remote_bytes(&offsets, &dst, d)
            );
        }
        // One device owning everything needs no interconnect at all.
        let solo = PartitionPlan::balanced(&offsets, 1);
        assert_eq!(solo.remote_bytes(&offsets, &dst, 0), 0);
    }

    #[test]
    fn remote_bytes_count_distinct_destinations_once() {
        // Path 0->1, 0->2, plus a duplicate probe target via 3->2: with
        // a cut {0,1} | {2,3}, device 0 touches remote vertex 1? No —
        // hand-build: edges 0->2 twice is impossible (simple graph), so
        // use two edges sharing a destination: 0->2 and 1->2.
        let offsets = vec![0u32, 1, 2, 2, 2];
        let dst = vec![2u32, 2];
        let plan = PartitionPlan {
            boundaries: vec![0, 2, 4],
        };
        // Device 0 owns both edges; their shared destination 2 is remote
        // (degree 0) and must be priced exactly once: 8 + 0 bytes.
        assert_eq!(plan.remote_bytes(&offsets, &dst, 0), 8);
        assert_eq!(plan.remote_bytes(&offsets, &dst, 1), 0);
    }

    #[test]
    fn more_devices_never_decrease_total_traffic() {
        let (offsets, dst) = fixture_offsets();
        let mut prev = 0u64;
        for n in [1u32, 2, 4, 8] {
            let plan = PartitionPlan::balanced(&offsets, n);
            let total: u64 = (0..plan.num_devices())
                .map(|d| plan.remote_bytes(&offsets, &dst, d))
                .sum();
            assert!(
                total >= prev,
                "splitting finer should not reduce interconnect traffic"
            );
            prev = total;
        }
    }
}
