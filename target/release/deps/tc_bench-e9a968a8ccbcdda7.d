/root/repo/target/release/deps/tc_bench-e9a968a8ccbcdda7.d: crates/tc-bench/src/lib.rs

/root/repo/target/release/deps/libtc_bench-e9a968a8ccbcdda7.rlib: crates/tc-bench/src/lib.rs

/root/repo/target/release/deps/libtc_bench-e9a968a8ccbcdda7.rmeta: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
