/root/repo/target/debug/deps/proptest_sim-2380a921b39a4c0d.d: crates/gpu-sim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-2380a921b39a4c0d: crates/gpu-sim/tests/proptest_sim.rs

crates/gpu-sim/tests/proptest_sim.rs:
