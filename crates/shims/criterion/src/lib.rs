//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain mean-of-samples wall-clock
//! measurement printed to stdout — no statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Mean wall time per iteration of the latest `iter` call.
    last_mean: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim's measurement length is
    /// `sample_size` iterations, not a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:?}/iter (mean of {} samples)",
            self.name, id.id, b.last_mean, self.sample_size
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(100),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
