/root/repo/target/release/deps/rand-e876ba1f4bdc515c.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e876ba1f4bdc515c.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e876ba1f4bdc515c.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
