/root/repo/target/debug/deps/fig13b-95612ef6e0bdb4c2.d: crates/tc-bench/src/bin/fig13b.rs

/root/repo/target/debug/deps/fig13b-95612ef6e0bdb4c2: crates/tc-bench/src/bin/fig13b.rs

crates/tc-bench/src/bin/fig13b.rs:
