//! SimLint: barrier-divergence verification plus kernel performance
//! lints, in the GPUVerify / profiler-rules tradition, adapted to the
//! lockstep phase model.
//!
//! Two halves share this module:
//!
//! * **Barrier-divergence verifier** ([`BarrierLint`]) — the one kernel
//!   bug class that *hangs* real GPUs and that neither the race
//!   detector nor SimSan can see. Kernels mark explicit barrier
//!   arrivals with [`LaneCtx::sync_threads`](crate::LaneCtx::sync_threads)
//!   and early exits with [`LaneCtx::retire`](crate::LaneCtx::retire);
//!   at every phase end the verifier checks that all live (non-retired)
//!   lanes of the block agree on how many barriers they reached. A lane
//!   that retires — or simply branches around a `sync_threads` its
//!   siblings execute — while the rest of the block waits is exactly
//!   the deadlock shape `__syncthreads` under divergence produces, so
//!   the rule is **fatal**: the block is poisoned with
//!   [`SimError::BarrierDivergence`], analogous to
//!   [`SimError::DataRace`](crate::SimError::DataRace).
//! * **Performance lints** ([`LintObserver`]) — advisory findings fed
//!   by the fused replay stream: uncoalesced global access (sustained
//!   transactions/request above a rule threshold), shared-memory
//!   bank-conflict hotspots (per-phase conflict-way histogram using the
//!   same bank model `cost.rs` charges for), atomic contention
//!   (same-address serialization depth within a warp) and low-occupancy
//!   phases (active vs issued thread slots). These never fail a launch
//!   — they are the paper's "why this kernel loses" profiler narrative
//!   turned into structured, pinned diagnostics — and surface as a
//!   [`LintReport`] attached to
//!   [`LaunchStats`](crate::LaunchStats).
//!
//! Like the race detector and SimSan, SimLint is off by default
//! (per-launch [`KernelConfig::with_lints`](crate::KernelConfig::with_lints),
//! per-device [`Device::with_lints`](crate::Device::with_lints)) and is
//! zero-perturbation: observers only *read* values the replay already
//! computed, so counters and cycles are byte-identical lints-on vs
//! lints-off.

use std::fmt;

use crate::error::SimError;
use crate::mem::DeviceMem;
use crate::WARP_SIZE;

// ---------------------------------------------------------------------
// Shared source-location vocabulary
// ---------------------------------------------------------------------

/// The one source-location representation every diagnostic engine in the
/// simulator (race detector, SimSan, SimLint) renders its `pc_hint`
/// through. A closure-kernel model has no program counters, so the most
/// precise stable location the stack can name is "which barrier phase,
/// which memory site" — previously three ad-hoc `format!` copies, now a
/// single display type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SourceLoc<'a> {
    /// A phase with no specific memory site (barrier / occupancy
    /// diagnostics).
    Phase { phase: u64 },
    /// A shared-memory word.
    Shared { phase: u64, idx: usize },
    /// A word of a named global buffer.
    Global {
        phase: u64,
        buffer: &'a str,
        idx: usize,
    },
    /// A raw global byte address no live buffer claims.
    GlobalAddr { phase: u64, addr: u64 },
}

impl fmt::Display for SourceLoc<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SourceLoc::Phase { phase } => write!(f, "phase {phase}"),
            SourceLoc::Shared { phase, idx } => write!(f, "phase {phase}, shared[{idx}]"),
            SourceLoc::Global { phase, buffer, idx } => {
                write!(f, "phase {phase}, `{buffer}`[{idx}]")
            }
            SourceLoc::GlobalAddr { phase, addr } => {
                write!(f, "phase {phase}, global address {addr:#x}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rules, diagnostics, report
// ---------------------------------------------------------------------

/// The closed rule vocabulary of SimLint. `BarrierDivergence` is fatal
/// (a correctness bug that deadlocks real hardware); everything else is
/// advisory (a performance finding that explains cycles, not results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// Live lanes of a block disagree on reaching an explicit barrier.
    BarrierDivergence,
    /// Sustained global transactions/request above the rule threshold.
    UncoalescedGlobal,
    /// A shared-memory access pattern serializing across banks.
    BankConflict,
    /// Deep same-address atomic serialization within single warps.
    AtomicContention,
    /// A phase issuing many slots with few active threads per slot.
    LowOccupancy,
}

impl LintRule {
    /// Stable kebab-case name, used in reports and `LINT_sim.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintRule::BarrierDivergence => "barrier-divergence",
            LintRule::UncoalescedGlobal => "uncoalesced-global",
            LintRule::BankConflict => "bank-conflict",
            LintRule::AtomicContention => "atomic-contention",
            LintRule::LowOccupancy => "low-occupancy",
        }
    }

    /// Whether a finding of this rule poisons the launch (vs. riding
    /// along as an advisory entry of the [`LintReport`]).
    pub fn is_fatal(self) -> bool {
        matches!(self, LintRule::BarrierDivergence)
    }

    /// Every rule, in report order.
    pub const ALL: [LintRule; 5] = [
        LintRule::BarrierDivergence,
        LintRule::UncoalescedGlobal,
        LintRule::BankConflict,
        LintRule::AtomicContention,
        LintRule::LowOccupancy,
    ];
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    pub rule: LintRule,
    /// Block that triggered a fatal rule; `None` for launch-aggregated
    /// performance lints.
    pub block: Option<u32>,
    /// Witness lane pair (agreeing lane, diverging lane) for barrier
    /// diagnostics.
    pub lanes: Option<(u32, u32)>,
    /// Where: the shared [`SourceLoc`] rendering ("phase N, `buf`[i]").
    pub pc_hint: String,
    /// What: a human-readable, deterministic one-liner.
    pub detail: String,
}

impl Diag {
    fn sort_key(&self) -> (LintRule, &str, &str, Option<u32>) {
        (self.rule, &self.pc_hint, &self.detail, self.block)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({})", self.rule, self.detail, self.pc_hint)
    }
}

/// The advisory findings of one launch (attached to
/// [`LaunchStats`](crate::LaunchStats) when lints are enabled), in
/// stable order: rule, then `pc_hint`, then detail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    pub diags: Vec<Diag>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of findings for one rule.
    pub fn count(&self, rule: LintRule) -> usize {
        self.diags.iter().filter(|d| d.rule == rule).count()
    }

    /// Fold another launch's report in (multi-launch algorithms
    /// accumulate `LaunchStats` with `+=`); identical findings from
    /// repeated launches collapse to one entry.
    pub fn merge(&mut self, other: LintReport) {
        self.diags.extend(other.diags);
        self.normalize();
    }

    fn normalize(&mut self) {
        self.diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.diags.dedup();
    }
}

/// Rule thresholds. The defaults are tuned to the simulator's own cost
/// model: a perfectly coalesced 32-lane word load touches 4 sectors per
/// request, so the uncoalesced bar sits at 8 (2× worse than ideal);
/// bank-conflict and atomic-serialization bars sit at 8-way (a quarter
/// of the worst case, where the slot cost is already dominated by the
/// serialization term); the occupancy bar mirrors the paper's
/// warp-execution-efficiency narrative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LintConfig {
    /// Flag a phase's global loads/stores when the *average*
    /// transactions/request reaches this (and the request floor is met).
    pub uncoalesced_transactions_per_request: f64,
    /// Minimum requests in a phase before the uncoalesced rule applies —
    /// a handful of scattered setup loads is not a pattern.
    pub uncoalesced_min_requests: u64,
    /// Flag when some shared-memory slot serializes this many ways.
    pub bank_conflict_ways: u64,
    /// Flag when some atomic slot serializes this deep on one address.
    pub atomic_contention_depth: u64,
    /// Flag a phase whose warp execution efficiency is below this.
    pub low_occupancy_efficiency: f64,
    /// Minimum issued slots in a phase before the occupancy rule
    /// applies.
    pub low_occupancy_min_slots: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            uncoalesced_transactions_per_request: 8.0,
            uncoalesced_min_requests: 16,
            bank_conflict_ways: 8,
            atomic_contention_depth: 8,
            low_occupancy_efficiency: 0.25,
            low_occupancy_min_slots: 256,
        }
    }
}

// ---------------------------------------------------------------------
// Barrier-divergence verifier (record side, per block)
// ---------------------------------------------------------------------

/// Per-block barrier bookkeeping, GPUVerify-style adapted to lockstep:
/// instead of a two-thread abstraction over symbolic barriers, the
/// sequential phase model lets us count *concrete* barrier arrivals per
/// lane and compare them at the phase end, where real hardware would
/// either reconverge or hang.
pub(crate) struct BarrierLint {
    /// 1-based phase counter, aligned with the race/SimSan epochs (and
    /// with every `pc_hint` the simulator emits).
    phase: u64,
    /// Barrier arrivals per lane in the current phase.
    arrivals: Vec<u32>,
    /// Phase in which each lane retired (0 = still live). A lane retired
    /// in an *earlier* phase legitimately skips later barriers; a lane
    /// retiring *this* phase must have matched its siblings' arrivals
    /// first.
    retired_at: Vec<u64>,
    pub(crate) checks: u64,
}

impl BarrierLint {
    pub(crate) fn new(block_dim: u32) -> Self {
        BarrierLint {
            phase: 1,
            arrivals: vec![0; block_dim as usize],
            retired_at: vec![0; block_dim as usize],
            checks: 0,
        }
    }

    pub(crate) fn arrive(&mut self, tid: u32) {
        self.checks += 1;
        self.arrivals[tid as usize] += 1;
    }

    pub(crate) fn retire(&mut self, tid: u32) {
        let slot = &mut self.retired_at[tid as usize];
        if *slot == 0 {
            *slot = self.phase;
        }
    }

    /// Close the phase: all lanes that ran it must agree on barrier
    /// arrivals (a lane retiring this phase may only stop *after* the
    /// last barrier its siblings reached). Returns the fatal error on
    /// divergence.
    pub(crate) fn end_phase(&mut self, block: u32) -> Option<SimError> {
        self.checks += 1;
        let phase = self.phase;
        let ran = |retired_at: u64| retired_at == 0 || retired_at == phase;
        let mut max = 0u32;
        let mut witness = 0u32;
        for (i, (&n, &r)) in self.arrivals.iter().zip(&self.retired_at).enumerate() {
            if ran(r) && n > max {
                max = n;
                witness = i as u32;
            }
        }
        let mut err = None;
        if max > 0 {
            for (i, (&n, &r)) in self.arrivals.iter().zip(&self.retired_at).enumerate() {
                if !ran(r) {
                    continue;
                }
                let retired_now = r == phase;
                let diverged = if retired_now { n < max } else { n != max };
                if diverged {
                    let lane = i as u32;
                    let verb = if retired_now {
                        "retired after"
                    } else {
                        "reached only"
                    };
                    err = Some(SimError::BarrierDivergence(Diag {
                        rule: LintRule::BarrierDivergence,
                        block: Some(block),
                        lanes: Some((witness, lane)),
                        pc_hint: SourceLoc::Phase { phase }.to_string(),
                        detail: format!(
                            "lane {lane} {verb} {n} of the {max} barrier arrival(s) \
                             lane {witness} reached — siblings wait at the barrier forever"
                        ),
                    }));
                    break;
                }
            }
        }
        for a in &mut self.arrivals {
            *a = 0;
        }
        self.phase += 1;
        err
    }
}

// ---------------------------------------------------------------------
// Performance-lint observer (replay side, per block, merged per launch)
// ---------------------------------------------------------------------

/// Per-site aggregate: one entry per (phase, access kind). `units` is
/// the rule's serialization measure — sectors per load/store slot,
/// conflict ways per shared slot, collision depth per atomic slot.
#[derive(Debug, Clone, Copy, Default)]
struct SiteAgg {
    requests: u64,
    units: u64,
    /// Worst single-slot value, with a representative address of that
    /// slot for buffer attribution in the report.
    worst: u64,
    worst_site: u64,
}

impl SiteAgg {
    #[inline]
    fn record(&mut self, units: u64, site: u64) {
        self.requests += 1;
        self.units += units;
        if units > self.worst {
            self.worst = units;
            self.worst_site = site;
        }
    }

    fn fold(&mut self, o: &SiteAgg) {
        self.requests += o.requests;
        self.units += o.units;
        // Strict `>` keeps the first (lowest block index) witness on
        // ties, so the merged report is deterministic.
        if o.worst > self.worst {
            self.worst = o.worst;
            self.worst_site = o.worst_site;
        }
    }
}

/// One phase's aggregates.
#[derive(Debug, Clone)]
struct PhaseAgg {
    gld: SiteAgg,
    gst: SiteAgg,
    gatom: SiteAgg,
    satom: SiteAgg,
    /// Shared loads+stores; `units`/`worst` carry bank-conflict ways.
    shared: SiteAgg,
    /// Conflict-way histogram over the phase's shared slots
    /// (`bank_hist[w]` = slots that serialized w ways), same bank model
    /// the cost charges.
    bank_hist: [u64; WARP_SIZE + 1],
    issued: u64,
    active: u64,
}

impl Default for PhaseAgg {
    fn default() -> Self {
        PhaseAgg {
            gld: SiteAgg::default(),
            gst: SiteAgg::default(),
            gatom: SiteAgg::default(),
            satom: SiteAgg::default(),
            shared: SiteAgg::default(),
            bank_hist: [0; WARP_SIZE + 1],
            issued: 0,
            active: 0,
        }
    }
}

impl PhaseAgg {
    fn fold(&mut self, o: &PhaseAgg) {
        self.gld.fold(&o.gld);
        self.gst.fold(&o.gst);
        self.gatom.fold(&o.gatom);
        self.satom.fold(&o.satom);
        self.shared.fold(&o.shared);
        for (h, &oh) in self.bank_hist.iter_mut().zip(&o.bank_hist) {
            *h += oh;
        }
        self.issued += o.issued;
        self.active += o.active;
    }
}

/// The replay-side collector. One observer lives per block (fed by the
/// replay's slot passes through whichever [`PhaseSink`] is active — the
/// fused and retained engines replay phase P's warps in the same order,
/// so attribution is engine-identical); `Device::launch` folds the
/// per-block observers in block order and renders the merged result
/// into a [`LintReport`].
///
/// Observation is read-only over values the replay already computed
/// (sector counts, conflict ways, collision depth, slot totals): the
/// zero-perturbation guarantee is structural, not aspirational.
pub(crate) struct LintObserver {
    /// 0-based index of the phase currently being replayed.
    cur: usize,
    phases: Vec<PhaseAgg>,
    last_issued: u64,
    last_active: u64,
    pub(crate) checks: u64,
}

impl LintObserver {
    pub(crate) fn new() -> Self {
        LintObserver {
            cur: 0,
            phases: Vec::new(),
            last_issued: 0,
            last_active: 0,
            checks: 0,
        }
    }

    #[inline]
    fn cur_mut(&mut self) -> &mut PhaseAgg {
        while self.phases.len() <= self.cur {
            self.phases.push(PhaseAgg::default());
        }
        &mut self.phases[self.cur]
    }

    /// One global-load slot touching `transactions` distinct sectors;
    /// `site` is a representative byte address of the slot.
    #[inline]
    pub(crate) fn global_load(&mut self, transactions: u64, site: u64) {
        self.checks += 1;
        self.cur_mut().gld.record(transactions, site);
    }

    #[inline]
    pub(crate) fn global_store(&mut self, transactions: u64, site: u64) {
        self.checks += 1;
        self.cur_mut().gst.record(transactions, site);
    }

    /// One global-atomic slot with worst same-address depth `depth`.
    #[inline]
    pub(crate) fn global_atomic(&mut self, depth: u64, site: u64) {
        self.checks += 1;
        self.cur_mut().gatom.record(depth, site);
    }

    /// One shared load/store slot with `ways`-way bank serialization;
    /// `site` is a representative word index.
    #[inline]
    pub(crate) fn shared_access(&mut self, ways: u64, site: u64) {
        self.checks += 1;
        let p = self.cur_mut();
        p.shared.record(ways, site);
        p.bank_hist[(ways as usize).min(WARP_SIZE)] += 1;
    }

    #[inline]
    pub(crate) fn shared_atomic(&mut self, depth: u64, site: u64) {
        self.checks += 1;
        self.cur_mut().satom.record(depth, site);
    }

    /// Close the phase, attributing the slot-count delta since the last
    /// close (the sinks pass their running totals) to it.
    pub(crate) fn end_phase(&mut self, issued_total: u64, active_total: u64) {
        let di = issued_total - self.last_issued;
        let da = active_total - self.last_active;
        self.last_issued = issued_total;
        self.last_active = active_total;
        let p = self.cur_mut();
        p.issued += di;
        p.active += da;
        self.cur += 1;
    }

    /// Fold another block's observations in (phase-wise; all commutative
    /// sums and first-witness maxima, called in block order).
    pub(crate) fn fold(&mut self, other: &LintObserver) {
        self.checks += other.checks;
        while self.phases.len() < other.phases.len() {
            self.phases.push(PhaseAgg::default());
        }
        for (p, o) in self.phases.iter_mut().zip(&other.phases) {
            p.fold(o);
        }
    }
}

/// Render the merged observations into the launch's [`LintReport`],
/// resolving representative addresses to buffer names through the live
/// allocation table.
pub(crate) fn build_report(obs: &LintObserver, mem: &DeviceMem, cfg: &LintConfig) -> LintReport {
    let mut diags = Vec::new();
    for (i, p) in obs.phases.iter().enumerate() {
        let phase = (i + 1) as u64;
        for (agg, what) in [(&p.gld, "load"), (&p.gst, "store")] {
            if agg.requests >= cfg.uncoalesced_min_requests {
                let tpr = agg.units as f64 / agg.requests as f64;
                if tpr >= cfg.uncoalesced_transactions_per_request {
                    diags.push(Diag {
                        rule: LintRule::UncoalescedGlobal,
                        block: None,
                        lanes: None,
                        pc_hint: global_site(mem, phase, agg.worst_site),
                        detail: format!(
                            "global {what}s average {tpr:.1} transactions/request over {} \
                             requests (worst slot touched {} sectors)",
                            agg.requests, agg.worst
                        ),
                    });
                }
            }
        }
        if p.shared.worst >= cfg.bank_conflict_ways {
            diags.push(Diag {
                rule: LintRule::BankConflict,
                block: None,
                lanes: None,
                pc_hint: SourceLoc::Shared {
                    phase,
                    idx: p.shared.worst_site as usize,
                }
                .to_string(),
                detail: format!(
                    "shared-memory slots serialize up to {}-way across banks; \
                     conflict-way histogram: {}",
                    p.shared.worst,
                    render_hist(&p.bank_hist)
                ),
            });
        }
        for (agg, shared) in [(&p.gatom, false), (&p.satom, true)] {
            if agg.worst >= cfg.atomic_contention_depth {
                let pc_hint = if shared {
                    SourceLoc::Shared {
                        phase,
                        idx: agg.worst_site as usize,
                    }
                    .to_string()
                } else {
                    global_site(mem, phase, agg.worst_site)
                };
                diags.push(Diag {
                    rule: LintRule::AtomicContention,
                    block: None,
                    lanes: None,
                    pc_hint,
                    detail: format!(
                        "{} atomics serialize up to {}-deep on a single address \
                         ({} requests)",
                        if shared { "shared" } else { "global" },
                        agg.worst,
                        agg.requests
                    ),
                });
            }
        }
        if p.issued >= cfg.low_occupancy_min_slots {
            let eff = p.active as f64 / (p.issued as f64 * WARP_SIZE as f64);
            if eff < cfg.low_occupancy_efficiency {
                diags.push(Diag {
                    rule: LintRule::LowOccupancy,
                    block: None,
                    lanes: None,
                    pc_hint: SourceLoc::Phase { phase }.to_string(),
                    detail: format!(
                        "warp execution efficiency {eff:.2} ({} active thread-slots \
                         over {} issued slots)",
                        p.active, p.issued
                    ),
                });
            }
        }
    }
    let mut report = LintReport { diags };
    report.normalize();
    report
}

fn global_site(mem: &DeviceMem, phase: u64, addr: u64) -> String {
    match mem.locate(addr) {
        Some((buffer, idx)) => SourceLoc::Global { phase, buffer, idx }.to_string(),
        None => SourceLoc::GlobalAddr { phase, addr }.to_string(),
    }
}

/// "2-way ×5, 8-way ×1" — non-zero histogram entries, ascending ways.
fn render_hist(hist: &[u64]) -> String {
    let mut out = String::new();
    for (ways, &n) in hist.iter().enumerate() {
        if n > 0 {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&format!("{ways}-way x{n}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_loc_rendering_matches_the_historic_formats() {
        // The race detector and SimSan rendered these exact strings
        // before the vocabulary was unified; diagnostics must not drift.
        assert_eq!(
            SourceLoc::Shared { phase: 2, idx: 7 }.to_string(),
            "phase 2, shared[7]"
        );
        assert_eq!(
            SourceLoc::Global {
                phase: 3,
                buffer: "row_ptr",
                idx: 41
            }
            .to_string(),
            "phase 3, `row_ptr`[41]"
        );
        assert_eq!(SourceLoc::Phase { phase: 1 }.to_string(), "phase 1");
        assert_eq!(
            SourceLoc::GlobalAddr {
                phase: 1,
                addr: 0x100
            }
            .to_string(),
            "phase 1, global address 0x100"
        );
    }

    #[test]
    fn rule_names_are_kebab_case_and_closed() {
        let names: Vec<&str> = LintRule::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            names,
            [
                "barrier-divergence",
                "uncoalesced-global",
                "bank-conflict",
                "atomic-contention",
                "low-occupancy"
            ]
        );
        assert!(LintRule::BarrierDivergence.is_fatal());
        assert!(LintRule::ALL.iter().skip(1).all(|r| !r.is_fatal()));
    }

    #[test]
    fn barrier_lint_accepts_uniform_arrivals_and_clean_early_retire() {
        let mut t = BarrierLint::new(4);
        for tid in 0..4 {
            t.arrive(tid);
        }
        assert!(t.end_phase(0).is_none());
        // Next phase: everyone arrives once, lane 3 retires afterwards.
        for tid in 0..4 {
            t.arrive(tid);
        }
        t.retire(3);
        assert!(t.end_phase(0).is_none());
        // Lane 3 is gone: the remaining three lanes agree among
        // themselves.
        for tid in 0..3 {
            t.arrive(tid);
        }
        assert!(t.end_phase(0).is_none());
        assert!(t.checks > 0);
    }

    #[test]
    fn barrier_lint_flags_a_lane_that_skips_a_barrier() {
        let mut t = BarrierLint::new(3);
        t.arrive(0);
        t.arrive(1);
        // Lane 2 never arrives.
        match t.end_phase(7) {
            Some(SimError::BarrierDivergence(d)) => {
                assert_eq!(d.rule, LintRule::BarrierDivergence);
                assert_eq!(d.block, Some(7));
                assert_eq!(d.lanes, Some((0, 2)));
                assert_eq!(d.pc_hint, "phase 1");
                assert!(d.detail.contains("lane 2"), "detail: {}", d.detail);
            }
            other => panic!("expected BarrierDivergence, got {other:?}"),
        }
    }

    #[test]
    fn barrier_lint_flags_a_retire_while_siblings_wait() {
        let mut t = BarrierLint::new(2);
        // Phase 1 is clean so lane 1 is still live in phase 2.
        assert!(t.end_phase(0).is_none());
        t.arrive(0);
        t.arrive(0); // lane 0 hits two barriers
        t.arrive(1);
        t.retire(1); // lane 1 bails between them
        match t.end_phase(0) {
            Some(SimError::BarrierDivergence(d)) => {
                assert_eq!(d.lanes, Some((0, 1)));
                assert!(d.detail.contains("retired after 1"), "{}", d.detail);
                assert_eq!(d.pc_hint, "phase 2");
            }
            other => panic!("expected BarrierDivergence, got {other:?}"),
        }
    }

    #[test]
    fn barrier_lint_ignores_lanes_retired_in_earlier_phases() {
        let mut t = BarrierLint::new(2);
        t.arrive(0);
        t.arrive(1);
        t.retire(1);
        assert!(t.end_phase(0).is_none());
        // Phase 2: only lane 0 runs; its solo arrivals are consistent.
        t.arrive(0);
        assert!(t.end_phase(0).is_none());
    }

    fn mem_with(buf_words: usize) -> DeviceMem {
        let dev = crate::Device::v100();
        let mut mem = DeviceMem::new(&dev);
        mem.alloc_zeroed(buf_words, "probe").unwrap();
        mem
    }

    #[test]
    fn report_flags_uncoalesced_loads_above_threshold_only() {
        let mem = mem_with(64);
        let cfg = LintConfig::default();
        let mut obs = LintObserver::new();
        // 16 perfectly coalesced slots (4 sectors each): clean.
        for _ in 0..16 {
            obs.global_load(4, 16);
        }
        obs.end_phase(16, 16 * 32);
        assert!(build_report(&obs, &mem, &cfg).is_clean());
        // 16 fully scattered slots (32 sectors each): flagged, with the
        // worst slot's address resolved to the owning buffer.
        let mut obs = LintObserver::new();
        for _ in 0..16 {
            obs.global_load(32, 20);
        }
        obs.end_phase(16, 16 * 32);
        let report = build_report(&obs, &mem, &cfg);
        assert_eq!(report.count(LintRule::UncoalescedGlobal), 1);
        let d = &report.diags[0];
        assert!(
            d.detail.contains("32.0 transactions/request"),
            "{}",
            d.detail
        );
        assert!(d.pc_hint.contains("`probe`"), "{}", d.pc_hint);
    }

    #[test]
    fn report_needs_the_request_floor_before_flagging() {
        let mem = mem_with(64);
        let mut obs = LintObserver::new();
        // Worst-possible coalescing, but only 3 requests: not a pattern.
        for _ in 0..3 {
            obs.global_load(32, 0);
        }
        obs.end_phase(3, 96);
        assert!(build_report(&obs, &mem, &LintConfig::default()).is_clean());
    }

    #[test]
    fn report_flags_bank_conflicts_with_histogram() {
        let mem = mem_with(8);
        let mut obs = LintObserver::new();
        obs.shared_access(1, 0);
        obs.shared_access(32, 5);
        obs.end_phase(2, 64);
        let report = build_report(&obs, &mem, &LintConfig::default());
        assert_eq!(report.count(LintRule::BankConflict), 1);
        let d = &report.diags[0];
        assert_eq!(d.pc_hint, "phase 1, shared[5]");
        assert!(d.detail.contains("32-way"), "{}", d.detail);
        assert!(
            d.detail.contains("1-way x1, 32-way x1"),
            "histogram: {}",
            d.detail
        );
    }

    #[test]
    fn report_flags_atomic_contention_global_and_shared() {
        let mem = mem_with(16);
        let mut obs = LintObserver::new();
        obs.global_atomic(32, 8);
        obs.shared_atomic(9, 3);
        obs.end_phase(2, 64);
        let report = build_report(&obs, &mem, &LintConfig::default());
        assert_eq!(report.count(LintRule::AtomicContention), 2);
        assert!(report.diags.iter().any(|d| d.pc_hint.contains("`probe`")));
        assert!(report.diags.iter().any(|d| d.pc_hint.contains("shared[3]")));
    }

    #[test]
    fn report_flags_low_occupancy_only_past_the_slot_floor() {
        let mem = mem_with(1);
        let cfg = LintConfig::default();
        // 1000 slots at 2 active lanes each: efficiency 2/32 < 0.25.
        let mut obs = LintObserver::new();
        obs.end_phase(1000, 2000);
        let report = build_report(&obs, &mem, &cfg);
        assert_eq!(report.count(LintRule::LowOccupancy), 1);
        assert!(report.diags[0].detail.contains("0.06"));
        // Same shape under the floor: too small to call a phase.
        let mut obs = LintObserver::new();
        obs.end_phase(100, 200);
        assert!(build_report(&obs, &mem, &cfg).is_clean());
        // Busy and efficient: clean.
        let mut obs = LintObserver::new();
        obs.end_phase(1000, 32_000);
        assert!(build_report(&obs, &mem, &cfg).is_clean());
    }

    #[test]
    fn phase_attribution_survives_folding_blocks() {
        let mem = mem_with(64);
        let mut a = LintObserver::new();
        for _ in 0..10 {
            a.global_load(32, 16);
        }
        a.end_phase(10, 320);
        let mut b = LintObserver::new();
        for _ in 0..10 {
            b.global_load(32, 16);
        }
        b.end_phase(10, 320);
        a.fold(&b);
        let report = build_report(&a, &mem, &LintConfig::default());
        // 20 requests across two blocks of the same phase: one finding.
        assert_eq!(report.count(LintRule::UncoalescedGlobal), 1);
        assert!(report.diags[0].detail.contains("20 requests"));
        assert_eq!(a.checks, 20);
    }

    #[test]
    fn unresolvable_addresses_fall_back_to_raw_hex() {
        let dev = crate::Device::v100();
        let mem = DeviceMem::new(&dev);
        let mut obs = LintObserver::new();
        for _ in 0..16 {
            obs.global_load(32, 0xdead_0000);
        }
        obs.end_phase(16, 512);
        let report = build_report(&obs, &mem, &LintConfig::default());
        assert!(
            report.diags[0]
                .pc_hint
                .contains("global address 0xdead0000"),
            "{}",
            report.diags[0].pc_hint
        );
    }

    #[test]
    fn report_merge_is_sorted_and_deduped() {
        let mk = |rule, hint: &str| Diag {
            rule,
            block: None,
            lanes: None,
            pc_hint: hint.to_string(),
            detail: "d".to_string(),
        };
        let mut a = LintReport {
            diags: vec![mk(LintRule::LowOccupancy, "phase 2")],
        };
        let b = LintReport {
            diags: vec![
                mk(LintRule::UncoalescedGlobal, "phase 1, `x`[0]"),
                mk(LintRule::LowOccupancy, "phase 2"),
            ],
        };
        a.merge(b);
        assert_eq!(a.diags.len(), 2);
        assert_eq!(a.diags[0].rule, LintRule::UncoalescedGlobal);
        assert_eq!(a.diags[1].rule, LintRule::LowOccupancy);
    }
}
