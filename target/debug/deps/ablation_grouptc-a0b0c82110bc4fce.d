/root/repo/target/debug/deps/ablation_grouptc-a0b0c82110bc4fce.d: crates/tc-bench/src/bin/ablation_grouptc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_grouptc-a0b0c82110bc4fce.rmeta: crates/tc-bench/src/bin/ablation_grouptc.rs Cargo.toml

crates/tc-bench/src/bin/ablation_grouptc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
