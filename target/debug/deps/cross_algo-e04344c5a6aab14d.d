/root/repo/target/debug/deps/cross_algo-e04344c5a6aab14d.d: crates/tc-algos/tests/cross_algo.rs Cargo.toml

/root/repo/target/debug/deps/libcross_algo-e04344c5a6aab14d.rmeta: crates/tc-algos/tests/cross_algo.rs Cargo.toml

crates/tc-algos/tests/cross_algo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
