/root/repo/target/debug/deps/orientation_study-01d3391bcb7cfd4b.d: crates/tc-bench/src/bin/orientation_study.rs Cargo.toml

/root/repo/target/debug/deps/liborientation_study-01d3391bcb7cfd4b.rmeta: crates/tc-bench/src/bin/orientation_study.rs Cargo.toml

crates/tc-bench/src/bin/orientation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
