/root/repo/target/debug/deps/tc_bench-b92958684da8e132.d: crates/tc-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtc_bench-b92958684da8e132.rmeta: crates/tc-bench/src/lib.rs Cargo.toml

crates/tc-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
