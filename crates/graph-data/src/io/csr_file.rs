//! Binary CSR format: magic, `u32` vertex count, `u64` target count, the
//! offsets array, then the targets array (all little-endian). Several of
//! the published implementations load CSRs directly; the framework
//! converts once and reuses.

use std::io::{self, Read, Write};

use crate::types::Csr;

/// File magic for binary CSR files.
pub const CSR_MAGIC: &[u8; 8] = b"TCCSRv01";

/// Write a CSR.
pub fn write_csr<W: Write>(mut w: W, csr: &Csr) -> io::Result<()> {
    w.write_all(CSR_MAGIC)?;
    w.write_all(&csr.num_vertices().to_le_bytes())?;
    w.write_all(&csr.num_entries().to_le_bytes())?;
    let mut buf = Vec::with_capacity((csr.offsets().len() + csr.targets().len()) * 4);
    for &x in csr.offsets() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    for &x in csr.targets() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    w.write_all(&buf)
}

/// Read a CSR, validating structure via [`Csr::from_parts`].
pub fn read_csr<R: Read>(mut r: R) -> io::Result<Csr> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != CSR_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a tc-compare CSR file (bad magic)",
        ));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4) as usize;
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8) as usize;

    let mut read_u32s = |count: usize| -> io::Result<Vec<u32>> {
        let mut bytes = vec![0u8; count * 4];
        r.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    };
    let offsets = read_u32s(n + 1)?;
    let targets = read_u32s(m)?;
    if offsets.first() != Some(&0)
        || offsets.last().map(|&o| o as usize) != Some(m)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "inconsistent CSR offsets",
        ));
    }
    Ok(Csr::from_parts(offsets, targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let csr = Csr::from_adjacency(&[vec![1, 2], vec![2], vec![], vec![0]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        assert_eq!(read_csr(&bytes[..]).unwrap(), csr);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let csr = Csr::from_adjacency(&[]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        let back = read_csr(&bytes[..]).unwrap();
        assert_eq!(back.num_vertices(), 0);
    }

    #[test]
    fn corrupt_offsets_rejected() {
        let csr = Csr::from_adjacency(&[vec![1], vec![0]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        // Corrupt the first offset (byte 20 = after magic + n + m).
        bytes[20] = 9;
        assert!(read_csr(&bytes[..]).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_csr(&b"XXXXXXXX\0\0\0\0\0\0\0\0\0\0\0\0"[..]).is_err());
    }
}
