//! V100 vs RTX 4090: the paper's footnote 2 reports that the RTX 4090
//! results track the V100 ones. This example runs the top contenders on
//! both simulated devices and prints the ratio — more SMs and a bigger
//! L1 shift absolute numbers, the ordering stays put.
//!
//! ```sh
//! cargo run --release --example device_comparison [dataset-name]
//! ```

use tc_compare::algos::{polak::Polak, tricore::TriCore, trust::Trust};
use tc_compare::algos::{DeviceGraph, TcAlgorithm};
use tc_compare::core::framework::report::{cycles_to_ms, Table};
use tc_compare::core::GroupTc;
use tc_compare::graph::{orient, DatasetSpec};
use tc_compare::sim::{Device, DeviceMem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Soc-Slashdot0922".to_string());
    let spec = DatasetSpec::by_name(&name)
        .ok_or_else(|| format!("unknown dataset `{name}` (see Table II)"))?;
    eprintln!("building {} stand-in...", spec.name);
    let graph = spec.build();

    let algos: Vec<Box<dyn TcAlgorithm>> = vec![
        Box::new(Polak),
        Box::new(TriCore),
        Box::new(Trust),
        Box::new(GroupTc::default()),
    ];
    let devices = [("V100", Device::v100()), ("RTX4090", Device::rtx4090())];

    let mut t = Table::new(&["algorithm", "V100 ms", "RTX4090 ms", "ratio"]);
    for algo in &algos {
        let dag = orient(&graph, algo.preferred_orientation());
        let mut times = Vec::new();
        for (dev_name, dev) in &devices {
            let mut mem = DeviceMem::new(dev);
            let dg = DeviceGraph::upload(&dag, &mut mem)?;
            let out = algo.count(dev, &mut mem, &dg)?;
            eprintln!(
                "{} on {}: {} triangles",
                algo.name(),
                dev_name,
                out.triangles
            );
            times.push(cycles_to_ms(out.stats.kernel_cycles));
        }
        t.row(vec![
            algo.name().to_string(),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.2}x", times[0] / times[1].max(1e-12)),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}
