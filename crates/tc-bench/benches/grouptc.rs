//! Criterion benches behind Figure 15 (GroupTC vs Polak vs TRUST) and
//! the GroupTC ablation study (each Section V optimization toggled,
//! chunk-size sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpu_sim::{Device, DeviceMem};
use graph_data::{clean_edges, gen, orient, DagGraph, Orientation};
use tc_algos::api::TcAlgorithm;
use tc_algos::device_graph::DeviceGraph;
use tc_algos::{polak::Polak, trust::Trust};
use tc_core::{GroupTc, GroupTcConfig};

fn fixture() -> (Device, DagGraph) {
    let raw = gen::rmat(13, 40_000, 0.57, 0.19, 0.19, 0.05, 31);
    let (g, _) = clean_edges(&raw);
    (Device::v100(), orient(&g, Orientation::DegreeAsc))
}

fn run(dev: &Device, dag: &DagGraph, algo: &dyn TcAlgorithm) -> u64 {
    let mut mem = DeviceMem::new(dev);
    let dg = DeviceGraph::upload(dag, &mut mem).expect("upload");
    algo.count(dev, &mut mem, &dg).expect("count").triangles
}

fn bench_fig15(c: &mut Criterion) {
    let (dev, dag) = fixture();
    let contenders: Vec<(&str, Box<dyn TcAlgorithm>)> = vec![
        ("Polak", Box::new(Polak)),
        ("TRUST", Box::new(Trust)),
        ("GroupTC", Box::new(GroupTc::default())),
    ];
    let mut group = c.benchmark_group("fig15_grouptc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, algo) in &contenders {
        group.bench_function(*name, |b| b.iter(|| run(&dev, &dag, algo.as_ref())));
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let (dev, dag) = fixture();
    let variants: Vec<(&str, GroupTc)> = vec![
        ("full", GroupTc::default()),
        ("no-partial-2hop", GroupTc::without_partial_two_hop()),
        ("no-resume", GroupTc::without_resume_offset()),
        ("no-flip", GroupTc::without_flip_tables()),
    ];
    let mut group = c.benchmark_group("grouptc_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, algo) in &variants {
        group.bench_function(*name, |b| b.iter(|| run(&dev, &dag, algo)));
    }
    for chunk in [64u32, 256, 1024] {
        let algo = GroupTc::new(GroupTcConfig {
            chunk_size: chunk,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("chunk", chunk), &algo, |b, algo| {
            b.iter(|| run(&dev, &dag, algo))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig15, bench_ablation);
criterion_main!(benches);
