//! k-core decomposition and degeneracy ordering.
//!
//! Section II-B lists "ordering based on ... k-coreness" among the
//! common pre-processing choices for ITC algorithms. The degeneracy
//! (k-core) order repeatedly removes a minimum-degree vertex; orienting
//! edges along it bounds every out-degree by the graph's degeneracy,
//! which on real power-law graphs is far below the maximum degree —
//! tighter than plain degree ordering.

use crate::types::{UndirGraph, VertexId};

/// Result of the k-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` = the largest k such that v belongs to the k-core.
    pub core: Vec<u32>,
    /// Vertices in degeneracy order (the removal order).
    pub order: Vec<VertexId>,
    /// The graph's degeneracy (maximum core number).
    pub degeneracy: u32,
}

/// Peel the graph with the classic O(V + E) bucket algorithm
/// (Batagelj–Zaveršnik).
pub fn core_decomposition(g: &UndirGraph) -> CoreDecomposition {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            order: Vec::new(),
            degeneracy: 0,
        };
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by current degree.
    let mut bin = vec![0u32; max_degree + 2];
    for &d in &degree {
        bin[d as usize] += 1;
    }
    let mut start = 0u32;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0u32; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices sorted by degree
    for v in 0..n as u32 {
        let d = degree[v as usize] as usize;
        pos[v as usize] = bin[d];
        vert[bin[d] as usize] = v;
        bin[d] += 1;
    }
    // Restore bin starts.
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down: swap with the first vertex of
                // its current bucket.
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u != w {
                    vert[pu as usize] = w;
                    vert[pw as usize] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core,
        order: vert,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::gen;
    use crate::types::EdgeList;

    fn graph(edges: Vec<(u32, u32)>) -> UndirGraph {
        clean_edges(&EdgeList::new(edges)).0
    }

    #[test]
    fn triangle_has_core_two() {
        let g = graph(vec![(0, 1), (1, 2), (0, 2)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core, vec![2, 2, 2]);
        assert_eq!(d.degeneracy, 2);
    }

    #[test]
    fn path_has_core_one() {
        let g = graph(vec![(0, 1), (1, 2), (2, 3)]);
        let d = core_decomposition(&g);
        assert!(d.core.iter().all(|&c| c == 1));
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn clique_plus_tail() {
        // K4 on {0..3} with a pendant 4.
        let g = graph(vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 3);
        assert_eq!(d.core[4], 1);
        for v in 0..4 {
            assert_eq!(d.core[v], 3, "clique member {v}");
        }
        // The pendant peels before the clique.
        assert_eq!(d.order[0], 4);
    }

    #[test]
    fn order_is_a_permutation() {
        let g = graph(gen::rmat(10, 4000, 0.57, 0.19, 0.19, 0.05, 5).edges);
        let d = core_decomposition(&g);
        let mut seen = vec![false; g.num_vertices() as usize];
        for &v in &d.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn core_numbers_monotone_under_peeling_invariant() {
        // Every vertex's core number is at most its degree, and at least
        // the minimum degree of the whole graph.
        let g = graph(gen::barabasi_albert(500, 4, 0.5, 6).edges);
        let d = core_decomposition(&g);
        let min_deg = (0..g.num_vertices()).map(|v| g.degree(v)).min().unwrap();
        for v in 0..g.num_vertices() {
            assert!(d.core[v as usize] <= g.degree(v));
            assert!(d.core[v as usize] >= min_deg.min(1));
        }
    }

    #[test]
    fn degeneracy_below_max_degree_on_power_law() {
        let g = graph(gen::rmat(12, 40_000, 0.57, 0.19, 0.19, 0.05, 7).edges);
        let d = core_decomposition(&g);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            d.degeneracy * 4 < max_deg,
            "degeneracy {} should be far below max degree {max_deg}",
            d.degeneracy
        );
    }

    #[test]
    fn empty_graph() {
        let g = graph(vec![]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }
}
