/root/repo/target/debug/deps/framework_pipeline-33ad6d0607184bec.d: tests/framework_pipeline.rs

/root/repo/target/debug/deps/framework_pipeline-33ad6d0607184bec: tests/framework_pipeline.rs

tests/framework_pipeline.rs:
