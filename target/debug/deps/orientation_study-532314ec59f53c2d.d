/root/repo/target/debug/deps/orientation_study-532314ec59f53c2d.d: crates/tc-bench/src/bin/orientation_study.rs Cargo.toml

/root/repo/target/debug/deps/liborientation_study-532314ec59f53c2d.rmeta: crates/tc-bench/src/bin/orientation_study.rs Cargo.toml

crates/tc-bench/src/bin/orientation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
