/root/repo/target/debug/deps/diag-6f768aeb6dff655f.d: crates/tc-bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-6f768aeb6dff655f.rmeta: crates/tc-bench/src/bin/diag.rs Cargo.toml

crates/tc-bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
