//! Pre-processing study (Section II-B): the paper lists "ordering based
//! on node IDs, degree, k-coreness, random ordering" as the common
//! choices but leaves the comparison out for page limits. This bench
//! fills that gap: the three headline algorithms under all five
//! orientations the library implements, with the DAG's maximum
//! out-degree (the quantity orientations exist to control) alongside the
//! modelled time.
//!
//! ```sh
//! cargo run --release -p tc-bench --bin orientation_study [dataset...]
//! ```

use std::time::Instant;

use gpu_sim::{Device, DeviceMem};
use graph_data::Orientation;
use tc_algos::api::TcAlgorithm;
use tc_algos::device_graph::DeviceGraph;
use tc_algos::{polak::Polak, trust::Trust};
use tc_core::framework::report::{cycles_to_ms, Table};
use tc_core::framework::runner::PreparedDataset;
use tc_core::GroupTc;

const ORIENTATIONS: [Orientation; 5] = [
    Orientation::ById,
    Orientation::DegreeAsc,
    Orientation::DegreeDesc,
    Orientation::KCore,
    Orientation::Random(7),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = if args.is_empty() {
        tc_bench::datasets_from_args(&["Email-EuAll".into(), "Soc-Slashdot0922".into()]).unwrap()
    } else {
        tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let algos: Vec<Box<dyn TcAlgorithm>> = vec![
        Box::new(Polak),
        Box::new(Trust),
        Box::new(GroupTc::default()),
    ];
    let dev = Device::v100();

    for spec in &datasets {
        tc_bench::eprint_progress(&format!("building {}", spec.name));
        let started = Instant::now();
        // PreparedDataset precomputes the three standard orientations
        // (ById, DegreeAsc, DegreeDesc) once; KCore and Random are
        // oriented on the fly by `dag()`.
        let data = PreparedDataset::prepare(spec);
        let expected = data.ground_truth;
        let mut t = Table::new(&[
            "orientation",
            "max out-deg",
            "Polak ms",
            "TRUST ms",
            "GroupTC ms",
        ]);
        for o in ORIENTATIONS {
            let dag = data.dag(o);
            let mut row = vec![format!("{o:?}"), dag.max_out_degree().to_string()];
            for algo in &algos {
                let mut mem = DeviceMem::new(&dev);
                let dg = DeviceGraph::upload(&dag, &mut mem).expect("upload");
                match algo.count(&dev, &mut mem, &dg) {
                    Ok(out) => {
                        assert_eq!(
                            out.triangles,
                            expected,
                            "{} under {o:?} miscounted",
                            algo.name()
                        );
                        row.push(format!("{:.3}", cycles_to_ms(out.stats.kernel_cycles)));
                    }
                    Err(e) => row.push(format!("x ({e})")),
                }
            }
            t.row(row);
        }
        tc_bench::eprint_progress(&format!(
            "{}: {:.2}s host wall",
            spec.name,
            started.elapsed().as_secs_f64()
        ));
        println!(
            "PRE-PROCESSING STUDY: {} ({} triangles)",
            spec.name, expected
        );
        println!("{}", t.render());
    }
}
