/root/repo/target/debug/examples/ktruss-17dc43de4006db65.d: examples/ktruss.rs

/root/repo/target/debug/examples/ktruss-17dc43de4006db65: examples/ktruss.rs

examples/ktruss.rs:
