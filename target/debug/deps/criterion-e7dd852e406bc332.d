/root/repo/target/debug/deps/criterion-e7dd852e406bc332.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-e7dd852e406bc332.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
