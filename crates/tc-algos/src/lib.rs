//! # tc-algos — the published GPU ITC algorithms
//!
//! Re-implementations, against the [`gpu_sim`] substrate, of every
//! intersection-based triangle-counting implementation the paper
//! evaluates (Table I), plus the cover-edge algorithm of Bader et al.:
//!
//! | Module        | Name      | Year | Iterator | Intersection     | Granularity |
//! |---------------|-----------|------|----------|------------------|-------------|
//! | [`green`]     | Green     | 2014 | edge     | Merge (merge path) | fine      |
//! | [`polak`]     | Polak     | 2016 | edge     | Merge            | coarse      |
//! | [`bisson`]    | Bisson    | 2017 | vertex   | BitMap           | coarse      |
//! | [`tricore`]   | TriCore   | 2018 | edge     | Binary search    | fine        |
//! | [`fox`]       | Fox       | 2018 | edge     | Merge/Bin-search | fine        |
//! | [`hu`]        | Hu        | 2019 | vertex   | Binary search    | fine        |
//! | [`hindex`]    | H-INDEX   | 2019 | edge     | Hash             | fine        |
//! | [`trust`]     | TRUST     | 2021 | vertex   | Hash             | fine        |
//! | [`coveredge`] | CoverEdge | 2024 | edge     | Merge            | coarse      |
//!
//! Each implements [`TcAlgorithm`] — both the simulated kernel
//! (`count`) and a native rayon host kernel (`count_cpu`, built from
//! the primitives in [`cpu`]) that the framework's `CpuBackend` and
//! the differential CPU ≡ sim conformance wall execute.
//! [`registry::published_algorithms`] returns the paper's eight;
//! the paper's own GroupTC lives in `tc-core`.

pub mod api;
pub mod bisson;
pub mod conformance;
pub mod coveredge;
pub mod cpu;
pub mod device_graph;
pub mod fox;
pub mod green;
pub mod hindex;
pub mod hu;
pub mod partition;
pub mod polak;
pub mod registry;
pub mod tricore;
pub mod trust;
pub mod util;

// Exposed (not cfg(test)-gated) so `tc-core`'s GroupTC tests and the
// workspace integration tests reuse the same fixtures.
pub mod testutil;

pub use api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
pub use device_graph::DeviceGraph;
pub use partition::PartitionPlan;
pub use registry::published_algorithms;
