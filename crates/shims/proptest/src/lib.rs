//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the proptest API its tests use: the [`proptest!`] macro,
//! `ProptestConfig::with_cases`, `prop_assert!`/`prop_assert_eq!`, integer
//! ranges and tuples as strategies, `prop::collection::{vec, btree_set}`
//! and `Strategy::prop_map`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * Case generation is seeded from the test's full module path, so runs
//!   are **deterministic** across processes (upstream randomizes and
//!   persists failures; determinism suits a CI gate better).
//! * No shrinking: a failing case reports the exact generated inputs
//!   (every strategy value in these tests is `Debug`), which is what the
//!   shrunk report would contain for the small domains used here.
//! * `.proptest-regressions` files are not consumed; historical
//!   regressions are pinned as explicit `#[test]` cases next to the
//!   property instead.

use std::ops::Range;

/// Deterministic xoshiro256** generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string (the test's module path + name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Runner configuration: how many cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default; the workspace always overrides it lower.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` with a target size drawn from `size`; like upstream,
    /// the realized size can be smaller when the element domain is tight.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Bounded attempts so tight domains terminate (like upstream's
            // rejection limit).
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// Namespace mirror so `prop::collection::vec(...)` resolves after a
    /// glob import of this prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

// Re-exported under the crate root too (upstream offers both paths).
pub use collection as prop_collection;

/// Assert inside a property; failure aborts the case with a message that
/// the harness prefixes with the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test harness macro. Supports the forms used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, mut v in prop::collection::vec(0u32..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    &$cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng, __case_desc| {
                        #[allow(unused_parens)]
                        let __vals = ($($crate::Strategy::generate(&($strat), __rng)),*);
                        *__case_desc = format!(
                            concat!("(", $(stringify!($pat), ", ",)* ") = {:?}"),
                            __vals
                        );
                        #[allow(unused_parens)]
                        let ($($pat),*) = __vals;
                        $body
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($pat in $strat),* ) $body
            )*
        }
    };
}

/// Drive one property: generate `cfg.cases` inputs and run the body on
/// each; on panic, report the case index and the generated inputs, then
/// re-panic with the original assertion payload.
pub fn run_property<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String),
{
    let mut rng = TestRng::from_name(name);
    for i in 0..cfg.cases {
        let mut desc = String::new();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property `{name}` failed at case {i}/{} with inputs: {}",
                cfg.cases,
                if desc.is_empty() {
                    "<failed during generation>"
                } else {
                    &desc
                },
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::run_property;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("t1");
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = (0u32..4, 10usize..12).generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_name("t2");
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 5..10).generate(&mut rng);
            assert!((5..10).contains(&v.len()));
            let s = prop::collection::btree_set(0u32..1000, 0..40).generate(&mut rng);
            assert!(s.len() < 40);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_name("t3");
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(x in 1u32..50, mut v in prop::collection::vec(0u32..5, 0..8)) {
            v.push(x);
            prop_assert!(*v.last().unwrap() >= 1);
            prop_assert_eq!(v.last().copied().unwrap(), x);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_reports_and_panics() {
        run_property(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng, _desc| {
                panic!("boom");
            },
        );
    }
}
