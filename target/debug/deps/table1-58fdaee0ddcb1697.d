/root/repo/target/debug/deps/table1-58fdaee0ddcb1697.d: crates/tc-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-58fdaee0ddcb1697: crates/tc-bench/src/bin/table1.rs

crates/tc-bench/src/bin/table1.rs:
