//! The SimLint diagnostic wall: every registry algorithm over the full
//! conformance corpus with lints forced on, serialized as
//! `LINT_sim.json` (see `lint_json` for the schema and gate semantics).
//!
//! ```text
//! lint_sweep                         # print the JSON document to stdout
//! lint_sweep --out LINT_sim.json     # write (refresh the snapshot)
//! lint_sweep --check-snapshot [PATH] # regress against the committed
//!                                    # snapshot (default LINT_sim.json):
//!                                    # advisory diffs print to stderr,
//!                                    # rule-level regressions exit 1
//! ```

use gpu_sim::{Device, DeviceMem, LintReport};
use graph_data::{clean_edges, orient};
use tc_algos::conformance::generator_cases;
use tc_algos::device_graph::DeviceGraph;
use tc_core::framework::registry::all_algorithms;

use tc_bench::lint_json::{compare_snapshot, render, LintCell};

/// Run one (algorithm × case) cell and collect its merged lint report.
fn run_cells() -> Vec<LintCell> {
    let dev = Device::v100().with_lints();
    let cases = generator_cases();
    let mut cells = Vec::new();
    for algo in all_algorithms() {
        for case in &cases {
            let (g, _) = clean_edges(&case.edges);
            let dag = orient(&g, algo.preferred_orientation());
            let mut mem = DeviceMem::new(&dev);
            let cell = match DeviceGraph::upload(&dag, &mut mem)
                .and_then(|dg| algo.count(&dev, &mut mem, &dg))
            {
                Ok(out) => {
                    // A zero-launch degenerate run carries no report;
                    // serialize it as a clean cell.
                    let report = out.stats.lint.unwrap_or_else(LintReport::default);
                    LintCell::from_report(algo.name(), case.name, &report)
                }
                Err(e) => LintCell::from_error(algo.name(), case.name, &e.to_string()),
            };
            cells.push(cell);
        }
    }
    cells
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = {
        tc_bench::eprint_progress("lint_sweep: running the registry over the conformance corpus");
        let cells = run_cells();
        let findings: usize = cells.iter().map(|c| c.diags.len()).sum();
        let clean = cells.iter().filter(|c| c.is_clean()).count();
        tc_bench::eprint_progress(&format!(
            "lint_sweep: {} cells, {clean} clean, {findings} findings",
            cells.len()
        ));
        render("V100", &cells)
    };

    match args.first().map(String::as_str) {
        None => print!("{text}"),
        Some("--out") => {
            let path = args.get(1).map(String::as_str).unwrap_or("LINT_sim.json");
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("lint_sweep: cannot write {path}: {e}");
                std::process::exit(2);
            });
            tc_bench::eprint_progress(&format!("lint_sweep: wrote {path}"));
        }
        Some("--check-snapshot") => {
            let path = args.get(1).map(String::as_str).unwrap_or("LINT_sim.json");
            let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("lint_sweep: cannot read snapshot {path}: {e}");
                std::process::exit(2);
            });
            let cells = tc_bench::lint_json::validate(&text).expect("own document validates");
            let report = compare_snapshot(&baseline, &cells).unwrap_or_else(|e| {
                eprintln!("lint_sweep: {e}");
                std::process::exit(2);
            });
            for a in &report.advisories {
                eprintln!("advisory: {a}");
            }
            for f in &report.failures {
                eprintln!("FAILURE: {f}");
            }
            eprintln!(
                "lint_sweep: {} cells compared, {} advisories, {} failures",
                report.compared,
                report.advisories.len(),
                report.failures.len()
            );
            if !report.passed() {
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("lint_sweep: unknown option `{other}`");
            eprintln!("usage: lint_sweep [--out [PATH] | --check-snapshot [PATH]]");
            std::process::exit(2);
        }
    }
}
