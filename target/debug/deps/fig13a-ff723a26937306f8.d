/root/repo/target/debug/deps/fig13a-ff723a26937306f8.d: crates/tc-bench/src/bin/fig13a.rs

/root/repo/target/debug/deps/fig13a-ff723a26937306f8: crates/tc-bench/src/bin/fig13a.rs

crates/tc-bench/src/bin/fig13a.rs:
