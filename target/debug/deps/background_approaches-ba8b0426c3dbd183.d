/root/repo/target/debug/deps/background_approaches-ba8b0426c3dbd183.d: crates/tc-bench/src/bin/background_approaches.rs Cargo.toml

/root/repo/target/debug/deps/libbackground_approaches-ba8b0426c3dbd183.rmeta: crates/tc-bench/src/bin/background_approaches.rs Cargo.toml

crates/tc-bench/src/bin/background_approaches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
