/root/repo/target/debug/deps/criterion-9eafc5ad9748331f.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-9eafc5ad9748331f.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
