/root/repo/target/debug/deps/fig15-078a0491e77b2ec6.d: crates/tc-bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-078a0491e77b2ec6: crates/tc-bench/src/bin/fig15.rs

crates/tc-bench/src/bin/fig15.rs:
