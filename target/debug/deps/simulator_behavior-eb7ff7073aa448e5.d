/root/repo/target/debug/deps/simulator_behavior-eb7ff7073aa448e5.d: tests/simulator_behavior.rs

/root/repo/target/debug/deps/simulator_behavior-eb7ff7073aa448e5: tests/simulator_behavior.rs

tests/simulator_behavior.rs:
