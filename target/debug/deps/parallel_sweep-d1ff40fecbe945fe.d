/root/repo/target/debug/deps/parallel_sweep-d1ff40fecbe945fe.d: tests/parallel_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_sweep-d1ff40fecbe945fe.rmeta: tests/parallel_sweep.rs Cargo.toml

tests/parallel_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
