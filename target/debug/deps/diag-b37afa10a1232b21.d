/root/repo/target/debug/deps/diag-b37afa10a1232b21.d: crates/tc-bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-b37afa10a1232b21.rmeta: crates/tc-bench/src/bin/diag.rs Cargo.toml

crates/tc-bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
