/root/repo/target/debug/deps/future_work-32fb3d8d9577d7fa.d: crates/tc-bench/src/bin/future_work.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_work-32fb3d8d9577d7fa.rmeta: crates/tc-bench/src/bin/future_work.rs Cargo.toml

crates/tc-bench/src/bin/future_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
