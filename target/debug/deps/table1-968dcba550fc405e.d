/root/repo/target/debug/deps/table1-968dcba550fc405e.d: crates/tc-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-968dcba550fc405e.rmeta: crates/tc-bench/src/bin/table1.rs Cargo.toml

crates/tc-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
