/root/repo/target/debug/examples/quickstart-054ceb9f69ee7939.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-054ceb9f69ee7939.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
