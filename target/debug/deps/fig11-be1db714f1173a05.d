/root/repo/target/debug/deps/fig11-be1db714f1173a05.d: crates/tc-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-be1db714f1173a05: crates/tc-bench/src/bin/fig11.rs

crates/tc-bench/src/bin/fig11.rs:
