/root/repo/target/debug/deps/fig13a-a56d70552a93e2b6.d: crates/tc-bench/src/bin/fig13a.rs

/root/repo/target/debug/deps/fig13a-a56d70552a93e2b6: crates/tc-bench/src/bin/fig13a.rs

crates/tc-bench/src/bin/fig13a.rs:
