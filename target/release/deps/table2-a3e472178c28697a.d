/root/repo/target/release/deps/table2-a3e472178c28697a.d: crates/tc-bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-a3e472178c28697a: crates/tc-bench/src/bin/table2.rs

crates/tc-bench/src/bin/table2.rs:
