//! Tentpole integration tests: the parallel evaluation sweep must be
//! indistinguishable from the serial one on the wire (byte-identical
//! deterministic CSV), and a faulting implementation must cost exactly
//! its own cell, never the sweep.

use tc_compare::algos::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcOutput};
use tc_compare::algos::DeviceGraph;
use tc_compare::core::framework::csv::write_records;
use tc_compare::core::framework::registry::all_algorithms;
use tc_compare::core::{run_matrix, run_matrix_parallel, RunOutcome, RunRecord};
use tc_compare::graph::datasets::GenSpec;
use tc_compare::graph::{DatasetSpec, SizeClass};
use tc_compare::sim::{Device, DeviceMem, KernelConfig, SimError};

fn spec(name: &'static str, gen: GenSpec, seed: u64) -> DatasetSpec {
    DatasetSpec {
        name,
        paper_vertices: 0,
        paper_edges: 0,
        paper_avg_degree: 0.0,
        size_class: SizeClass::Small,
        gen,
        seed,
    }
}

/// The same reduced four-generator-family fixture the correctness suite
/// uses: one dataset per Table II generator.
fn fixture_specs() -> Vec<DatasetSpec> {
    vec![
        spec(
            "it-rmat",
            GenSpec::Rmat {
                scale: 12,
                raw_edges: 30_000,
            },
            1,
        ),
        spec(
            "it-er",
            GenSpec::Er {
                n: 4_000,
                raw_edges: 16_000,
            },
            2,
        ),
        spec(
            "it-ba",
            GenSpec::Ba {
                n: 3_000,
                m: 5,
                p_triad: 0.6,
            },
            3,
        ),
        spec(
            "it-grid",
            GenSpec::Grid {
                rows: 60,
                cols: 60,
                keep: 0.8,
                diag: 0.05,
            },
            4,
        ),
    ]
}

#[test]
fn parallel_matrix_matches_serial_record_for_record() {
    let dev = Device::v100();
    let algos = all_algorithms();
    let specs = fixture_specs();
    let serial = run_matrix(&dev, &algos, &specs);
    let parallel = run_matrix_parallel(&dev, &algos, &specs);
    assert_eq!(serial.len(), algos.len() * specs.len());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.algorithm, p.algorithm);
        assert_eq!(s.dataset, p.dataset);
        match (&s.outcome, &p.outcome) {
            (
                RunOutcome::Ok {
                    triangles: st,
                    kernel_cycles: sc,
                    counters: sk,
                    verified: sv,
                },
                RunOutcome::Ok {
                    triangles: pt,
                    kernel_cycles: pc,
                    counters: pk,
                    verified: pv,
                },
            ) => {
                assert_eq!(st, pt, "{} / {}", s.algorithm, s.dataset);
                assert_eq!(sc, pc, "{} / {}", s.algorithm, s.dataset);
                assert_eq!(sk, pk, "{} / {}", s.algorithm, s.dataset);
                assert_eq!((sv, pv), (&true, &true), "{} / {}", s.algorithm, s.dataset);
            }
            (a, b) => panic!("{} / {}: {a:?} vs {b:?}", s.algorithm, s.dataset),
        }
    }

    // The deterministic CSV — the artifact figures are plotted from —
    // must be byte-identical between the two sweeps.
    let mut serial_csv = Vec::new();
    write_records(&mut serial_csv, &serial).unwrap();
    let mut parallel_csv = Vec::new();
    write_records(&mut parallel_csv, &parallel).unwrap();
    assert_eq!(serial_csv, parallel_csv, "CSV not byte-identical");
}

/// A deliberately broken "implementation" whose kernel reads past the
/// end of the edge-destination buffer on every lane.
struct OobAlgo;

impl tc_compare::algos::api::TcAlgorithm for OobAlgo {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "oob-probe",
            reference: "synthetic fault probe",
            year: 2024,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Merge,
            granularity: Granularity::Coarse,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        dg: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let edges = dg.num_edges as usize;
        let dst = dg.edge_dst;
        let stats = dev.launch(mem, KernelConfig::new(4, 128), move |blk| {
            blk.phase(move |lane| {
                let _ = lane.ld_global(dst, edges + lane.global_tid() as usize);
            });
        })?;
        Ok(TcOutput {
            triangles: 0,
            stats,
        })
    }
}

#[test]
fn faulting_algorithm_yields_failed_cells_while_sweep_continues() {
    let dev = Device::v100();
    let mut algos = all_algorithms();
    algos.push(Box::new(OobAlgo));
    let specs = fixture_specs();
    let records = run_matrix_parallel(&dev, &algos, &specs);
    assert_eq!(records.len(), algos.len() * specs.len());

    let failed: Vec<&RunRecord> = records
        .iter()
        .filter(|r| matches!(r.outcome, RunOutcome::Failed(_)))
        .collect();
    // The probe fails on every dataset — one Failed record per fixture —
    // and nothing else does.
    assert_eq!(failed.len(), specs.len());
    for f in &failed {
        assert_eq!(f.algorithm, "oob-probe");
        match &f.outcome {
            RunOutcome::Failed(SimError::MemoryFault { index, len, .. }) => {
                assert!(index >= len, "fault should be out of bounds");
            }
            other => panic!("expected MemoryFault, got {other:?}"),
        }
    }
    assert!(
        records
            .iter()
            .filter(|r| r.algorithm != "oob-probe")
            .all(|r| r.is_verified()),
        "healthy cells must still verify"
    );
}
