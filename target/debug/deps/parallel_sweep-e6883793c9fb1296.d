/root/repo/target/debug/deps/parallel_sweep-e6883793c9fb1296.d: tests/parallel_sweep.rs

/root/repo/target/debug/deps/parallel_sweep-e6883793c9fb1296: tests/parallel_sweep.rs

tests/parallel_sweep.rs:
