//! Bisson & Fatica (2017) — "High performance exact triangle counting on
//! GPUs".
//!
//! Vertex-centric bitmap algorithm (Section III-C / Figure 5). For every
//! vertex `u` a bitmap over the vertex-ID space marks the 1-hop
//! out-neighbours (built with atomic OR); the 2-hop lists are then
//! scanned, each member of `N(u)` handled by **one thread** walking that
//! neighbour's list and testing bits. After the scan the set bits are
//! cleared for the next vertex.
//!
//! Workload adaptation follows the published degree thresholds: blocks of
//! 512 threads per vertex when the average out-degree exceeds 38, 128
//! when it is between 3.8 and 38, and 32 below that (the paper's
//! thread-per-vertex regime is approximated by the smallest block — the
//! cooperative structure is identical, only the resource grant shrinks).
//! The bitmap lives in shared memory when the vertex count fits (the
//! graph-compaction variant of their 2018 update), which costs occupancy:
//! a 48 KB bitmap means one resident block per SM. That occupancy loss
//! plus the build/clear synchronization is exactly why Bisson sits at the
//! bottom of Figure 11.

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

/// The Bisson algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Bisson;

impl TcAlgorithm for Bisson {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Bisson",
            reference: "Bisson & Fatica, TPDS 2017",
            year: 2017,
            iterator: IteratorKind::Vertex,
            intersection: Intersection::BitMap,
            granularity: Granularity::Coarse,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let avg = g.avg_out_degree();
        let block_dim = if avg > 38.0 {
            512
        } else if avg > 3.8 {
            128
        } else {
            32
        };
        let nv = g.num_vertices;
        let bitmap_words = (nv as usize).div_ceil(32).max(1) as u32;
        // The bitmap lives in shared memory only when it is genuinely
        // small (<= 8 KB, keeping several blocks resident); otherwise it
        // goes to a per-block slot in a global arena, with the atomic
        // build/clear traffic that makes Bisson the slowest of the corpus.
        let use_shared = bitmap_words <= 2048;

        // When the bitmap does not fit in shared memory, every block gets
        // a slot in a global bitmap arena — the allocation that blows up
        // on large vertex counts.
        let grid = if use_shared {
            g.owned_pivots().clamp(1, 2048)
        } else {
            g.owned_pivots().clamp(1, 320)
        };
        let global_bitmaps = if use_shared {
            None
        } else {
            Some(mem.alloc_zeroed(bitmap_words as usize * grid as usize, "bisson.bitmaps")?)
        };
        let counter = mem.alloc_zeroed(1, "bisson.counter")?;
        let (pivot_lo, pivot_hi) = (g.pivot_lo, g.pivot_hi);

        let mut cfg = KernelConfig::new(grid, block_dim);
        if use_shared {
            cfg = cfg.with_shared_words(bitmap_words);
        }

        let stats = dev.launch(mem, cfg, |blk| {
            let bd = blk.block_dim();
            let slot_base = (blk.block_idx() as usize) * bitmap_words as usize;
            let mut locals = vec![0u32; bd as usize];
            if global_bitmaps.is_none() {
                // Shared memory starts as garbage on real hardware: clear
                // the block's bitmap once before the first build phase
                // (phase 3 re-clears the touched bits after each vertex).
                blk.phase(|lane| {
                    let mut w = lane.tid() as usize;
                    while w < bitmap_words as usize {
                        lane.st_shared(w, 0);
                        w += bd as usize;
                    }
                });
            }
            let mut u = pivot_lo + blk.block_idx();
            while u < pivot_hi {
                // Phase 1: build the bitmap of N(u) with atomic ORs.
                blk.phase(|lane| {
                    let base = lane.ld_global(g.row_offsets, u as usize);
                    let end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let mut k = base + lane.tid();
                    while k < end {
                        let w = lane.ld_global(g.col_indices, k as usize);
                        let word = (w / 32) as usize;
                        let bit = 1u32 << (w % 32);
                        match global_bitmaps {
                            Some(bufs) => {
                                lane.atomic_or_global(bufs, slot_base + word, bit);
                            }
                            None => {
                                lane.atomic_or_shared(word, bit);
                            }
                        }
                        k += bd;
                    }
                });
                // Phase 2: one thread per member of N(u) walks that
                // member's own list and tests bits.
                blk.phase(|lane| {
                    let base = lane.ld_global(g.row_offsets, u as usize);
                    let end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let mut cnt = 0u32;
                    let mut k = base + lane.tid();
                    while k < end {
                        let v = lane.ld_global(g.col_indices, k as usize);
                        let v_base = lane.ld_global(g.row_offsets, v as usize);
                        let v_end = lane.ld_global(g.row_offsets, v as usize + 1);
                        for p in v_base..v_end {
                            let w = lane.ld_global(g.col_indices, p as usize);
                            let word = (w / 32) as usize;
                            lane.compute(1);
                            let bits = match global_bitmaps {
                                Some(bufs) => lane.ld_global(bufs, slot_base + word),
                                None => lane.ld_shared(word),
                            };
                            if bits >> (w % 32) & 1 == 1 {
                                cnt += 1;
                            }
                        }
                        lane.converge();
                        k += bd;
                    }
                    locals[lane.tid() as usize] += cnt;
                });
                // Phase 3: clear the bits we set.
                blk.phase(|lane| {
                    let base = lane.ld_global(g.row_offsets, u as usize);
                    let end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let mut k = base + lane.tid();
                    while k < end {
                        let w = lane.ld_global(g.col_indices, k as usize);
                        let word = (w / 32) as usize;
                        let mask = !(1u32 << (w % 32));
                        match global_bitmaps {
                            Some(bufs) => {
                                lane.atomic_and_global(bufs, slot_base + word, mask);
                            }
                            None => {
                                lane.atomic_and_shared(word, mask);
                            }
                        }
                        k += bd;
                    }
                });
                u += blk.grid_dim();
            }
            blk.phase(|lane| {
                warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        if let Some(bufs) = global_bitmaps {
            mem.free(bufs)?;
        }
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: per-worker bitmap build/probe/clear over each
    /// vertex's out-list — the CPU shape of the bitmap arena slots.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_vertex_bitmap(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &Bisson,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&Bisson);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&Bisson, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Bisson.meta();
        assert_eq!(m.year, 2017);
        assert_eq!(m.iterator, IteratorKind::Vertex);
        assert_eq!(m.intersection, Intersection::BitMap);
    }
}
