/root/repo/target/release/deps/gpu_sim-a482008141c84389.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs

/root/repo/target/release/deps/libgpu_sim-a482008141c84389.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs

/root/repo/target/release/deps/libgpu_sim-a482008141c84389.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/schedule.rs:
crates/gpu-sim/src/trace.rs:
