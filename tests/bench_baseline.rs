//! The committed perf baseline (`BENCH_sim.json`, written by
//! `tc-bench --bin bench_sweep --bench-json`) must stay parseable and
//! complete: schema v1, one verified record per registered algorithm on
//! the baseline dataset. Future PRs regress their sweep numbers against
//! this file, so CI fails fast if it rots.

use tc_compare::core::framework::registry::all_algorithms;

#[test]
fn committed_bench_baseline_is_valid_and_complete() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sim.json");
    let text = std::fs::read_to_string(path).expect("BENCH_sim.json is committed at the repo root");
    let records = tc_bench::bench_json::validate(&text).expect("schema v1");
    let algos = all_algorithms();
    assert_eq!(
        records,
        algos.len(),
        "one baseline record per registered algorithm"
    );
    // Every algorithm appears by name with a verified ok outcome (the
    // validator already type-checked every field).
    for algo in &algos {
        let needle = format!(
            "{{\"algorithm\": \"{}\", \"dataset\": \"Wiki-Talk\"",
            algo.name()
        );
        let rec = text
            .lines()
            .find(|l| l.trim_start().starts_with(&needle))
            .unwrap_or_else(|| panic!("no Wiki-Talk baseline record for {}", algo.name()));
        assert!(
            rec.contains("\"outcome\": \"ok\"") && rec.contains("\"verified\": true"),
            "{} baseline must be a verified ok run: {rec}",
            algo.name()
        );
    }
}
