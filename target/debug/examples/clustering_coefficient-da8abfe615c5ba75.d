/root/repo/target/debug/examples/clustering_coefficient-da8abfe615c5ba75.d: examples/clustering_coefficient.rs

/root/repo/target/debug/examples/clustering_coefficient-da8abfe615c5ba75: examples/clustering_coefficient.rs

examples/clustering_coefficient.rs:
