/root/repo/target/debug/deps/fig11-8b61ea325ca727d1.d: crates/tc-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-8b61ea325ca727d1: crates/tc-bench/src/bin/fig11.rs

crates/tc-bench/src/bin/fig11.rs:
