//! Green (2014) — "Fast Triangle Counting on the GPU".
//!
//! Edge-centric, fine-grained (Section III-B / Figure 4): a group of
//! threads processes each edge using the **GPU merge path** algorithm.
//! Parallel partition lines split the merge of the two neighbour lists
//! into equal-sized sub-merges, one per thread: every thread first
//! binary-searches its cross diagonal of the merge matrix, then runs a
//! small sequential merge over its slice.
//!
//! The paper's configuration (Section IV "Program configuration"):
//! gridSize = |E|/10, blockSize = 512, 32 threads per intersection. The
//! weakness the evaluation shows: for the many low-degree edges of real
//! graphs the partition overhead (a diagonal binary search per lane)
//! exceeds the merge itself, so Green lands at the bottom of Figure 11.

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::{diagonal_search, warp_reduce_add};

const BLOCK_DIM: u32 = 512;
/// Threads cooperating on one intersection (one warp).
const GROUP: u32 = 32;

/// The Green algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Green;

impl TcAlgorithm for Green {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Green",
            reference: "Green, Yalamanchili & Munguia, IA^3 2014",
            year: 2014,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Merge,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "green.counter")?;
        // gridSize = |E| / 10 per the paper's best-found configuration,
        // clamped to something sane for tiny graphs. |E| here is this
        // device's edge range (the whole graph on a single device).
        let grid = (g.owned_edges() / 10).clamp(1, 4096);
        let cfg = KernelConfig::new(grid, BLOCK_DIM);
        let groups_total = grid * (BLOCK_DIM / GROUP);
        let (edge_lo, edge_hi) = (g.edge_lo, g.edge_hi);

        let stats = dev.launch(mem, cfg, |blk| {
            blk.phase(|lane| {
                // Group id across the grid; lane index within the group.
                // global_tid is u64 (huge grids don't wrap), so group
                // arithmetic stays in u64 up to the edge-index cast.
                let group = lane.global_tid() / GROUP as u64;
                let lane_in_group = lane.tid() % GROUP;
                let mut local = 0u32;
                // Groups stride over this device's edge range.
                let mut e = edge_lo as u64 + group;
                while e < edge_hi as u64 {
                    let u = lane.ld_global(g.edge_src, e as usize);
                    let v = lane.ld_global(g.edge_dst, e as usize);
                    let a_base = lane.ld_global(g.row_offsets, u as usize);
                    let a_end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let b_base = lane.ld_global(g.row_offsets, v as usize);
                    let b_end = lane.ld_global(g.row_offsets, v as usize + 1);
                    let an = a_end - a_base;
                    let bn = b_end - b_base;
                    let total = an + bn;
                    if total > 0 {
                        // Partition: this lane owns merge-path segment
                        // [d0, d1).
                        let d0 = (total * lane_in_group) / GROUP;
                        let d1 = (total * (lane_in_group + 1)) / GROUP;
                        if d1 > d0 {
                            let i0 =
                                diagonal_search(lane, g.col_indices, a_base, an, b_base, bn, d0);
                            let j0 = d0 - i0;
                            // Sequential merge of the slice, counting
                            // matches. A match at (i, j) is consumed as
                            // two path steps; attribute it to the lane
                            // whose segment contains the *first* step.
                            let (mut i, mut j) = (i0, j0);
                            let mut steps = d1 - d0;
                            while steps > 0 && i < an && j < bn {
                                let av = lane.ld_global(g.col_indices, (a_base + i) as usize);
                                let bv = lane.ld_global(g.col_indices, (b_base + j) as usize);
                                lane.compute(1);
                                match av.cmp(&bv) {
                                    std::cmp::Ordering::Equal => {
                                        local += 1;
                                        i += 1;
                                        j += 1;
                                        steps = steps.saturating_sub(2);
                                    }
                                    std::cmp::Ordering::Less => {
                                        i += 1;
                                        steps -= 1;
                                    }
                                    std::cmp::Ordering::Greater => {
                                        j += 1;
                                        steps -= 1;
                                    }
                                }
                            }
                        }
                    }
                    lane.converge();
                    e += groups_total as u64;
                }
                warp_reduce_add(lane, counter, 0, local);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: Green's merge-path partitioning only balances device
    /// lanes; on the CPU the same work is a plain parallel forward merge.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_merge(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &Green,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&Green);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&Green, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Green.meta();
        assert_eq!(m.year, 2014);
        assert_eq!(m.iterator, IteratorKind::Edge);
        assert_eq!(m.granularity, Granularity::Fine);
    }
}
