/root/repo/target/debug/deps/fig12-545b49271e1e751a.d: crates/tc-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-545b49271e1e751a: crates/tc-bench/src/bin/fig12.rs

crates/tc-bench/src/bin/fig12.rs:
