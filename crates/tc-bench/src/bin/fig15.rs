//! Regenerates Figure 15: GroupTC vs Polak vs TRUST running time on all
//! datasets, plus the speedup summary the paper quotes (GroupTC vs Polak
//! 1.03–3.83x on 17/19, 0.85x/0.96x on the two smallest; vs TRUST
//! 1.09–2.92x on small/medium, 0.94–1.01x on large).

use tc_algos::api::TcAlgorithm;
use tc_algos::{polak::Polak, trust::Trust};
use tc_core::framework::report::{extract, format_sig, MatrixView, Table};
use tc_core::GroupTc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let algos: Vec<Box<dyn TcAlgorithm>> = vec![
        Box::new(Polak),
        Box::new(Trust),
        Box::new(GroupTc::default()),
    ];
    let records = tc_bench::sweep(&algos, &datasets);
    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure(
            "FIGURE 15: GroupTC vs Polak vs TRUST (modelled ms)",
            extract::time_ms
        )
    );

    let mut t = Table::new(&["dataset", "class", "vs Polak", "vs TRUST"]);
    for spec in &datasets {
        let group = view.value("GroupTC", spec.name, extract::time_ms);
        let polak = view.value("Polak", spec.name, extract::time_ms);
        let trust = view.value("TRUST", spec.name, extract::time_ms);
        let cell = |base: Option<f64>| match (base, group) {
            (Some(b), Some(g)) if g > 0.0 => format!("{}x", format_sig(b / g)),
            _ => "x".to_string(),
        };
        t.row(vec![
            spec.name.to_string(),
            format!("{:?}", spec.size_class),
            cell(polak),
            cell(trust),
        ]);
    }
    println!("GroupTC speedups (paper: vs Polak up to 3.83x, vs TRUST up to 2.92x,");
    println!("0.94-1.01x on large):");
    println!("{}", t.render());
}
