/root/repo/target/debug/deps/tc_compare-6774a1b1a0e43d0e.d: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-6774a1b1a0e43d0e.rlib: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-6774a1b1a0e43d0e.rmeta: src/lib.rs

src/lib.rs:
