/root/repo/target/debug/deps/cross_algo-4e50ef991df8564f.d: crates/tc-algos/tests/cross_algo.rs

/root/repo/target/debug/deps/cross_algo-4e50ef991df8564f: crates/tc-algos/tests/cross_algo.rs

crates/tc-algos/tests/cross_algo.rs:
