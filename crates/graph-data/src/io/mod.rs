//! Data transformation tools: parsers and writers for the edge-list
//! formats the published implementations consume (Section IV: "text edge
//! lists, binary edge lists, CSRs, etc."), with format auto-detection.

mod binary;
mod csr_file;
mod matrix_market;
mod snap;

pub use binary::{read_binary_edges, write_binary_edges, BINARY_MAGIC};
pub use csr_file::{read_csr, write_csr, CSR_MAGIC};
pub(crate) use csr_file::{read_csr_header, CsrHeader};
pub use matrix_market::{read_matrix_market, write_matrix_market, MM_MAGIC};
pub use snap::{
    parse_snap_text, parse_snap_text_chunked, parse_snap_text_normalized, write_snap_text,
};

use std::io::{self, Read};

use crate::types::EdgeList;

/// Which on-disk format a byte stream is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    SnapText,
    BinaryEdges,
    Csr,
    MatrixMarket,
}

/// Sniff the format from the leading bytes.
pub fn detect_format(head: &[u8]) -> Format {
    if head.starts_with(BINARY_MAGIC) {
        Format::BinaryEdges
    } else if head.starts_with(CSR_MAGIC) {
        Format::Csr
    } else if head.starts_with(MM_MAGIC) {
        Format::MatrixMarket
    } else {
        Format::SnapText
    }
}

/// Read an edge list from any supported format.
pub fn read_edges_auto<R: Read>(mut reader: R) -> io::Result<EdgeList> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    match detect_format(&bytes) {
        Format::BinaryEdges => read_binary_edges(&bytes[..]),
        Format::SnapText => parse_snap_text(&bytes[..]),
        Format::Csr => {
            let csr = read_csr(&bytes[..])?;
            Ok(EdgeList::new(csr.edge_iter().collect()))
        }
        Format::MatrixMarket => read_matrix_market(&bytes[..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection() {
        assert_eq!(detect_format(b"# comment\n0 1\n"), Format::SnapText);
        assert_eq!(detect_format(BINARY_MAGIC), Format::BinaryEdges);
        assert_eq!(detect_format(CSR_MAGIC), Format::Csr);
        assert_eq!(
            detect_format(b"%%MatrixMarket matrix"),
            Format::MatrixMarket
        );
        assert_eq!(detect_format(b""), Format::SnapText);
    }

    #[test]
    fn auto_roundtrip_all_formats() {
        let edges = EdgeList::new(vec![(0, 1), (1, 2), (5, 3)]);

        let mut text = Vec::new();
        write_snap_text(&mut text, &edges).unwrap();
        assert_eq!(read_edges_auto(&text[..]).unwrap(), edges);

        let mut bin = Vec::new();
        write_binary_edges(&mut bin, &edges).unwrap();
        assert_eq!(read_edges_auto(&bin[..]).unwrap(), edges);

        let csr =
            crate::types::Csr::from_adjacency(&[vec![1], vec![2], vec![], vec![], vec![], vec![3]]);
        let mut csr_bytes = Vec::new();
        write_csr(&mut csr_bytes, &csr).unwrap();
        let roundtrip = read_edges_auto(&csr_bytes[..]).unwrap();
        assert_eq!(roundtrip, EdgeList::new(vec![(0, 1), (1, 2), (5, 3)]));

        let mut mm = Vec::new();
        write_matrix_market(&mut mm, &edges).unwrap();
        assert_eq!(read_edges_auto(&mm[..]).unwrap(), edges);
    }
}
