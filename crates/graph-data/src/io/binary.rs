//! Binary edge-list format: magic, little-endian `u64` edge count, then
//! `(u32, u32)` pairs. This is the fast interchange format the framework
//! feeds to implementations that want pre-parsed input.

use std::io::{self, Read, Write};

use crate::types::EdgeList;

/// File magic for binary edge lists.
pub const BINARY_MAGIC: &[u8; 8] = b"TCBEDGE1";

/// Byte offset of the payload (magic + count header).
const HEADER_BYTES: u64 = 16;

/// Streaming slab size: payloads are read in bounded pieces so a header
/// declaring more edges than the file holds fails with the truncation
/// offset instead of driving one giant up-front allocation.
const SLAB_BYTES: usize = 1 << 20;

/// Write the binary format.
pub fn write_binary_edges<W: Write>(mut w: W, edges: &EdgeList) -> io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(edges.len() * 8);
    for &(u, v) in &edges.edges {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// `read_exact` that reports the absolute byte offset where the stream
/// ran dry, instead of a positionless `UnexpectedEof`.
pub(crate) fn read_full_at<R: Read>(r: &mut R, buf: &mut [u8], file_off: u64) -> io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => {
                return Err(invalid(format!(
                    "truncated payload: expected {} more byte(s) at byte offset {}",
                    buf.len() - filled,
                    file_off + filled as u64,
                )))
            }
            n => filled += n,
        }
    }
    Ok(())
}

/// Read the binary format, validating magic and length. Every length
/// computation is checked: a header declaring an edge count whose payload
/// size overflows, or exceeds what the stream actually holds, returns
/// `InvalidData` with the byte offset — never a panic or a runaway
/// allocation.
pub fn read_binary_edges<R: Read>(mut r: R) -> io::Result<EdgeList> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(invalid(
            "not a tc-compare binary edge list (bad magic)".to_string(),
        ));
    }
    let mut count_bytes = [0u8; 8];
    read_full_at(&mut r, &mut count_bytes, 8)?;
    let count = u64::from_le_bytes(count_bytes);
    let payload_bytes = count.checked_mul(8).ok_or_else(|| {
        invalid(format!(
            "declared edge count {count} overflows the payload size (header at byte offset 8)"
        ))
    })?;
    let count_usize = usize::try_from(count).map_err(|_| {
        invalid(format!(
            "declared edge count {count} exceeds the address space (header at byte offset 8)"
        ))
    })?;

    // Stream the payload in bounded slabs; capacity grows with the bytes
    // actually present, so a hostile count cannot reserve it up front.
    let mut edges = Vec::with_capacity(count_usize.min(SLAB_BYTES / 8));
    let mut slab = vec![0u8; SLAB_BYTES.min(payload_bytes.max(1) as usize)];
    let mut consumed = 0u64;
    while consumed < payload_bytes {
        let want = usize::try_from((payload_bytes - consumed).min(SLAB_BYTES as u64)).unwrap();
        read_full_at(&mut r, &mut slab[..want], HEADER_BYTES + consumed)?;
        edges.extend(slab[..want].chunks_exact(8).map(|c| {
            (
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            )
        }));
        consumed += want as u64;
    }
    let mut trailer = [0u8; 1];
    if r.read(&mut trailer)? != 0 {
        return Err(invalid("trailing bytes after declared edge count".into()));
    }
    Ok(EdgeList::new(edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = EdgeList::new(vec![(0, u32::MAX), (7, 7), (123456, 654321)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        assert_eq!(read_binary_edges(&bytes[..]).unwrap(), e);
    }

    #[test]
    fn empty_roundtrip() {
        let e = EdgeList::default();
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        assert_eq!(read_binary_edges(&bytes[..]).unwrap(), e);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary_edges(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_rejected_with_offset() {
        let e = EdgeList::new(vec![(1, 2), (3, 4)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        bytes.truncate(bytes.len() - 3);
        let err = read_binary_edges(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Two edges = 16 payload bytes; 3 were cut, so the stream dries
        // up at absolute offset 16 (header) + 13.
        assert!(err.to_string().contains("byte offset 29"), "{err}");
    }

    #[test]
    fn truncated_header_rejected() {
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&[1, 0, 0]); // count cut short
        let err = read_binary_edges(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte offset"), "{err}");
    }

    #[test]
    fn overflowing_declared_count_rejected() {
        // count * 8 overflows u64: must be a structured error, not a
        // panic or an absurd allocation.
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let err = read_binary_edges(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn count_exceeding_stream_length_rejected_without_huge_alloc() {
        // Declares 2^40 edges but holds eight bytes of payload: the
        // reader must fail at the truncation point, having allocated at
        // most one slab.
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let err = read_binary_edges(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte offset 24"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let e = EdgeList::new(vec![(1, 2)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        bytes.push(0);
        assert!(read_binary_edges(&bytes[..]).is_err());
    }
}
