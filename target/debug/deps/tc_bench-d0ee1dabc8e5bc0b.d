/root/repo/target/debug/deps/tc_bench-d0ee1dabc8e5bc0b.d: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-d0ee1dabc8e5bc0b.rlib: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-d0ee1dabc8e5bc0b.rmeta: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
