/root/repo/target/debug/deps/background_approaches-f1f886269581c161.d: crates/tc-bench/src/bin/background_approaches.rs

/root/repo/target/debug/deps/background_approaches-f1f886269581c161: crates/tc-bench/src/bin/background_approaches.rs

crates/tc-bench/src/bin/background_approaches.rs:
