/root/repo/target/release/deps/background_approaches-4b077ce3cee9737e.d: crates/tc-bench/src/bin/background_approaches.rs

/root/repo/target/release/deps/background_approaches-4b077ce3cee9737e: crates/tc-bench/src/bin/background_approaches.rs

crates/tc-bench/src/bin/background_approaches.rs:
