/root/repo/target/debug/deps/background_approaches-ed23f7d9b06fd552.d: crates/tc-bench/src/bin/background_approaches.rs

/root/repo/target/debug/deps/background_approaches-ed23f7d9b06fd552: crates/tc-bench/src/bin/background_approaches.rs

crates/tc-bench/src/bin/background_approaches.rs:
