/root/repo/target/debug/deps/table1-d917bbf7e2ea343f.d: crates/tc-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-d917bbf7e2ea343f.rmeta: crates/tc-bench/src/bin/table1.rs Cargo.toml

crates/tc-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
