//! Native host kernels: rayon-parallel CPU analogues of the GPU
//! intersection strategies.
//!
//! Every [`TcAlgorithm`](crate::api::TcAlgorithm) also executes on the
//! host via [`count_cpu`](crate::api::TcAlgorithm::count_cpu), using the
//! same prepared DAG the device kernels consume. The helpers here mirror
//! the four Section II-B intersection primitives (delegating the
//! per-pair work to the `graph_data::cpu_ref` oracles) while the
//! *parallel structure* mirrors each algorithm's iterator model: one
//! rayon task per vertex with its out-edges processed inline, which is
//! the standard multicore shape for both vertex- and edge-iterator
//! counters (an edge task list would only add scheduling overhead).
//!
//! The CPU path deliberately models nothing: no cycles, no profiling
//! counters — it exists to serve real counts at wall-clock speed and to
//! act as a differential twin for the simulator (see
//! `tc_core::framework::backend`).

use graph_data::cpu_ref::{intersect_binsearch, intersect_hash, intersect_merge};
use graph_data::DagGraph;
use rayon::prelude::*;

/// Forward counting with the two-pointer merge primitive (Green, Polak):
/// for every DAG edge (u,v), merge-intersect the out-lists of u and v.
pub fn par_edge_merge(dag: &DagGraph) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            csr.neighbors(u)
                .iter()
                .map(|&v| intersect_merge(csr.neighbors(u), csr.neighbors(v)))
                .sum::<u64>()
        })
        .sum()
}

/// Forward counting with the binary-search primitive (TriCore, Hu,
/// GroupTC): each key of the shorter list descends the longer one.
pub fn par_edge_binsearch(dag: &DagGraph) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            csr.neighbors(u)
                .iter()
                .map(|&v| intersect_binsearch(csr.neighbors(u), csr.neighbors(v)))
                .sum::<u64>()
        })
        .sum()
}

/// Forward counting with the chained-bucket hash primitive (H-INDEX):
/// fixed bucket count, shorter list builds the table.
pub fn par_edge_hash(dag: &DagGraph, buckets: usize) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            csr.neighbors(u)
                .iter()
                .map(|&v| intersect_hash(csr.neighbors(u), csr.neighbors(v), buckets))
                .sum::<u64>()
        })
        .sum()
}

/// Vertex-iterator hash counting with a degree-adaptive bucket count
/// (TRUST's warp/block mode switch): vertices whose out-list exceeds
/// `threshold` use `large_buckets`, the rest `small_buckets`.
pub fn par_vertex_hash(
    dag: &DagGraph,
    threshold: u32,
    small_buckets: usize,
    large_buckets: usize,
) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            let nbrs = csr.neighbors(u);
            let buckets = if nbrs.len() as u32 > threshold {
                large_buckets
            } else {
                small_buckets
            };
            nbrs.iter()
                .map(|&v| intersect_hash(nbrs, csr.neighbors(v), buckets))
                .sum::<u64>()
        })
        .sum()
}

/// Vertex-iterator bitmap counting (Bisson): each worker thread owns one
/// bitmap spanning the vertex-ID space, marks N⁺(u) once, probes every
/// neighbour's out-list against it, then clears only the set bits —
/// exactly the build/probe/clear cycle of the GPU kernel, with rayon's
/// `map_init` standing in for the per-block bitmap arena slot.
pub fn par_vertex_bitmap(dag: &DagGraph) -> u64 {
    let csr = dag.csr();
    let words = (csr.num_vertices() as usize).div_ceil(32).max(1);
    (0..csr.num_vertices())
        .into_par_iter()
        .map_init(
            || vec![0u32; words],
            |bits, u| {
                let nbrs = csr.neighbors(u);
                for &x in nbrs {
                    bits[x as usize / 32] |= 1 << (x % 32);
                }
                let mut local = 0u64;
                for &v in nbrs {
                    for &w in csr.neighbors(v) {
                        local += u64::from(bits[w as usize / 32] >> (w % 32) & 1);
                    }
                }
                for &x in nbrs {
                    bits[x as usize / 32] &= !(1 << (x % 32));
                }
                local
            },
        )
        .sum()
}

/// Per-edge adaptive counting (Fox): pick merge or binary search per
/// edge by the cheaper estimated workload, using the same estimators as
/// the GPU binning prepass.
pub fn par_edge_adaptive(dag: &DagGraph) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            let a = csr.neighbors(u);
            csr.neighbors(u)
                .iter()
                .map(|&v| {
                    let b = csr.neighbors(v);
                    let (du, dv) = (a.len() as u32, b.len() as u32);
                    let small = du.min(dv) as u64;
                    let large = u64::from(du.max(dv).max(1));
                    let bsearch = small * (64 - large.leading_zeros() as u64);
                    let merge = du as u64 + dv as u64;
                    if bsearch < merge {
                        intersect_binsearch(a, b)
                    } else {
                        intersect_merge(a, b)
                    }
                })
                .sum::<u64>()
        })
        .sum()
}

/// Per-edge hash/binary-search routing (GroupTC-H): with the shorter
/// out-list as keys and the longer as the search table (the same
/// flipping rule as the device split), an edge whose table has at least
/// `table_min` entries probed by at least `keys_min` keys intersects
/// through a chained hash; everything else binary-searches.
pub fn par_edge_adaptive_hash(
    dag: &DagGraph,
    table_min: u32,
    keys_min: u32,
    buckets: usize,
) -> u64 {
    let csr = dag.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            let a = csr.neighbors(u);
            csr.neighbors(u)
                .iter()
                .map(|&v| {
                    let b = csr.neighbors(v);
                    let keys = a.len().min(b.len()) as u32;
                    let table = a.len().max(b.len()) as u32;
                    if table >= table_min && keys >= keys_min {
                        intersect_hash(a, b, buckets)
                    } else {
                        intersect_binsearch(a, b)
                    }
                })
                .sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_data::{clean_edges, cpu_ref, gen, orient, Orientation};

    #[test]
    fn all_host_kernels_agree_with_the_oracle() {
        for (label, edges) in [
            ("rmat", gen::rmat(8, 2500, 0.57, 0.19, 0.19, 0.05, 31)),
            ("er", gen::erdos_renyi(150, 900, 32)),
            ("ba", gen::barabasi_albert(200, 5, 0.5, 33)),
        ] {
            let (g, _) = clean_edges(&edges);
            let expected = cpu_ref::node_iterator(&g);
            for o in [
                Orientation::ById,
                Orientation::DegreeAsc,
                Orientation::DegreeDesc,
            ] {
                let dag = orient(&g, o);
                assert_eq!(par_edge_merge(&dag), expected, "{label} merge {o:?}");
                assert_eq!(par_edge_binsearch(&dag), expected, "{label} bin {o:?}");
                assert_eq!(par_edge_hash(&dag, 32), expected, "{label} hash {o:?}");
                assert_eq!(
                    par_vertex_hash(&dag, 100, 32, 1024),
                    expected,
                    "{label} vhash {o:?}"
                );
                assert_eq!(par_vertex_bitmap(&dag), expected, "{label} bitmap {o:?}");
                assert_eq!(par_edge_adaptive(&dag), expected, "{label} adaptive {o:?}");
                assert_eq!(
                    par_edge_adaptive_hash(&dag, 16, 4, 32),
                    expected,
                    "{label} ahash {o:?}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_counts_zero_on_every_kernel() {
        let (g, _) = clean_edges(&graph_data::EdgeList::new(vec![(0, 1)]));
        let dag = orient(&g, Orientation::ById);
        assert_eq!(par_edge_merge(&dag), 0);
        assert_eq!(par_edge_binsearch(&dag), 0);
        assert_eq!(par_edge_hash(&dag, 32), 0);
        assert_eq!(par_vertex_hash(&dag, 100, 32, 1024), 0);
        assert_eq!(par_vertex_bitmap(&dag), 0);
        assert_eq!(par_edge_adaptive(&dag), 0);
        assert_eq!(par_edge_adaptive_hash(&dag, 16, 4, 32), 0);
    }
}
