/root/repo/target/debug/examples/algorithm_comparison-b6ac9675f49cac63.d: examples/algorithm_comparison.rs

/root/repo/target/debug/examples/algorithm_comparison-b6ac9675f49cac63: examples/algorithm_comparison.rs

examples/algorithm_comparison.rs:
