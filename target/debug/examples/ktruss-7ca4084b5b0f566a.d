/root/repo/target/debug/examples/ktruss-7ca4084b5b0f566a.d: examples/ktruss.rs Cargo.toml

/root/repo/target/debug/examples/libktruss-7ca4084b5b0f566a.rmeta: examples/ktruss.rs Cargo.toml

examples/ktruss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
