/root/repo/target/debug/deps/fig11-8c91c487dcccc568.d: crates/tc-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-8c91c487dcccc568: crates/tc-bench/src/bin/fig11.rs

crates/tc-bench/src/bin/fig11.rs:
