/root/repo/target/debug/deps/tc_bench-c747683837e1b841.d: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-c747683837e1b841.rlib: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-c747683837e1b841.rmeta: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
