use std::sync::atomic::{AtomicU32, Ordering};

use crate::{Device, SimError};

/// Handle to a device-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

struct Buffer {
    /// Byte address of the first word in the flat device address space.
    base: u64,
    data: Vec<AtomicU32>,
    name: String,
}

/// The device's global-memory address space.
///
/// All words are `AtomicU32` so that blocks executing in parallel (on
/// rayon workers) can load, store and RMW concurrently, just like CUDA
/// thread blocks. Capacity is bounded by the owning [`Device`]'s
/// configuration; exceeding it yields [`SimError::OutOfMemory`], which is
/// how several published implementations fail on the largest graphs.
pub struct DeviceMem {
    buffers: Vec<Buffer>,
    capacity_words: u64,
    allocated_words: u64,
    next_base: u64,
}

/// Buffers are aligned to 256 bytes like `cudaMalloc` allocations, so a
/// buffer's element 0 always starts a fresh sector.
const ALLOC_ALIGN: u64 = 256;

impl DeviceMem {
    pub fn new(device: &Device) -> Self {
        DeviceMem {
            buffers: Vec::new(),
            capacity_words: device.config().global_mem_words,
            allocated_words: 0,
            next_base: 0,
        }
    }

    /// Words still available for allocation.
    pub fn available_words(&self) -> u64 {
        self.capacity_words - self.allocated_words
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> u64 {
        self.allocated_words
    }

    fn alloc_inner(&mut self, len: usize, name: &str) -> Result<BufId, SimError> {
        let words = len as u64;
        if words > self.available_words() {
            return Err(SimError::OutOfMemory {
                what: name.to_string(),
                requested_words: words,
                available_words: self.available_words(),
            });
        }
        let base = self.next_base;
        self.next_base = (base + words * 4).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.allocated_words += words;
        self.buffers.push(Buffer {
            base,
            data: Vec::new(),
            name: name.to_string(),
        });
        Ok(BufId(self.buffers.len() - 1))
    }

    /// Allocate and copy a host slice to the device.
    pub fn alloc_from_slice(&mut self, data: &[u32], name: &str) -> Result<BufId, SimError> {
        let id = self.alloc_inner(data.len(), name)?;
        self.buffers[id.0].data = data.iter().map(|&w| AtomicU32::new(w)).collect();
        Ok(id)
    }

    /// Allocate a zero-filled buffer.
    pub fn alloc_zeroed(&mut self, len: usize, name: &str) -> Result<BufId, SimError> {
        let id = self.alloc_inner(len, name)?;
        self.buffers[id.0].data = (0..len).map(|_| AtomicU32::new(0)).collect();
        Ok(id)
    }

    /// Free a buffer's capacity accounting and contents. The handle (and
    /// any copy of it) must not be used afterwards; the slot keeps its
    /// base address so stale handles fail loudly on access.
    pub fn free(&mut self, id: BufId) {
        let buf = &mut self.buffers[id.0];
        self.allocated_words -= buf.data.len() as u64;
        buf.data = Vec::new();
        buf.name.push_str(" (freed)");
    }

    /// Copy a buffer back to the host.
    pub fn read_back(&self, id: BufId) -> Vec<u32> {
        self.buffers[id.0]
            .data
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of words in a buffer.
    pub fn len(&self, id: BufId) -> usize {
        self.buffers[id.0].data.len()
    }

    /// Whether the buffer has zero words.
    pub fn is_empty(&self, id: BufId) -> bool {
        self.buffers[id.0].data.is_empty()
    }

    /// Host-side fill (no traffic counted) — the CUDA `cudaMemset` analog.
    pub fn fill(&self, id: BufId, value: u32) {
        for w in &self.buffers[id.0].data {
            w.store(value, Ordering::Relaxed);
        }
    }

    /// Debug name of the buffer.
    pub fn name(&self, id: BufId) -> &str {
        &self.buffers[id.0].name
    }

    #[inline]
    pub(crate) fn addr_of(&self, id: BufId, idx: usize) -> u64 {
        self.buffers[id.0].base + (idx as u64) * 4
    }

    #[inline]
    pub(crate) fn word(&self, id: BufId, idx: usize) -> &AtomicU32 {
        let buf = &self.buffers[id.0];
        match buf.data.get(idx) {
            Some(w) => w,
            None => panic!(
                "device memory fault: `{}`[{idx}] out of bounds (len {})",
                buf.name,
                buf.data.len()
            ),
        }
    }

    #[inline]
    pub(crate) fn load(&self, id: BufId, idx: usize) -> u32 {
        self.word(id, idx).load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn store(&self, id: BufId, idx: usize, val: u32) {
        self.word(id, idx).store(val, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn fetch_add(&self, id: BufId, idx: usize, val: u32) -> u32 {
        self.word(id, idx).fetch_add(val, Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn fetch_or(&self, id: BufId, idx: usize, val: u32) -> u32 {
        self.word(id, idx).fetch_or(val, Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn fetch_and(&self, id: BufId, idx: usize, val: u32) -> u32 {
        self.word(id, idx).fetch_and(val, Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn compare_exchange(&self, id: BufId, idx: usize, cur: u32, new: u32) -> u32 {
        match self
            .word(id, idx)
            .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(old) | Err(old) => old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn small_device() -> Device {
        Device::with_memory_words(1024)
    }

    #[test]
    fn alloc_and_read_back() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_from_slice(&[7, 8, 9], "t").unwrap();
        assert_eq!(mem.read_back(b), vec![7, 8, 9]);
        assert_eq!(mem.len(b), 3);
        assert!(!mem.is_empty(b));
        assert_eq!(mem.name(b), "t");
    }

    #[test]
    fn capacity_enforced() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        mem.alloc_zeroed(1000, "big").unwrap();
        let err = mem.alloc_zeroed(100, "overflow").unwrap_err();
        match err {
            SimError::OutOfMemory {
                requested_words,
                available_words,
                ..
            } => {
                assert_eq!(requested_words, 100);
                assert_eq!(available_words, 24);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn free_returns_capacity() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(1000, "big").unwrap();
        mem.free(b);
        assert_eq!(mem.allocated_words(), 0);
        mem.alloc_zeroed(1000, "again").unwrap();
    }

    #[test]
    fn buffers_start_sector_aligned() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let a = mem.alloc_from_slice(&[1], "a").unwrap();
        let b = mem.alloc_from_slice(&[2], "b").unwrap();
        assert_eq!(mem.addr_of(a, 0) % ALLOC_ALIGN, 0);
        assert_eq!(mem.addr_of(b, 0) % ALLOC_ALIGN, 0);
        assert_ne!(mem.addr_of(a, 0), mem.addr_of(b, 0));
    }

    #[test]
    fn fill_overwrites_all_words() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_from_slice(&[1, 2, 3], "t").unwrap();
        mem.fill(b, 9);
        assert_eq!(mem.read_back(b), vec![9, 9, 9]);
    }

    #[test]
    fn atomics_behave() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(2, "t").unwrap();
        assert_eq!(mem.fetch_add(b, 0, 5), 0);
        assert_eq!(mem.fetch_add(b, 0, 5), 5);
        assert_eq!(mem.fetch_or(b, 1, 0b10), 0);
        assert_eq!(mem.fetch_and(b, 1, 0b10), 0b10);
        assert_eq!(mem.compare_exchange(b, 0, 10, 99), 10);
        assert_eq!(mem.load(b, 0), 99);
        assert_eq!(mem.compare_exchange(b, 0, 10, 50), 99);
        assert_eq!(mem.load(b, 0), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(2, "t").unwrap();
        mem.load(b, 2);
    }
}
