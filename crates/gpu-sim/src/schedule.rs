use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wave-schedule per-block cycle counts onto `parallel_slots` execution
/// slots (SMs x resident blocks per SM) and return the makespan.
///
/// Blocks are dispatched in index order to the earliest-free slot, the
/// same greedy policy CUDA's hardware work distributor uses. With one
/// slot this degenerates to the serial sum; with more slots than blocks
/// it is the maximum block time.
pub fn schedule_blocks(block_cycles: &[u64], parallel_slots: usize) -> u64 {
    let slots = parallel_slots.max(1);
    if block_cycles.is_empty() {
        return 0;
    }
    if slots == 1 {
        return block_cycles.iter().sum();
    }
    if block_cycles.len() <= slots {
        return block_cycles.iter().copied().max().unwrap_or(0);
    }
    // Min-heap of slot finish times; only materialize as many slots as
    // there are blocks.
    let mut heap: BinaryHeap<Reverse<u64>> = (0..slots).map(|_| Reverse(0u64)).collect();
    let mut makespan = 0u64;
    for &c in block_cycles {
        let Reverse(free_at) = heap.pop().expect("slots is non-zero");
        let finish = free_at + c;
        makespan = makespan.max(finish);
        heap.push(Reverse(finish));
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_takes_no_time() {
        assert_eq!(schedule_blocks(&[], 8), 0);
    }

    #[test]
    fn single_slot_serializes() {
        assert_eq!(schedule_blocks(&[3, 4, 5], 1), 12);
    }

    #[test]
    fn enough_slots_means_max() {
        assert_eq!(schedule_blocks(&[3, 4, 5], 3), 5);
        assert_eq!(schedule_blocks(&[3, 4, 5], 100), 5);
    }

    #[test]
    fn greedy_two_slots() {
        // Slot A: 5; slot B: 1 then 4 => makespan 5.
        assert_eq!(schedule_blocks(&[5, 1, 4], 2), 5);
        // Slot A: 5 then 1 -> 6; slot B: 5 => makespan 6.
        assert_eq!(schedule_blocks(&[5, 5, 1], 2), 6);
    }

    #[test]
    fn zero_slots_treated_as_one() {
        assert_eq!(schedule_blocks(&[2, 2], 0), 4);
    }

    #[test]
    fn makespan_bounds_hold() {
        // Greedy list scheduling is within 2x of the lower bounds.
        let cycles: Vec<u64> = (1..200).map(|i| (i * 37) % 91 + 1).collect();
        for slots in [1usize, 2, 7, 80] {
            let ms = schedule_blocks(&cycles, slots);
            let total: u64 = cycles.iter().sum();
            let max = *cycles.iter().max().unwrap();
            let lower = max.max(total / slots as u64);
            assert!(ms >= lower);
            assert!(ms <= lower * 2 + max);
        }
    }
}
