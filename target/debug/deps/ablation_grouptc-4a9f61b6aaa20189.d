/root/repo/target/debug/deps/ablation_grouptc-4a9f61b6aaa20189.d: crates/tc-bench/src/bin/ablation_grouptc.rs

/root/repo/target/debug/deps/ablation_grouptc-4a9f61b6aaa20189: crates/tc-bench/src/bin/ablation_grouptc.rs

crates/tc-bench/src/bin/ablation_grouptc.rs:
