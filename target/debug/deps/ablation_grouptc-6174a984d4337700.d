/root/repo/target/debug/deps/ablation_grouptc-6174a984d4337700.d: crates/tc-bench/src/bin/ablation_grouptc.rs

/root/repo/target/debug/deps/ablation_grouptc-6174a984d4337700: crates/tc-bench/src/bin/ablation_grouptc.rs

crates/tc-bench/src/bin/ablation_grouptc.rs:
