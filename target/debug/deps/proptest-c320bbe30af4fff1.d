/root/repo/target/debug/deps/proptest-c320bbe30af4fff1.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c320bbe30af4fff1: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
