//! Regenerates Figure 11: total running time of every ITC implementation
//! on every dataset (datasets ordered by increasing size), with the
//! average-degree series the paper overlays. Failed runs print as `x`
//! (the paper's red crosses).

use graph_data::GraphStats;
use tc_core::framework::report::{extract, MatrixView};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let records = tc_bench::full_sweep(&datasets);
    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure(
            "FIGURE 11: total running time (modelled ms on simulated V100)",
            extract::time_ms
        )
    );

    // The avg-degree overlay series.
    print!("avg degree ");
    for spec in &datasets {
        let s = GraphStats::compute(&spec.build());
        print!(" {}={:.1}", spec.name, s.avg_degree);
    }
    println!();
}
