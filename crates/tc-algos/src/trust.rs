//! TRUST (Pandey et al., TPDS 2021) — "Triangle counting reloaded on
//! GPUs".
//!
//! Vertex-centric, fine-grained, hash-based (Section III-H / Figure 10):
//! the marriage of Hu's strided 2-hop traversal with H-INDEX's shared-
//! memory hash tables, plus a degree-driven resource heuristic:
//!
//! * out-degree > 100  → a **block** of 1024 threads and a 1024-bucket
//!   hash table per vertex;
//! * 2 ≤ out-degree ≤ 100 → a **warp** of 32 threads and a 32-bucket
//!   table;
//! * out-degree < 2 → the vertex is skipped (it cannot head a triangle).
//!
//! For each vertex `u`, the build pass hashes `N(u)` into shared memory
//! and — standing in for the original's hash-partitioned graph layout —
//! also stashes each neighbour's (offset, degree) pair there, so the
//! probe pass walks the concatenated 2-hop stream against *shared*
//! metadata: evenly strided lanes, coalesced key loads, O(1) hash
//! probes. That combination of balanced lanes and efficient memory use
//! is exactly why TRUST tops every medium/large dataset in Figure 11;
//! the same per-vertex build cost and block-sized resource grant are
//! pure overhead on small graphs — the opening GroupTC exploits.
//!
//! Buckets deeper than the shared capacity fall back to direct binary
//! search for that vertex (standing in for the original's "virtual
//! combination" handling) so the count stays exact.

use gpu_sim::{Device, DeviceMem, KernelConfig, LaneCtx, LaunchStats, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::{bsearch_global, warp_reduce_add};

/// Degree above which a vertex gets a whole block (paper: 100).
const BLOCK_DEGREE: u32 = 100;
/// Block mode: 1024 threads, 1024 buckets, 8 rows.
const BLOCK_MODE_DIM: u32 = 1024;
const BLOCK_BUCKETS: u32 = 1024;
const BLOCK_ROWS: u32 = 8;
/// Neighbour-metadata entries cached in shared memory in block mode
/// (bounded by the 48 KB budget; longer lists spill to global offsets).
const BLOCK_META_CAP: u32 = 1500;
/// Warp mode: one warp and a 32-bucket, 8-row table per vertex; the
/// metadata cache covers the whole list (degree <= 100 by definition).
const WARP_MODE_DIM: u32 = 32;
const WARP_BUCKETS: u32 = 32;
const WARP_ROWS: u32 = 8;
const WARP_META_CAP: u32 = BLOCK_DEGREE;

/// The TRUST algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Trust;

impl TcAlgorithm for Trust {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "TRUST",
            reference: "Pandey et al., TPDS 2021",
            year: 2021,
            iterator: IteratorKind::Vertex,
            intersection: Intersection::Hash,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        // Host-side classification (launch planning), over this device's
        // pivot range only.
        let mut high = Vec::new();
        let mut low = Vec::new();
        for v in g.pivot_lo..g.pivot_hi {
            let d = g.host_out_degree(v);
            if d > BLOCK_DEGREE {
                high.push(v);
            } else if d >= 2 {
                low.push(v);
            }
        }
        let counter = mem.alloc_zeroed(1, "trust.counter")?;
        let mut stats = LaunchStats::default();

        if !high.is_empty() {
            let list = mem.alloc_from_slice(&high, "trust.high_vertices")?;
            stats += run_mode(dev, mem, g, list, high.len() as u32, counter, Mode::Block)?;
            mem.free(list)?;
        }
        if !low.is_empty() {
            let list = mem.alloc_from_slice(&low, "trust.warp_vertices")?;
            stats += run_mode(dev, mem, g, list, low.len() as u32, counter, Mode::Warp)?;
            mem.free(list)?;
        }

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: vertex-iterator hashing with TRUST's warp/block mode
    /// switch — vertices above the block-degree threshold hash into the
    /// wide table, the rest into the 32-bucket one.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_vertex_hash(
            dag,
            BLOCK_DEGREE,
            WARP_BUCKETS as usize,
            BLOCK_BUCKETS as usize,
        )
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Warp,
    Block,
}

struct ModeGeom {
    block_dim: u32,
    buckets: u32,
    rows: u32,
    meta_cap: u32,
}

impl Mode {
    fn geom(self) -> ModeGeom {
        match self {
            Mode::Warp => ModeGeom {
                block_dim: WARP_MODE_DIM,
                buckets: WARP_BUCKETS,
                rows: WARP_ROWS,
                meta_cap: WARP_META_CAP,
            },
            Mode::Block => ModeGeom {
                block_dim: BLOCK_MODE_DIM,
                buckets: BLOCK_BUCKETS,
                rows: BLOCK_ROWS,
                meta_cap: BLOCK_META_CAP,
            },
        }
    }
}

/// One launch of either mode: each block takes vertices from `list` in a
/// grid-stride loop, builds the vertex's hash table (and neighbour
/// metadata cache), then probes the 2-hop stream.
fn run_mode(
    dev: &Device,
    mem: &DeviceMem,
    g: &DeviceGraph,
    list: gpu_sim::BufId,
    n: u32,
    counter: gpu_sim::BufId,
    mode: Mode,
) -> Result<LaunchStats, SimError> {
    let geom = mode.geom();
    let ModeGeom {
        block_dim,
        buckets,
        rows,
        meta_cap,
    } = geom;
    // Shared layout: len[buckets] | elems[buckets*rows] | flag | meta.
    let flag_at = (buckets * (1 + rows)) as usize;
    let meta_at = flag_at + 1;
    let shared_words = meta_at as u32 + 2 * meta_cap;
    let grid = match mode {
        Mode::Warp => (24 * dev.config().num_sms).min(n.max(1)),
        Mode::Block => n.clamp(1, 2 * dev.config().num_sms),
    };
    let rounds = n.div_ceil(grid);
    let cfg = KernelConfig::new(grid, block_dim).with_shared_words(shared_words);

    dev.launch(mem, cfg, |blk| {
        let bidx = blk.block_idx();
        let mut locals = vec![0u32; block_dim as usize];
        for round in 0..rounds {
            let i = bidx + round * grid;
            // Clear bucket lengths and the overflow flag.
            blk.phase(|lane| {
                let mut b = lane.tid();
                while b < buckets {
                    lane.st_shared(b as usize, 0);
                    b += block_dim;
                }
                if lane.tid() == 0 {
                    lane.st_shared(flag_at, 0);
                }
            });
            // Build: hash N(u) and stash each neighbour's (base, degree).
            blk.phase(|lane| {
                if i >= n {
                    return;
                }
                let u = lane.ld_global(list, i as usize);
                let base = lane.ld_global(g.row_offsets, u as usize);
                let un = lane.ld_global(g.row_offsets, u as usize + 1) - base;
                let mut k = lane.tid();
                while k < un {
                    let x = lane.ld_global(g.col_indices, (base + k) as usize);
                    let bucket = x % buckets;
                    lane.compute(1);
                    let row = lane.atomic_add_shared(bucket as usize, 1);
                    if row < rows {
                        lane.st_shared((buckets + row * buckets + bucket) as usize, x);
                    } else {
                        lane.st_shared(flag_at, 1);
                    }
                    if k < meta_cap {
                        let vb = lane.ld_global(g.row_offsets, x as usize);
                        let vd = lane.ld_global(g.row_offsets, x as usize + 1) - vb;
                        lane.st_shared(meta_at + 2 * k as usize, vb);
                        lane.st_shared(meta_at + 2 * k as usize + 1, vd);
                    }
                    lane.converge();
                    k += block_dim;
                }
            });
            // Probe: evenly strided walk of the 2-hop stream against the
            // shared metadata and hash table.
            blk.phase(|lane| {
                if i >= n {
                    return;
                }
                let u = lane.ld_global(list, i as usize);
                let base = lane.ld_global(g.row_offsets, u as usize);
                let un = lane.ld_global(g.row_offsets, u as usize + 1) - base;
                let overflowed = lane.ld_shared(flag_at) != 0;
                let meta = |lane: &mut LaneCtx, k: u32| -> (u32, u32) {
                    if k < meta_cap {
                        (
                            lane.ld_shared(meta_at + 2 * k as usize),
                            lane.ld_shared(meta_at + 2 * k as usize + 1),
                        )
                    } else {
                        let x = lane.ld_global(g.col_indices, (base + k) as usize);
                        let vb = lane.ld_global(g.row_offsets, x as usize);
                        let vd = lane.ld_global(g.row_offsets, x as usize + 1) - vb;
                        (vb, vd)
                    }
                };
                let mut cnt = 0u32;
                let mut u_point = 0u32;
                let mut offset = lane.tid();
                while u_point < un {
                    let (mut vb, mut vd) = meta(lane, u_point);
                    while u_point < un && offset >= vd {
                        lane.compute(1);
                        offset -= vd;
                        u_point += 1;
                        if u_point < un {
                            let m = meta(lane, u_point);
                            vb = m.0;
                            vd = m.1;
                        }
                    }
                    if u_point < un {
                        let w = lane.ld_global(g.col_indices, (vb + offset) as usize);
                        let hit = if overflowed {
                            bsearch_global(lane, g.col_indices, base, base + un, w)
                        } else {
                            let bucket = w % buckets;
                            lane.compute(1);
                            let len = lane.ld_shared(bucket as usize);
                            let mut found = false;
                            for row in 0..len.min(rows) {
                                let x = lane.ld_shared((buckets + row * buckets + bucket) as usize);
                                lane.compute(1);
                                if x == w {
                                    found = true;
                                    break;
                                }
                            }
                            found
                        };
                        if hit {
                            cnt += 1;
                        }
                    }
                    lane.converge();
                    offset += block_dim;
                }
                locals[lane.tid() as usize] += cnt;
            });
        }
        blk.phase(|lane| {
            warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::{clean_edges, cpu_ref, gen, orient, Orientation};

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &Trust,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&Trust);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&Trust, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn block_mode_is_exercised_on_hub_graphs() {
        // DegreeDesc orientation gives the hub an out-degree above the
        // block threshold, forcing the 1024-thread path.
        let raw = gen::barabasi_albert(600, 8, 0.4, 33);
        let (g, _) = clean_edges(&raw);
        let dag = orient(&g, Orientation::DegreeDesc);
        assert!(
            dag.max_out_degree() > BLOCK_DEGREE,
            "fixture must exceed the block threshold"
        );
        let expected = cpu_ref::forward_merge(&dag);
        assert_eq!(testutil::run_on_dag(&Trust, &dag), expected);
    }

    #[test]
    fn block_mode_beyond_meta_cache_is_exact() {
        // A hub with out-degree above BLOCK_META_CAP forces the global
        // metadata fallback path.
        let mut edges = Vec::new();
        for k in 1..=(BLOCK_META_CAP + 200) {
            edges.push((0u32, k));
        }
        // A few triangles through the hub.
        for k in (1..200u32).step_by(2) {
            edges.push((k, k + 1));
        }
        let (g, _) = clean_edges(&graph_data::EdgeList::new(edges));
        let dag = orient(&g, Orientation::DegreeDesc);
        assert!(dag.max_out_degree() > BLOCK_META_CAP);
        let expected = cpu_ref::forward_merge(&dag);
        assert_eq!(testutil::run_on_dag(&Trust, &dag), expected);
    }

    #[test]
    fn overflow_fallback_stays_exact() {
        // A warp-mode vertex whose bucket depth exceeds WARP_ROWS:
        // neighbours congruent mod 32 via a dense ID space.
        let mut edges = vec![];
        for k in 1..=10u32 {
            edges.push((0, 32 * k));
        }
        edges.push((32, 64));
        for i in 0..320u32 {
            edges.push((i, i + 1));
        }
        let (g, _) = clean_edges(&graph_data::EdgeList::new(edges));
        let dag = orient(&g, Orientation::ById);
        let expected = cpu_ref::forward_merge(&dag);
        assert_eq!(testutil::run_on_dag(&Trust, &dag), expected);
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Trust.meta();
        assert_eq!(m.year, 2021);
        assert_eq!(m.iterator, IteratorKind::Vertex);
        assert_eq!(m.intersection, Intersection::Hash);
        assert_eq!(m.granularity, Granularity::Fine);
    }
}
