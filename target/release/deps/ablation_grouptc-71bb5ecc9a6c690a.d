/root/repo/target/release/deps/ablation_grouptc-71bb5ecc9a6c690a.d: crates/tc-bench/src/bin/ablation_grouptc.rs

/root/repo/target/release/deps/ablation_grouptc-71bb5ecc9a6c690a: crates/tc-bench/src/bin/ablation_grouptc.rs

crates/tc-bench/src/bin/ablation_grouptc.rs:
