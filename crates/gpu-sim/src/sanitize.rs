//! SimSan — shadow-state device-memory sanitizer.
//!
//! The race detector (see `gpu_sim::race`) covers cross-lane conflicts;
//! this module covers the *other* family of silent memory bugs a
//! deterministic simulator would otherwise mask:
//!
//! * **uninit-read** — a lane reads (or atomically updates, which reads)
//!   a word that was never written. Global buffers from
//!   [`DeviceMem::alloc_zeroed`](crate::DeviceMem::alloc_zeroed) and
//!   [`DeviceMem::alloc_from_slice`](crate::DeviceMem::alloc_from_slice)
//!   are born `Init` (the host defined every word);
//!   [`DeviceMem::alloc_uninit`](crate::DeviceMem::alloc_uninit) — the
//!   honest `cudaMalloc` analog — is born `Uninit` per word. Per-block
//!   shared memory is *always* born `Uninit` at launch, exactly like
//!   CUDA shared memory: the simulator zero-fills it for determinism,
//!   but a kernel that reads it before writing it is wrong on hardware.
//! * **use-after-free** — any access through a freed
//!   [`BufId`](crate::BufId). Buffer slots are never recycled, so a
//!   stale handle is caught even after the first-fit allocator has
//!   handed the underlying extent to a new buffer (the case where an
//!   unsanitized run silently reads *another buffer's bytes*).
//! * **redzone** — an access landing in the 256-byte alignment padding
//!   between a buffer's last word and the end of its extent. Such an
//!   index is out of bounds either way; the sanitizer names it a
//!   redzone hit because "one past the end, into the padding" is the
//!   signature of an off-by-one, not a wild pointer.
//! * **double-free** / **leak** — host-side allocator misuse, reported
//!   by [`DeviceMem::free`](crate::DeviceMem::free) and
//!   [`DeviceMem::leak_check`](crate::DeviceMem::leak_check) (these two
//!   are always on; they are accounting-integrity checks, not per-launch
//!   instrumentation).
//!
//! The per-word shadow lattice is `Unallocated → Uninit → Init → Freed`
//! (plus `Redzone` for padding): a word is promoted to `Init` by any
//! store, atomic RMW or host fill — promotion happens even on
//! unsanitized launches, so enabling the sanitizer later never
//! false-positives on state written while it was off.
//!
//! Like race detection, lane-side checking is off by default and toggles
//! per launch ([`KernelConfig::with_sanitizer`](crate::KernelConfig::with_sanitizer))
//! or per device ([`Device::with_sanitizer`](crate::Device::with_sanitizer)).
//! A report poisons the block exactly like `MemoryFault`/`DataRace` and
//! surfaces as [`SimError::Sanitizer`](crate::SimError::Sanitizer);
//! `sanitizer_checks`/`sanitizer_reports` land in
//! [`ProfileCounters`](crate::ProfileCounters). Checks never touch the
//! lane traces, the L1 model or the cost model, so a sanitizer-clean
//! kernel produces byte-identical counters and cycle counts with the
//! sanitizer on or off (modulo the two `sanitizer_*` fields themselves).

use std::fmt;

use crate::lint::SourceLoc;
use crate::SimError;

/// What a sanitizer report is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizerKind {
    /// A lane read (or atomically updated) a word that was never
    /// written: a garbage value on real hardware.
    UninitRead,
    /// An access — lane- or host-side — through a freed `BufId`.
    UseAfterFree,
    /// An access into the 256-byte alignment padding past a buffer's
    /// last word (the classic off-by-one landing zone).
    Redzone,
    /// The host freed the same `BufId` twice.
    DoubleFree,
    /// Device buffers were still allocated at the end-of-run leak check.
    Leak,
}

impl fmt::Display for SanitizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SanitizerKind::UninitRead => "uninit-read",
            SanitizerKind::UseAfterFree => "use-after-free",
            SanitizerKind::Redzone => "redzone",
            SanitizerKind::DoubleFree => "double-free",
            SanitizerKind::Leak => "leak",
        };
        f.write_str(s)
    }
}

/// How a lane touched a word, as seen by the sanitizer. Atomics both
/// read and write, so they count as reads of uninitialized state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShadowAccess {
    Read,
    Write,
    Atomic,
}

impl ShadowAccess {
    /// Whether the access observes the word's current value.
    fn reads(self) -> bool {
        matches!(self, ShadowAccess::Read | ShadowAccess::Atomic)
    }
}

/// Where a global word sits in the shadow lattice, as probed by
/// [`DeviceMem::shadow_state`](crate::DeviceMem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShadowState {
    /// The word holds a host- or kernel-defined value.
    Init,
    /// The word was allocated but never written.
    Uninit,
    /// The index lands in the alignment padding of a live buffer.
    Redzone,
    /// The buffer was freed; the slot is retired for good.
    Freed,
    /// Past even the padding: not the sanitizer's case — the ordinary
    /// bounds check reports it as `MemoryFault`.
    OutOfBounds,
}

/// Per-block sanitizer state: the shared-memory shadow (global shadow
/// lives with the buffers in `DeviceMem`) plus running statistics.
#[derive(Debug)]
pub(crate) struct SanTracker {
    /// Current barrier-phase number (1-based), for diagnostics only.
    phase: u64,
    /// Shared memory is born `Uninit` every launch; a `true` here means
    /// some lane of this block has stored the word.
    shared_init: Vec<bool>,
    /// Accesses vetted (the evidence a run actually ran sanitized).
    pub checks: u64,
    /// Reports raised (the block poisons on the first, so 0 or 1).
    pub reports: u64,
}

impl SanTracker {
    pub fn new(shared_words: usize) -> Self {
        SanTracker {
            phase: 1,
            shared_init: vec![false; shared_words],
            checks: 0,
            reports: 0,
        }
    }

    /// Advance past a barrier (shared-init state persists: initialization
    /// in an earlier phase covers reads in later ones).
    pub fn end_phase(&mut self) {
        self.phase += 1;
    }

    /// Check one shared-memory access. Out-of-range indices are skipped
    /// so the ordinary bounds handling reports them.
    pub fn check_shared(
        &mut self,
        lane: u32,
        idx: usize,
        access: ShadowAccess,
    ) -> Option<SimError> {
        let init = self.shared_init.get_mut(idx)?;
        self.checks += 1;
        if access.reads() && !*init {
            self.reports += 1;
            return Some(SimError::Sanitizer {
                kind: SanitizerKind::UninitRead,
                buffer: "shared".to_string(),
                word: idx,
                lane: Some(lane),
                pc_hint: SourceLoc::Shared {
                    phase: self.phase,
                    idx,
                }
                .to_string(),
            });
        }
        // Any store or RMW defines the word from here on.
        if !matches!(access, ShadowAccess::Read) {
            *init = true;
        }
        None
    }

    /// Check one global-memory access against the word's shadow state
    /// (probed by the caller from `DeviceMem`). Init-promotion on writes
    /// is the memory's job — it happens sanitizer-on or -off.
    pub fn check_global(
        &mut self,
        lane: u32,
        state: ShadowState,
        buffer: &str,
        idx: usize,
        access: ShadowAccess,
    ) -> Option<SimError> {
        if matches!(state, ShadowState::OutOfBounds) {
            return None;
        }
        self.checks += 1;
        let kind = match state {
            ShadowState::Freed => SanitizerKind::UseAfterFree,
            ShadowState::Redzone => SanitizerKind::Redzone,
            ShadowState::Uninit if access.reads() => SanitizerKind::UninitRead,
            _ => return None,
        };
        self.reports += 1;
        Some(SimError::Sanitizer {
            kind,
            buffer: buffer.to_string(),
            word: idx,
            lane: Some(lane),
            pc_hint: SourceLoc::Global {
                phase: self.phase,
                buffer,
                idx,
            }
            .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_is_born_uninit_and_writes_promote() {
        let mut t = SanTracker::new(4);
        let err = t.check_shared(3, 2, ShadowAccess::Read).unwrap();
        match err {
            SimError::Sanitizer {
                kind,
                buffer,
                word,
                lane,
                ..
            } => {
                assert_eq!(kind, SanitizerKind::UninitRead);
                assert_eq!(buffer, "shared");
                assert_eq!(word, 2);
                assert_eq!(lane, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.check_shared(0, 1, ShadowAccess::Write).is_none());
        assert!(t.check_shared(5, 1, ShadowAccess::Read).is_none());
        assert_eq!(t.reports, 1);
        assert_eq!(t.checks, 3);
    }

    #[test]
    fn shared_atomic_on_uninit_word_reads_garbage() {
        let mut t = SanTracker::new(2);
        assert!(matches!(
            t.check_shared(0, 0, ShadowAccess::Atomic),
            Some(SimError::Sanitizer {
                kind: SanitizerKind::UninitRead,
                ..
            })
        ));
        // After a store, atomics are fine.
        assert!(t.check_shared(0, 1, ShadowAccess::Write).is_none());
        assert!(t.check_shared(1, 1, ShadowAccess::Atomic).is_none());
    }

    #[test]
    fn shared_init_survives_barriers() {
        let mut t = SanTracker::new(1);
        assert!(t.check_shared(0, 0, ShadowAccess::Write).is_none());
        t.end_phase();
        assert!(t.check_shared(1, 0, ShadowAccess::Read).is_none());
    }

    #[test]
    fn shared_out_of_range_defers_to_bounds_handling() {
        let mut t = SanTracker::new(2);
        assert!(t.check_shared(0, 99, ShadowAccess::Read).is_none());
        assert_eq!(t.checks, 0);
    }

    #[test]
    fn global_state_maps_to_kinds() {
        let mut t = SanTracker::new(0);
        assert!(t
            .check_global(0, ShadowState::Init, "b", 0, ShadowAccess::Read)
            .is_none());
        assert!(matches!(
            t.check_global(1, ShadowState::Uninit, "b", 1, ShadowAccess::Read),
            Some(SimError::Sanitizer {
                kind: SanitizerKind::UninitRead,
                ..
            })
        ));
        assert!(matches!(
            t.check_global(2, ShadowState::Freed, "b", 0, ShadowAccess::Write),
            Some(SimError::Sanitizer {
                kind: SanitizerKind::UseAfterFree,
                ..
            })
        ));
        assert!(matches!(
            t.check_global(3, ShadowState::Redzone, "b", 7, ShadowAccess::Read),
            Some(SimError::Sanitizer {
                kind: SanitizerKind::Redzone,
                ..
            })
        ));
    }

    #[test]
    fn global_uninit_write_is_fine_and_oob_is_not_ours() {
        let mut t = SanTracker::new(0);
        assert!(t
            .check_global(0, ShadowState::Uninit, "b", 0, ShadowAccess::Write)
            .is_none());
        assert!(t
            .check_global(0, ShadowState::OutOfBounds, "b", 999, ShadowAccess::Read)
            .is_none());
        assert_eq!(t.checks, 1, "out-of-bounds is not a sanitizer check");
    }
}
