//! DAG orientations.
//!
//! All intersection-based counters first orient the undirected graph into
//! a DAG so that each triangle `{a, b, c}` is discovered exactly once.
//! After relabeling, every directed edge `(u, v)` satisfies `u < v` — the
//! "popular format" GroupTC's first optimization relies on (Section V).
//!
//! Two orderings matter in the paper's corpus:
//! * **ById** — keep the input order (Polak's baseline behaviour).
//! * **DegreeAsc** — relabel so vertex IDs increase with degree and
//!   orient each edge toward the higher-degree endpoint. This bounds
//!   out-degrees by O(sqrt(E)) on real graphs and is what the optimized
//!   implementations (TriCore, TRUST, GroupTC) preprocess with.
//! * **DegreeDesc** — the reverse ordering, kept for ablations.

use crate::types::{materialize_csr, Csr, CsrAccess, UndirGraph, VertexId};

/// Vertex-ordering rule used to build the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Orient edge (u,v) from min ID to max ID, no relabeling.
    ById,
    /// Relabel by ascending degree (ties by old ID), then orient by ID.
    #[default]
    DegreeAsc,
    /// Relabel by descending degree (ties by old ID), then orient by ID.
    DegreeDesc,
    /// Relabel by degeneracy (k-core peeling) order: out-degrees are
    /// bounded by the graph's degeneracy.
    KCore,
    /// Random relabeling from the given seed — the worst-case baseline
    /// the pre-processing literature compares against.
    Random(u64),
}

/// The oriented graph handed to the GPU algorithms: out-CSR where every
/// edge goes from a smaller to a larger (new) vertex ID, plus the edge
/// array used by edge-centric kernels.
#[derive(Debug, Clone)]
pub struct DagGraph {
    csr: Csr,
    /// `new_to_old[new_id] = old_id` in the cleaned graph.
    new_to_old: Vec<VertexId>,
    orientation: Orientation,
}

impl DagGraph {
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Number of directed DAG edges (= undirected edges of the input).
    pub fn num_edges(&self) -> u64 {
        self.csr.num_entries()
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.csr.degree(v)
    }

    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Map a relabeled vertex back to its ID in the cleaned graph.
    pub fn old_id(&self, new_id: VertexId) -> VertexId {
        self.new_to_old[new_id as usize]
    }

    /// Maximum out-degree (drives hash-table and bin sizing decisions).
    pub fn max_out_degree(&self) -> u32 {
        self.csr.max_degree()
    }

    /// Flat (src, dst) arrays for edge-centric kernels, in CSR order so
    /// consecutive edges share sources — the locality GroupTC exploits.
    pub fn edge_arrays(&self) -> (Vec<VertexId>, Vec<VertexId>) {
        let mut src = Vec::with_capacity(self.num_edges() as usize);
        let mut dst = Vec::with_capacity(self.num_edges() as usize);
        for (u, v) in self.csr.edge_iter() {
            src.push(u);
            dst.push(v);
        }
        (src, dst)
    }
}

/// Orient a cleaned undirected graph into a DAG under the given rule.
pub fn orient(g: &UndirGraph, orientation: Orientation) -> DagGraph {
    match orientation {
        // KCore peels the resident graph directly; the generic path
        // below would materialize a second copy first.
        Orientation::KCore => orient_with_order(
            g.csr(),
            crate::kcore::core_decomposition(g).order,
            orientation,
        ),
        _ => orient_access(g.csr(), orientation),
    }
}

/// [`orient`] over any [`CsrAccess`] — the entry point for out-of-core
/// graphs ([`crate::chunked::ChunkedCsr`]), which stream through the
/// same ordering and DAG construction as resident ones. `KCore` is the
/// one rule that needs the whole graph resident (degeneracy peeling
/// mutates degrees globally), so it materializes a temporary copy.
pub fn orient_access<A: CsrAccess + ?Sized>(g: &A, orientation: Orientation) -> DagGraph {
    let n = g.num_vertices() as usize;
    // rank[old] = new id.
    let order: Vec<VertexId> = match orientation {
        Orientation::ById => (0..n as u32).collect(),
        Orientation::DegreeAsc => {
            let mut order: Vec<VertexId> = (0..n as u32).collect();
            order.sort_by_key(|&v| (g.degree(v), v));
            order
        }
        Orientation::DegreeDesc => {
            let mut order: Vec<VertexId> = (0..n as u32).collect();
            order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            order
        }
        Orientation::KCore => {
            let und = UndirGraph::from_csr(materialize_csr(g));
            crate::kcore::core_decomposition(&und).order
        }
        Orientation::Random(seed) => {
            // Fisher–Yates with a splitmix-style generator (no rand
            // dependency needed for a baseline shuffle).
            let mut order: Vec<VertexId> = (0..n as u32).collect();
            let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            for i in (1..n).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            order
        }
    };
    orient_with_order(g, order, orientation)
}

fn orient_with_order<A: CsrAccess + ?Sized>(
    g: &A,
    order: Vec<VertexId>,
    orientation: Orientation,
) -> DagGraph {
    let n = g.num_vertices() as usize;
    let (rank, new_to_old) = {
        let mut rank = vec![0u32; n];
        for (new_id, &old) in order.iter().enumerate() {
            rank[old as usize] = new_id as u32;
        }
        (rank, order)
    };

    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for old_u in 0..n as u32 {
        let nu = rank[old_u as usize];
        g.for_each_neighbor(old_u, &mut |old_v| {
            let nv = rank[old_v as usize];
            if nu < nv {
                adj[nu as usize].push(nv);
            }
        });
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    DagGraph {
        csr: Csr::from_adjacency(&adj),
        new_to_old,
        orientation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::types::EdgeList;

    fn star_plus_triangle() -> UndirGraph {
        // Vertex 0 is a hub (degree 5); triangle 1-2-3.
        let raw = EdgeList::new(vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (2, 3),
            (1, 3),
        ]);
        clean_edges(&raw).0
    }

    const ALL: [Orientation; 5] = [
        Orientation::ById,
        Orientation::DegreeAsc,
        Orientation::DegreeDesc,
        Orientation::KCore,
        Orientation::Random(42),
    ];

    #[test]
    fn edge_count_preserved() {
        let g = star_plus_triangle();
        for o in ALL {
            let d = orient(&g, o);
            assert_eq!(d.num_edges(), g.num_edges(), "{o:?}");
            assert_eq!(d.num_vertices(), g.num_vertices());
        }
    }

    #[test]
    fn all_edges_point_up() {
        let g = star_plus_triangle();
        for o in ALL {
            let d = orient(&g, o);
            for (u, v) in d.csr().edge_iter() {
                assert!(u < v, "{o:?}: edge ({u},{v}) not ascending");
            }
        }
    }

    #[test]
    fn kcore_orientation_bounds_out_degree_by_degeneracy() {
        let raw = crate::gen::barabasi_albert(800, 4, 0.5, 12);
        let (g, _) = clean_edges(&raw);
        let degeneracy = crate::kcore::core_decomposition(&g).degeneracy;
        let d = orient(&g, Orientation::KCore);
        assert!(
            d.max_out_degree() <= degeneracy,
            "max out-degree {} exceeds degeneracy {degeneracy}",
            d.max_out_degree()
        );
        assert_eq!(crate::cpu_ref::forward_merge(&d), {
            let asc = orient(&g, Orientation::DegreeAsc);
            crate::cpu_ref::forward_merge(&asc)
        });
    }

    #[test]
    fn random_orientation_is_seed_deterministic() {
        let g = star_plus_triangle();
        let a = orient(&g, Orientation::Random(7));
        let b = orient(&g, Orientation::Random(7));
        assert_eq!(a.csr(), b.csr());
        let c = orient(&g, Orientation::Random(8));
        // Different seed almost surely shuffles differently.
        assert_ne!(
            (0..g.num_vertices())
                .map(|v| a.old_id(v))
                .collect::<Vec<_>>(),
            (0..g.num_vertices())
                .map(|v| c.old_id(v))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn degree_asc_puts_hub_last() {
        let g = star_plus_triangle();
        let d = orient(&g, Orientation::DegreeAsc);
        // The hub (old 0, degree 5) must get the largest new ID, hence
        // out-degree 0.
        let hub_new = (0..d.num_vertices()).find(|&v| d.old_id(v) == 0).unwrap();
        assert_eq!(hub_new, d.num_vertices() - 1);
        assert_eq!(d.out_degree(hub_new), 0);
    }

    #[test]
    fn degree_desc_puts_hub_first() {
        let g = star_plus_triangle();
        let d = orient(&g, Orientation::DegreeDesc);
        let hub_new = (0..d.num_vertices()).find(|&v| d.old_id(v) == 0).unwrap();
        assert_eq!(hub_new, 0);
        assert_eq!(d.out_degree(hub_new), 5);
    }

    #[test]
    fn orientation_preserves_triangle_count() {
        let g = star_plus_triangle();
        let expected = crate::cpu_ref::node_iterator(&g);
        for o in ALL {
            let d = orient(&g, o);
            assert_eq!(crate::cpu_ref::forward_merge(&d), expected, "{o:?}");
        }
    }

    #[test]
    fn edge_arrays_match_csr_order() {
        let g = star_plus_triangle();
        let d = orient(&g, Orientation::ById);
        let (src, dst) = d.edge_arrays();
        assert_eq!(src.len() as u64, d.num_edges());
        let from_iter: Vec<_> = d.csr().edge_iter().collect();
        let from_arrays: Vec<_> = src.into_iter().zip(dst).collect();
        assert_eq!(from_iter, from_arrays);
    }
}
