/root/repo/target/debug/deps/rand-c7e8f405819c8dbd.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c7e8f405819c8dbd.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
