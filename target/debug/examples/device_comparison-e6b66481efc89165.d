/root/repo/target/debug/examples/device_comparison-e6b66481efc89165.d: examples/device_comparison.rs

/root/repo/target/debug/examples/device_comparison-e6b66481efc89165: examples/device_comparison.rs

examples/device_comparison.rs:
