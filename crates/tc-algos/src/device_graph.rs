//! The oriented graph as it lives on the simulated device, plus host
//! mirrors used for launch planning (grid sizing, workload binning,
//! degree classification) — the part real implementations do on the CPU
//! before the timed kernel.

use gpu_sim::{BufId, DeviceMem, SimError};
use graph_data::DagGraph;

/// CSR + edge arrays uploaded to device memory.
#[derive(Debug)]
pub struct DeviceGraph {
    pub num_vertices: u32,
    pub num_edges: u32,
    /// CSR row offsets (`num_vertices + 1` words).
    pub row_offsets: BufId,
    /// CSR column indices (`num_edges` words), per-vertex sorted.
    pub col_indices: BufId,
    /// Edge-centric source array (CSR edge order).
    pub edge_src: BufId,
    /// Edge-centric destination array (CSR edge order).
    pub edge_dst: BufId,
    pub max_out_degree: u32,
    /// Host mirror of the offsets (launch planning only — reads of this
    /// are CPU work, not device traffic).
    pub host_offsets: Vec<u32>,
    /// Host mirror of the edge endpoints (launch planning only).
    pub host_src: Vec<u32>,
    pub host_dst: Vec<u32>,
}

impl DeviceGraph {
    /// Upload an oriented DAG. Fails with [`SimError::OutOfMemory`] when
    /// the graph alone exceeds device capacity.
    pub fn upload(dag: &DagGraph, mem: &mut DeviceMem) -> Result<Self, SimError> {
        let csr = dag.csr();
        let (src, dst) = dag.edge_arrays();
        let row_offsets = mem.alloc_from_slice(csr.offsets(), "csr.row_offsets")?;
        let col_indices = mem.alloc_from_slice(csr.targets(), "csr.col_indices")?;
        let edge_src = mem.alloc_from_slice(&src, "edges.src")?;
        let edge_dst = mem.alloc_from_slice(&dst, "edges.dst")?;
        Ok(DeviceGraph {
            num_vertices: dag.num_vertices(),
            num_edges: dag.num_edges() as u32,
            row_offsets,
            col_indices,
            edge_src,
            edge_dst,
            max_out_degree: dag.max_out_degree(),
            host_offsets: csr.offsets().to_vec(),
            host_src: src,
            host_dst: dst,
        })
    }

    /// Host-side out-degree (planning only).
    #[inline]
    pub fn host_out_degree(&self, v: u32) -> u32 {
        self.host_offsets[v as usize + 1] - self.host_offsets[v as usize]
    }

    /// Average out-degree = edges / vertices (Bisson's mode switch).
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.num_edges as f64 / self.num_vertices as f64
    }

    /// Release the graph's device buffers. Freeing the same graph twice
    /// surfaces as [`SimError::Sanitizer`] (double-free).
    pub fn free(self, mem: &mut DeviceMem) -> Result<(), SimError> {
        mem.free(self.row_offsets)?;
        mem.free(self.col_indices)?;
        mem.free(self.edge_src)?;
        mem.free(self.edge_dst)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use graph_data::{clean_edges, orient, EdgeList, Orientation};

    fn upload_triangle() -> (Device, DeviceMem, DeviceGraph) {
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (0, 2)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        (dev, mem, dg)
    }

    #[test]
    fn upload_mirrors_host_data() {
        let (_, mem, dg) = upload_triangle();
        assert_eq!(dg.num_vertices, 3);
        assert_eq!(dg.num_edges, 3);
        assert_eq!(mem.read_back(dg.row_offsets), dg.host_offsets);
        assert_eq!(mem.read_back(dg.edge_src), dg.host_src);
        assert_eq!(mem.read_back(dg.edge_dst), dg.host_dst);
        assert_eq!(dg.host_out_degree(0), 2);
        assert_eq!(dg.max_out_degree, 2);
        assert!((dg.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn free_releases_capacity() {
        let (_, mut mem, dg) = upload_triangle();
        let before = mem.allocated_words();
        assert!(before > 0);
        dg.free(&mut mem).unwrap();
        assert_eq!(mem.allocated_words(), 0);
        assert!(mem.leak_check().is_ok());
    }

    #[test]
    fn upload_fails_on_tiny_device() {
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (0, 2)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::with_memory_words(4);
        let mut mem = DeviceMem::new(&dev);
        assert!(matches!(
            DeviceGraph::upload(&dag, &mut mem),
            Err(SimError::OutOfMemory { .. })
        ));
    }
}
