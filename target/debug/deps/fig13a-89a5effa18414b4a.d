/root/repo/target/debug/deps/fig13a-89a5effa18414b4a.d: crates/tc-bench/src/bin/fig13a.rs Cargo.toml

/root/repo/target/debug/deps/libfig13a-89a5effa18414b4a.rmeta: crates/tc-bench/src/bin/fig13a.rs Cargo.toml

crates/tc-bench/src/bin/fig13a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
