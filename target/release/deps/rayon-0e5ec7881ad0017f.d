/root/repo/target/release/deps/rayon-0e5ec7881ad0017f.d: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-0e5ec7881ad0017f.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-0e5ec7881ad0017f.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
