//! Criterion benches for the substrate: the four intersection primitives
//! of Section II-B (backing the Table I taxonomy), the CPU reference
//! counters (sequential vs rayon), the generators, and the data
//! pipeline (clean + orient) — the framework pieces every experiment
//! passes through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graph_data::{clean_edges, cpu_ref, gen, orient, Orientation};

fn sorted_list(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..(n as u32 * 8))).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_primitives");
    for n in [64usize, 1024, 16384] {
        let a = sorted_list(n, 1);
        let b = sorted_list(n, 2);
        let id_space = n as u32 * 8;
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |bch, _| {
            bch.iter(|| cpu_ref::intersect_merge(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("binsearch", n), &n, |bch, _| {
            bch.iter(|| cpu_ref::intersect_binsearch(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |bch, _| {
            bch.iter(|| cpu_ref::intersect_hash(&a, &b, 32))
        });
        group.bench_with_input(BenchmarkId::new("bitmap", n), &n, |bch, _| {
            bch.iter(|| cpu_ref::intersect_bitmap(&a, &b, id_space))
        });
    }
    group.finish();
}

fn bench_cpu_references(c: &mut Criterion) {
    let raw = gen::rmat(15, 200_000, 0.57, 0.19, 0.19, 0.05, 3);
    let (g, _) = clean_edges(&raw);
    let dag = orient(&g, Orientation::DegreeAsc);
    let mut group = c.benchmark_group("cpu_reference");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("forward_merge", |b| b.iter(|| cpu_ref::forward_merge(&dag)));
    group.bench_function("forward_merge_parallel", |b| {
        b.iter(|| cpu_ref::forward_merge_parallel(&dag))
    });
    group.bench_function("binsearch_count", |b| {
        b.iter(|| cpu_ref::binsearch_count(&dag))
    });
    group.bench_function("hash_count", |b| b.iter(|| cpu_ref::hash_count(&dag)));
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("rmat_200k", |b| {
        b.iter(|| gen::rmat(15, 200_000, 0.57, 0.19, 0.19, 0.05, 4))
    });
    group.bench_function("ba_30k", |b| {
        b.iter(|| gen::barabasi_albert(10_000, 3, 0.5, 5))
    });
    let raw = gen::rmat(15, 200_000, 0.57, 0.19, 0.19, 0.05, 6);
    group.bench_function("clean_200k", |b| b.iter(|| clean_edges(&raw)));
    let (g, _) = clean_edges(&raw);
    group.bench_function("orient_degree_asc", |b| {
        b.iter(|| orient(&g, Orientation::DegreeAsc))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersections,
    bench_cpu_references,
    bench_pipeline
);
criterion_main!(benches);
