/root/repo/target/debug/deps/table1-6cba554cb4245a43.d: crates/tc-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6cba554cb4245a43: crates/tc-bench/src/bin/table1.rs

crates/tc-bench/src/bin/table1.rs:
