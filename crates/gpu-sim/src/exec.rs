use crate::counters::ProfileCounters;
use crate::device::Device;
use crate::mem::{BufId, DeviceMem};
use crate::race::{Access, RaceTracker};
use crate::sanitize::{SanTracker, ShadowAccess};
use crate::trace::{LaneTrace, Op};
use crate::{CostModel, SimError, SHARED_BANKS, WARP_SIZE};

/// Launch geometry: `grid_dim` blocks of `block_dim` threads, each block
/// carrying `shared_words` words of shared memory — plus the per-launch
/// data-race-detection and sanitizer toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    pub grid_dim: u32,
    pub block_dim: u32,
    pub shared_words: u32,
    /// Run this launch under the phase-based data-race detector (see
    /// `gpu_sim::race`). Off by default so benchmark launches pay ~zero
    /// cost (a single predictable branch per access); the detector is
    /// also forced on for every launch on a
    /// [`Device::with_race_detection`] device.
    pub race_detect: bool,
    /// Run this launch under SimSan (see `gpu_sim::sanitize`): shadow
    /// tracking for uninit-read, use-after-free and redzone accesses.
    /// Off by default like `race_detect`; also forced on for every
    /// launch on a [`Device::with_sanitizer`] device.
    pub sanitize: bool,
}

impl KernelConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        KernelConfig {
            grid_dim,
            block_dim,
            shared_words: 0,
            race_detect: false,
            sanitize: false,
        }
    }

    pub fn with_shared_words(mut self, words: u32) -> Self {
        self.shared_words = words;
        self
    }

    /// Toggle the data-race detector for this launch.
    pub fn with_race_detection(mut self, on: bool) -> Self {
        self.race_detect = on;
        self
    }

    /// Toggle SimSan for this launch.
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }
}

/// Per-block execution context handed to the kernel closure.
///
/// A kernel structures its work as a sequence of [`BlockCtx::phase`]
/// calls; each phase runs every lane of the block to completion (in lane
/// order) and ends with an implicit block-wide barrier, after which the
/// lane traces are replayed warp-by-warp for profiling and timing.
pub struct BlockCtx<'a> {
    mem: &'a DeviceMem,
    cost: CostModel,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    shared: Vec<u32>,
    traces: Vec<LaneTrace>,
    /// Phase-based data-race detector (`Some` when the launch enabled
    /// detection): records this block's shared and plain-global accesses
    /// between barriers and poisons the block on a cross-lane conflict.
    race: Option<RaceTracker>,
    /// SimSan (`Some` when the launch enabled the sanitizer): vets every
    /// access against the shadow state and poisons the block on a report.
    san: Option<SanTracker>,
    /// Each warp's slice of the SM's L1 cache, direct-mapped by sector
    /// (concatenated per warp). Captures both the spatial reuse of
    /// sequential scans (a merge re-reads each 32-byte sector ~8 times)
    /// and the cross-lane reuse of hot search-table tops — while keeping
    /// the slice small enough that many concurrent per-lane streams
    /// conflict, as they do in the real 128 KB/SM cache shared by 2048
    /// threads.
    l1: Vec<u64>,
    l1_slice: usize,
    counters: ProfileCounters,
    cycles: u64,
    fault: Option<SimError>,
}

impl<'a> BlockCtx<'a> {
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Words of shared memory available to this block.
    pub fn shared_words(&self) -> u32 {
        self.shared.len() as u32
    }

    /// Run one barrier-delimited phase: the closure is invoked once per
    /// lane, in lane order. Values written to shared memory in this phase
    /// are visible to *all* lanes from the next phase on (and to later
    /// lanes of this phase, matching any CUDA schedule of a race-free
    /// kernel that separates producers and consumers with barriers).
    pub fn phase<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut LaneCtx<'_, '_>),
    {
        // A faulted block is poisoned: later phases are skipped entirely,
        // like a CUDA grid after a sticky device-side error.
        if self.fault.is_some() {
            return;
        }
        for tid in 0..self.block_dim {
            if self.fault.is_some() {
                break;
            }
            let warp = (tid as usize / WARP_SIZE) * self.l1_slice;
            let mut lane = LaneCtx {
                mem: self.mem,
                shared: &mut self.shared,
                trace: &mut self.traces[tid as usize],
                race: &mut self.race,
                san: &mut self.san,
                l1: &mut self.l1[warp..warp + self.l1_slice],
                l1_mask: self.l1_slice as u64 - 1,
                tid,
                block_idx: self.block_idx,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
                fault: &mut self.fault,
            };
            f(&mut lane);
        }
        self.barrier();
    }

    /// Replay the traces accumulated since the previous barrier.
    fn barrier(&mut self) {
        if let Some(t) = self.race.as_mut() {
            t.end_phase();
        }
        if let Some(t) = self.san.as_mut() {
            t.end_phase();
        }
        let mut phase_cycles = 0u64;
        for warp in self.traces.chunks(WARP_SIZE) {
            let (cycles, counters) = replay_warp(warp, &self.cost);
            // Warps of a block run concurrently; the barrier waits for
            // the slowest one.
            phase_cycles = phase_cycles.max(cycles);
            self.counters += counters;
        }
        self.cycles += phase_cycles;
        for t in &mut self.traces {
            t.clear();
        }
    }
}

/// Per-lane context: the kernel-facing instruction set. Every method both
/// performs the real operation (against device/shared memory) and records
/// it in the lane's trace for lockstep replay.
pub struct LaneCtx<'a, 'b> {
    mem: &'a DeviceMem,
    shared: &'b mut Vec<u32>,
    trace: &'b mut LaneTrace,
    race: &'b mut Option<RaceTracker>,
    san: &'b mut Option<SanTracker>,
    l1: &'b mut [u64],
    l1_mask: u64,
    tid: u32,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    fault: &'b mut Option<SimError>,
}

impl LaneCtx<'_, '_> {
    /// Thread index within the block (`threadIdx.x`).
    #[inline]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Block index within the grid (`blockIdx.x`).
    #[inline]
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Threads per block (`blockDim.x`).
    #[inline]
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// Blocks per grid (`gridDim.x`).
    #[inline]
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_tid(&self) -> u32 {
        self.block_idx * self.block_dim + self.tid
    }

    /// Lane index within the warp.
    #[inline]
    pub fn lane_id(&self) -> u32 {
        self.tid % WARP_SIZE as u32
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp_id(&self) -> u32 {
        self.tid / WARP_SIZE as u32
    }

    /// Report a kernel-level failure (e.g. a fixed-capacity structure
    /// overflowed); the launch returns [`SimError::KernelFault`].
    pub fn fault(&mut self, msg: impl Into<String>) {
        self.set_fault(SimError::KernelFault(msg.into()));
    }

    /// Record the block's first fault; later faults (often cascades from
    /// the poisoned value 0 the first one returned) are dropped.
    #[inline]
    fn set_fault(&mut self, err: SimError) {
        if self.fault.is_none() {
            *self.fault = Some(err);
        }
    }

    /// Whether this block already faulted. Poisoned lanes stop touching
    /// memory: loads return 0, stores and atomics are dropped, so a bad
    /// index can't cascade into a host-visible panic before `run_block`
    /// turns the fault into an error.
    #[inline]
    fn poisoned(&self) -> bool {
        self.fault.is_some()
    }

    /// Run one shared-memory access through the race detector (if the
    /// launch enabled it); a conflict poisons the block. Out-of-range
    /// indices are skipped so the subsequent data access reports the
    /// bounds fault with its usual message.
    #[inline]
    fn race_check_shared(&mut self, idx: usize, access: Access) {
        let tid = self.tid;
        if let Some(t) = self.race.as_mut() {
            if idx < self.shared.len() {
                if let Some(err) = t.check_shared(tid, idx, access) {
                    self.set_fault(err);
                }
            }
        }
    }

    /// Run one *plain* global access through the race detector. Atomics
    /// never come through here: they synchronize with each other and are
    /// exempt by design.
    #[inline]
    fn race_check_global(&mut self, buf: BufId, idx: usize, access: Access) {
        let tid = self.tid;
        if self.race.is_some() {
            let addr = self.mem.addr_of(buf, idx);
            let name = self.mem.name(buf);
            if let Some(err) = self
                .race
                .as_mut()
                .and_then(|t| t.check_global(tid, addr, name, idx, access))
            {
                self.set_fault(err);
            }
        }
    }

    /// Vet one shared-memory access against the SimSan shadow (if the
    /// launch enabled the sanitizer); a report poisons the block. Checks
    /// never touch the lane trace or the cost model, so a clean kernel's
    /// counters and cycles are identical sanitizer-on and -off.
    #[inline]
    fn san_check_shared(&mut self, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        if let Some(t) = self.san.as_mut() {
            if let Some(err) = t.check_shared(tid, idx, access) {
                self.set_fault(err);
            }
        }
    }

    /// Vet one global-memory access against the SimSan shadow. Runs
    /// *before* the data access so that freed-handle and redzone hits
    /// carry the sanitizer diagnostic rather than a bare `MemoryFault`.
    #[inline]
    fn san_check_global(&mut self, buf: BufId, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        if self.san.is_some() {
            let state = self.mem.shadow_state(buf, idx);
            let name = self.mem.name(buf);
            if let Some(err) = self
                .san
                .as_mut()
                .and_then(|t| t.check_global(tid, state, name, idx, access))
            {
                self.set_fault(err);
            }
        }
    }

    /// Record `n` arithmetic instructions (comparisons, address math...).
    #[inline]
    pub fn compute(&mut self, n: u32) {
        for _ in 0..n {
            self.trace.push(Op::Compute);
        }
    }

    /// Warp-reconvergence point (`__syncwarp` / the implicit re-join at
    /// the bottom of a divergent loop). Call it at the end of each outer
    /// loop iteration whose body contains data-dependent inner loops, so
    /// the replay re-aligns the lanes like real SIMT hardware does.
    #[inline]
    pub fn converge(&mut self) {
        self.trace.push(Op::Converge);
    }

    /// Load one word from global memory. Consecutive touches of the same
    /// 32-byte sector by this lane are recorded as L1 hits (no DRAM
    /// transaction), modelling the spatial locality of sequential scans.
    #[inline]
    pub fn ld_global(&mut self, buf: BufId, idx: usize) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Read);
        if self.poisoned() {
            return 0;
        }
        let val = match self.mem.try_load(buf, idx) {
            Ok(v) => v,
            Err(e) => {
                self.set_fault(e);
                return 0;
            }
        };
        let addr = self.mem.addr_of(buf, idx);
        let sector = addr / crate::SECTOR_BYTES;
        let slot = (sector & self.l1_mask) as usize;
        if self.l1[slot] == sector {
            self.trace.push(Op::GLoadHit(addr));
        } else {
            self.l1[slot] = sector;
            self.trace.push(Op::GLoad(addr));
        }
        self.race_check_global(buf, idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        val
    }

    /// Store one word to global memory.
    #[inline]
    pub fn st_global(&mut self, buf: BufId, idx: usize, val: u32) {
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Write);
        if self.poisoned() {
            return;
        }
        if self.race.is_some() {
            // A store of the word's current value is a benign "silent
            // store"; anything else conflicts with concurrent accesses.
            if let Ok(cur) = self.mem.try_load(buf, idx) {
                self.race_check_global(
                    buf,
                    idx,
                    Access::Write {
                        changes_value: cur != val,
                    },
                );
                if self.poisoned() {
                    return;
                }
            }
            // On a bounds error, fall through: try_store reports it.
        }
        match self.mem.try_store(buf, idx, val) {
            Ok(()) => self.trace.push(Op::GStore(self.mem.addr_of(buf, idx))),
            Err(e) => self.set_fault(e),
        }
    }

    /// `atomicAdd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_add_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_add(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicOr` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_or_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_or(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicAnd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_and_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_and(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicCAS` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_cas_global(&mut self, buf: BufId, idx: usize, cur: u32, new: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_compare_exchange(buf, idx, cur, new) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// Correctness-only global add with **no traffic recorded**. This is
    /// the backchannel for warp-reduction helpers: the hardware cost of a
    /// `__shfl_down`+single-atomic reduction is modeled explicitly by the
    /// helper (see `tc-algos::util::warp_reduce_add`), while every lane's
    /// contribution still lands in the counter for exactness.
    #[inline]
    pub fn add_global_untraced(&mut self, buf: BufId, idx: usize, val: u32) {
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return;
        }
        if let Err(e) = self.mem.try_fetch_add(buf, idx, val) {
            self.set_fault(e);
        }
    }

    #[inline]
    fn shared_slot(&mut self, idx: usize) -> &mut u32 {
        match self.shared.get_mut(idx) {
            Some(w) => w,
            None => panic!("shared memory fault: index {idx} out of bounds"),
        }
    }

    /// Load one word from shared memory. Under race detection, reading a
    /// slot another lane plain-stores in the same phase — in either
    /// order — poisons the block with [`SimError::DataRace`]: that is a
    /// data race in CUDA (lanes only appear ordered here because the
    /// simulator runs them sequentially). Under SimSan, reading a slot no
    /// lane of this block has stored is an uninit-read: the simulator
    /// zero-fills shared memory for determinism, but CUDA does not.
    #[inline]
    pub fn ld_shared(&mut self, idx: usize) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SLoad(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Read);
        self.race_check_shared(idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        *self.shared_slot(idx)
    }

    /// Store one word to shared memory.
    #[inline]
    pub fn st_shared(&mut self, idx: usize, val: u32) {
        if self.poisoned() {
            return;
        }
        self.trace.push(Op::SStore(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Write);
        if self.race.is_some() {
            // Concurrent same-value stores (a common benign idiom, e.g.
            // several lanes raising an overflow flag) are silent; a
            // value-changing store conflicts with other lanes' accesses.
            let changes_value = self.shared.get(idx).is_none_or(|&cur| cur != val);
            self.race_check_shared(idx, Access::Write { changes_value });
            if self.poisoned() {
                return;
            }
        }
        *self.shared_slot(idx) = val;
    }

    /// `atomicAdd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_add_shared(&mut self, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old.wrapping_add(val);
        old
    }

    /// `atomicOr` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_or_shared(&mut self, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old | val;
        old
    }

    /// `atomicAnd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_and_shared(&mut self, idx: usize, val: u32) -> u32 {
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old & val;
        old
    }
}

/// Execute one block and return its (cycles, counters).
pub(crate) fn run_block<F>(
    dev: &Device,
    mem: &DeviceMem,
    cfg: &KernelConfig,
    block_idx: u32,
    kernel: &F,
) -> Result<(u64, ProfileCounters), SimError>
where
    F: Fn(&mut BlockCtx<'_>) + Sync,
{
    // Each warp's proportional slice of the SM's L1, direct-mapped,
    // rounded to a power of two (V100: 4096 sectors / 64 warps = 64).
    let l1_slice = (dev.config().l1_sectors_per_sm as u64 * WARP_SIZE as u64
        / dev.config().max_threads_per_sm.max(1) as u64)
        .max(16)
        .next_power_of_two() as usize;
    let warps = (cfg.block_dim as usize).div_ceil(WARP_SIZE);
    let mut blk = BlockCtx {
        mem,
        cost: dev.config().cost,
        block_idx,
        block_dim: cfg.block_dim,
        grid_dim: cfg.grid_dim,
        shared: vec![0u32; cfg.shared_words as usize],
        traces: vec![LaneTrace::default(); cfg.block_dim as usize],
        race: (cfg.race_detect || dev.config().force_race_detection)
            .then(|| RaceTracker::new(cfg.shared_words as usize)),
        san: (cfg.sanitize || dev.config().force_sanitizer)
            .then(|| SanTracker::new(cfg.shared_words as usize)),
        l1: vec![u64::MAX; warps * l1_slice],
        l1_slice,
        counters: ProfileCounters::default(),
        cycles: 0,
        fault: None,
    };
    kernel(&mut blk);
    // Flush any trailing un-barriered work (kernel end is a barrier).
    blk.barrier();
    if let Some(t) = &blk.race {
        blk.counters.race_checks += t.checks;
        blk.counters.races_detected += t.races;
    }
    if let Some(t) = &blk.san {
        blk.counters.sanitizer_checks += t.checks;
        blk.counters.sanitizer_reports += t.reports;
    }
    if let Some(err) = blk.fault {
        return Err(err);
    }
    Ok((blk.cycles, blk.counters))
}

/// Scratch for one lockstep step of one warp.
#[derive(Default)]
struct StepScratch {
    /// Global-load misses (addresses that cost DRAM sectors).
    gload: Vec<u64>,
    /// Global-load L1 hits (wavefronts in the request, no DRAM traffic).
    gload_hits: Vec<u64>,
    gstore: Vec<u64>,
    gatomic: Vec<u64>,
    sload: Vec<u32>,
    sstore: Vec<u32>,
    satomic: Vec<u32>,
    compute: u32,
}

impl StepScratch {
    fn clear(&mut self) {
        self.gload.clear();
        self.gload_hits.clear();
        self.gstore.clear();
        self.gatomic.clear();
        self.sload.clear();
        self.sstore.clear();
        self.satomic.clear();
        self.compute = 0;
    }
}

/// Count distinct 32-byte sectors among the (word) addresses of one warp
/// load/store slot.
fn count_sectors(addrs: &mut [u64]) -> u64 {
    addrs.sort_unstable();
    let mut sectors = 0u64;
    let mut last = u64::MAX;
    for &a in addrs.iter() {
        let s = a / crate::SECTOR_BYTES;
        if s != last {
            sectors += 1;
            last = s;
        }
    }
    sectors
}

/// Worst-case same-address collision depth (atomics serialize on address).
fn max_same_addr_depth<T: Ord + Copy>(addrs: &mut [T]) -> u64 {
    addrs.sort_unstable();
    let mut best = 0u64;
    let mut run = 0u64;
    let mut last: Option<T> = None;
    for &a in addrs.iter() {
        if Some(a) == last {
            run += 1;
        } else {
            run = 1;
            last = Some(a);
        }
        best = best.max(run);
    }
    best
}

/// Shared-memory bank-conflict ways: accesses to the same word broadcast,
/// accesses to distinct words in the same bank serialize.
fn bank_conflict_ways(addrs: &mut [u32]) -> u64 {
    addrs.sort_unstable();
    let mut per_bank = [0u64; SHARED_BANKS];
    let mut last = u32::MAX;
    for &a in addrs.iter() {
        if a != last {
            per_bank[(a as usize) % SHARED_BANKS] += 1;
            last = a;
        }
    }
    per_bank.iter().copied().max().unwrap_or(0).max(1)
}

/// Replay the lanes of one warp in lockstep and return (cycles, counters).
///
/// At each step, the next un-replayed op of every still-active lane is
/// gathered; lanes that diverged onto different op kinds serialize into
/// separate issue slots (SIMT branch divergence), and lanes whose traces
/// already ended count as inactive, which is what depresses
/// `warp_execution_efficiency` for imbalanced workloads.
///
/// [`Op::Converge`] markers re-align the lanes: a lane that reaches one
/// stalls (inactive) until every unfinished lane is also at a marker,
/// then all markers are consumed together — the branch re-join of real
/// SIMT hardware, without which lanes that skip a data-dependent inner
/// loop would stay shifted against their siblings forever.
fn replay_warp(traces: &[LaneTrace], cost: &CostModel) -> (u64, ProfileCounters) {
    let mut counters = ProfileCounters::default();
    let mut cycles = 0u64;
    if traces.iter().all(LaneTrace::is_empty) {
        return (0, counters);
    }
    let mut cursors = vec![0usize; traces.len()];
    let mut scratch = StepScratch::default();
    loop {
        scratch.clear();
        let mut converge_waiting = false;
        for (lane, t) in traces.iter().enumerate() {
            if let Some(&op) = t.ops.get(cursors[lane]) {
                match op {
                    Op::Converge => converge_waiting = true,
                    Op::GLoad(a) => scratch.gload.push(a),
                    Op::GLoadHit(a) => scratch.gload_hits.push(a),
                    Op::GStore(a) => scratch.gstore.push(a),
                    Op::GAtomic(a) => scratch.gatomic.push(a),
                    Op::SLoad(a) => scratch.sload.push(a),
                    Op::SStore(a) => scratch.sstore.push(a),
                    Op::SAtomic(a) => scratch.satomic.push(a),
                    Op::Compute => scratch.compute += 1,
                }
                if !matches!(op, Op::Converge) {
                    cursors[lane] += 1;
                }
            }
        }
        let issued_real_op = !scratch.gload.is_empty()
            || !scratch.gload_hits.is_empty()
            || !scratch.gstore.is_empty()
            || !scratch.gatomic.is_empty()
            || !scratch.sload.is_empty()
            || !scratch.sstore.is_empty()
            || !scratch.satomic.is_empty()
            || scratch.compute > 0;
        if !issued_real_op {
            if converge_waiting {
                // Every unfinished lane sits at a marker: consume them
                // all and re-align.
                for (lane, t) in traces.iter().enumerate() {
                    if matches!(t.ops.get(cursors[lane]), Some(Op::Converge)) {
                        cursors[lane] += 1;
                    }
                }
                continue;
            }
            break; // all traces exhausted
        }
        let mut issue = |active: u64| {
            counters.issued_slots += 1;
            counters.active_thread_slots += active;
        };
        if !scratch.gload.is_empty() || !scratch.gload_hits.is_empty() {
            issue((scratch.gload.len() + scratch.gload_hits.len()) as u64);
            let miss_sectors = count_sectors(&mut scratch.gload);
            // nvprof's gld_transactions counts wavefronts (distinct
            // sectors addressed) regardless of cache hits.
            let mut all: Vec<u64> = scratch
                .gload
                .iter()
                .chain(scratch.gload_hits.iter())
                .copied()
                .collect();
            let total_sectors = count_sectors(&mut all);
            counters.global_load_requests += 1;
            counters.gld_transactions += total_sectors;
            counters.dram_load_sectors += miss_sectors;
            cycles += cost.global_load_slot(total_sectors, miss_sectors);
        }
        if !scratch.gstore.is_empty() {
            issue(scratch.gstore.len() as u64);
            let sectors = count_sectors(&mut scratch.gstore);
            counters.global_store_requests += 1;
            counters.gst_transactions += sectors;
            cycles += cost.global_slot(sectors);
        }
        if !scratch.gatomic.is_empty() {
            issue(scratch.gatomic.len() as u64);
            let depth = max_same_addr_depth(&mut scratch.gatomic);
            counters.global_atomic_requests += 1;
            cycles += cost.global_atomic_slot(depth);
        }
        if !scratch.sload.is_empty() {
            issue(scratch.sload.len() as u64);
            let ways = bank_conflict_ways(&mut scratch.sload);
            counters.shared_load_requests += 1;
            cycles += cost.shared_slot(ways);
        }
        if !scratch.sstore.is_empty() {
            issue(scratch.sstore.len() as u64);
            let ways = bank_conflict_ways(&mut scratch.sstore);
            counters.shared_store_requests += 1;
            cycles += cost.shared_slot(ways);
        }
        if !scratch.satomic.is_empty() {
            issue(scratch.satomic.len() as u64);
            let depth = max_same_addr_depth(&mut scratch.satomic);
            counters.shared_atomic_requests += 1;
            cycles += cost.shared_atomic_slot(depth);
        }
        if scratch.compute > 0 {
            issue(scratch.compute as u64);
            counters.compute_slots += 1;
            cycles += cost.compute;
        }
    }
    (cycles, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LaneTrace;

    fn trace_of(ops: &[Op]) -> LaneTrace {
        LaneTrace { ops: ops.to_vec() }
    }

    #[test]
    fn sector_counting_coalesced_vs_scattered() {
        // 32 lanes reading consecutive words: 32 * 4B = 128B = 4 sectors.
        let mut coalesced: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(count_sectors(&mut coalesced), 4);
        // 32 lanes each in its own sector.
        let mut scattered: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
        assert_eq!(count_sectors(&mut scattered), 32);
        // All lanes on the same word: a single broadcastable sector.
        let mut broadcast: Vec<u64> = vec![100; 32];
        assert_eq!(count_sectors(&mut broadcast), 1);
    }

    #[test]
    fn collision_depth() {
        let mut a = vec![1u64, 2, 2, 2, 3];
        assert_eq!(max_same_addr_depth(&mut a), 3);
        let mut b = vec![5u64];
        assert_eq!(max_same_addr_depth(&mut b), 1);
    }

    #[test]
    fn bank_conflicts() {
        // Stride-1: each lane its own bank.
        let mut s: Vec<u32> = (0..32).collect();
        assert_eq!(bank_conflict_ways(&mut s), 1);
        // Stride-32: all lanes in bank 0 -> 32-way conflict.
        let mut c: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_ways(&mut c), 32);
        // Same word everywhere: broadcast, no conflict.
        let mut b: Vec<u32> = vec![7; 32];
        assert_eq!(bank_conflict_ways(&mut b), 1);
    }

    #[test]
    fn replay_counts_divergence() {
        let cost = CostModel::v100();
        // Lane 0 does 4 computes, lane 1 does 1: 4 slots, 5 active-thread
        // slots => efficiency 5/(4*32).
        let traces = vec![
            trace_of(&[Op::Compute, Op::Compute, Op::Compute, Op::Compute]),
            trace_of(&[Op::Compute]),
        ];
        let (cycles, c) = replay_warp(&traces, &cost);
        assert_eq!(c.issued_slots, 4);
        assert_eq!(c.active_thread_slots, 5);
        assert_eq!(c.compute_slots, 4);
        assert_eq!(cycles, 4 * cost.compute);
    }

    #[test]
    fn replay_splits_divergent_kinds() {
        let cost = CostModel::v100();
        // Two lanes at step 0 doing different kinds: two issue slots.
        let traces = vec![trace_of(&[Op::Compute]), trace_of(&[Op::GLoad(0)])];
        let (_, c) = replay_warp(&traces, &cost);
        assert_eq!(c.issued_slots, 2);
        assert_eq!(c.active_thread_slots, 2);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.compute_slots, 1);
    }

    #[test]
    fn replay_groups_coalesced_loads() {
        let cost = CostModel::v100();
        // 8 lanes load 8 consecutive words (one sector): 1 request,
        // 1 transaction.
        let traces: Vec<LaneTrace> = (0..8u64).map(|i| trace_of(&[Op::GLoad(i * 4)])).collect();
        let (cycles, c) = replay_warp(&traces, &cost);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1);
        assert_eq!(c.dram_load_sectors, 1);
        assert_eq!(cycles, cost.global_load_slot(1, 1));
    }

    #[test]
    fn replay_counts_hit_wavefronts_as_transactions() {
        let cost = CostModel::v100();
        // Two lanes in different sectors, both L1 hits: one request, two
        // wavefront transactions, zero DRAM sectors.
        let traces = vec![
            trace_of(&[Op::GLoadHit(0)]),
            trace_of(&[Op::GLoadHit(4096)]),
        ];
        let (cycles, c) = replay_warp(&traces, &cost);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 2);
        assert_eq!(c.dram_load_sectors, 0);
        assert_eq!(cycles, cost.global_load_slot(2, 0));
        assert!(cycles < cost.global_load_slot(2, 2));
    }

    #[test]
    fn converge_realigns_shifted_lanes() {
        let cost = CostModel::v100();
        // Lane 0 does 3 computes then a load; lane 1 does 1 compute then
        // a load. Without markers the loads land on different steps (2
        // separate requests); with a marker before the load they align
        // into one coalesced request.
        let unaligned = vec![
            trace_of(&[Op::Compute, Op::Compute, Op::Compute, Op::GLoad(0)]),
            trace_of(&[Op::Compute, Op::GLoad(4)]),
        ];
        let (_, c) = replay_warp(&unaligned, &cost);
        assert_eq!(c.global_load_requests, 2);

        let aligned = vec![
            trace_of(&[
                Op::Compute,
                Op::Compute,
                Op::Compute,
                Op::Converge,
                Op::GLoad(0),
            ]),
            trace_of(&[Op::Compute, Op::Converge, Op::GLoad(4)]),
        ];
        let (_, c) = replay_warp(&aligned, &cost);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1, "aligned loads share a sector");
    }

    #[test]
    fn converge_with_exhausted_lanes_does_not_deadlock() {
        let cost = CostModel::v100();
        let traces = vec![
            trace_of(&[Op::Compute, Op::Converge, Op::Compute]),
            trace_of(&[Op::Compute]), // finishes before the marker
            LaneTrace::default(),     // never does anything
        ];
        let (_, c) = replay_warp(&traces, &cost);
        assert_eq!(c.compute_slots, 2);
    }

    #[test]
    fn trailing_converge_is_free() {
        let cost = CostModel::v100();
        let traces = vec![trace_of(&[Op::Converge]), trace_of(&[Op::Converge])];
        let (cycles, c) = replay_warp(&traces, &cost);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }

    #[test]
    fn empty_traces_are_free() {
        let cost = CostModel::v100();
        let traces = vec![LaneTrace::default(); 32];
        let (cycles, c) = replay_warp(&traces, &cost);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }
}
