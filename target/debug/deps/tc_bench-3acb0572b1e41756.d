/root/repo/target/debug/deps/tc_bench-3acb0572b1e41756.d: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-3acb0572b1e41756.rmeta: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
