//! k-truss decomposition — the paper's other motivating application.
//!
//! The k-truss of a graph is the maximal subgraph in which every edge
//! participates in at least k-2 triangles. This example peels
//! iteratively: per-edge triangle supports come from the library's
//! reference counter, edges below the threshold are removed, and the
//! process repeats until stable — reporting the maximum k with a
//! non-empty truss.
//!
//! ```sh
//! cargo run --release --example ktruss [dataset-name] [k]
//! ```

use std::collections::HashSet;

use tc_compare::graph::{clean_edges, cpu_ref, orient, DatasetSpec, EdgeList, Orientation};

/// Edges of the k-truss of `graph` (undirected, as (min,max) pairs).
fn k_truss(edges: &[(u32, u32)], k: u32) -> Vec<(u32, u32)> {
    let min_support = k.saturating_sub(2) as u64;
    let mut current: Vec<(u32, u32)> = edges.to_vec();
    loop {
        if current.is_empty() {
            return current;
        }
        let (g, _) = clean_edges(&EdgeList::new(current.clone()));
        let dag = orient(&g, Orientation::ById);
        let supports = cpu_ref::per_edge_supports(&dag);
        // per_edge_supports counts each triangle once (at its smallest
        // vertex); recover full per-edge support by re-crediting all
        // three edges of each triangle.
        let mut support_map: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for (idx, (u, v)) in dag.csr().edge_iter().enumerate() {
            if supports[idx] > 0 {
                // Enumerate the actual wedge closures for exact per-edge
                // credit.
                let nu = dag.out_neighbors(u);
                let nv = dag.out_neighbors(v);
                let (mut i, mut j) = (0, 0);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = nu[i];
                            *support_map.entry((u, v)).or_default() += 1;
                            *support_map.entry((u, w)).or_default() += 1;
                            *support_map.entry((v, w)).or_default() += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        // Survivors (in the compacted ID space of `g`).
        let survivors: HashSet<(u32, u32)> = dag
            .csr()
            .edge_iter()
            .filter(|&(u, v)| support_map.get(&(u, v)).copied().unwrap_or(0) >= min_support)
            .collect();
        if survivors.len() == dag.num_edges() as usize {
            // Stable: translate back through the relabeling.
            return dag
                .csr()
                .edge_iter()
                .map(|(u, v)| {
                    let (a, b) = (dag.old_id(u), dag.old_id(v));
                    (a.min(b), a.max(b))
                })
                .collect();
        }
        current = survivors
            .into_iter()
            .map(|(u, v)| {
                let (a, b) = (dag.old_id(u), dag.old_id(v));
                (a.min(b), a.max(b))
            })
            .collect();
        current.sort_unstable();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "As-Caida".to_string());
    let k: u32 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let spec = DatasetSpec::by_name(&name)
        .ok_or_else(|| format!("unknown dataset `{name}` (see Table II)"))?;
    eprintln!("building {} stand-in...", spec.name);
    let graph = spec.build();
    let edges: Vec<(u32, u32)> = graph.undirected_edges().collect();
    println!("dataset: {} ({} edges)", spec.name, edges.len());

    let truss = k_truss(&edges, k);
    println!("{k}-truss: {} edges survive", truss.len());

    // Decomposition curve: how the truss shrinks with k.
    let mut kk = 3;
    loop {
        let t = k_truss(&edges, kk);
        println!("  k={kk}: {} edges", t.len());
        if t.is_empty() || kk >= 12 {
            break;
        }
        kk += 1;
    }
    Ok(())
}
