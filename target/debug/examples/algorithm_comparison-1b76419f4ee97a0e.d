/root/repo/target/debug/examples/algorithm_comparison-1b76419f4ee97a0e.d: examples/algorithm_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libalgorithm_comparison-1b76419f4ee97a0e.rmeta: examples/algorithm_comparison.rs Cargo.toml

examples/algorithm_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
