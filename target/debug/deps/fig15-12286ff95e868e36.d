/root/repo/target/debug/deps/fig15-12286ff95e868e36.d: crates/tc-bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-12286ff95e868e36: crates/tc-bench/src/bin/fig15.rs

crates/tc-bench/src/bin/fig15.rs:
