//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the rayon API it uses: `into_par_iter()` / `par_iter()`
//! over ranges, vectors and slices, with `map`, `sum` and `collect`.
//! Execution fans items over `std::thread::scope` workers that pull
//! indices from a shared atomic cursor (dynamic load balancing, like
//! rayon's work stealing at a coarser grain), and results are always
//! returned **in input order**, so parallel sweeps stay deterministic.
//!
//! A process-wide worker budget keeps nested parallelism (a parallel
//! sweep whose every cell launches a block-parallel kernel) from spawning
//! quadratically many threads: inner `par_*` calls that find the budget
//! exhausted just run inline on the caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Live workers across every concurrently-executing `par_*` call.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the host offers.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items`, in parallel when the thread budget allows,
/// returning results in input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_init_vec(items, || (), |(), item| f(item))
}

/// [`par_map_vec`] with per-worker state: every worker thread calls
/// `init` exactly once and threads the value mutably through each item it
/// processes (the inline fallback uses a single state for all items).
/// This is what backs rayon's `map_init` — the gpu-sim block executor
/// uses it to recycle one scratch arena per worker across blocks.
fn par_map_init_vec<T, S, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let budget = current_num_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    let workers = budget.min(n);
    if workers <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    ACTIVE_WORKERS.fetch_add(workers, Ordering::Relaxed);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("rayon shim: item slot poisoned")
                        .take()
                        .expect("rayon shim: item taken twice");
                    let out = f(&mut state, item);
                    *results[i].lock().expect("rayon shim: result slot poisoned") = Some(out);
                }
            });
        }
    });
    ACTIVE_WORKERS.fetch_sub(workers, Ordering::Relaxed);
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rayon shim: result slot poisoned")
                .expect("rayon shim: worker skipped an item")
        })
        .collect()
}

/// A to-be-parallelized sequence of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A [`ParIter`] with a pending per-item transform; the transform runs on
/// the worker threads.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// A [`ParIter`] with a pending per-item transform that also threads a
/// per-worker state value (rayon's `map_init`).
pub struct ParMapInit<T, I, F> {
    items: Vec<T>,
    init: I,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Like [`map`](Self::map), but each worker thread first builds a
    /// state value with `init` and reuses it (by `&mut`) across every
    /// item that worker processes.
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParMapInit<T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` on collections, yielding `&T` items.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Consumer operations shared by [`ParIter`] and [`ParMap`].
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Execute, producing the items in input order.
    fn run(self) -> Vec<Self::Item>;

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T, R, F> ParallelIterator for ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_vec(self.items, self.f)
    }
}

impl<T, S, R, I, F> ParallelIterator for ParMapInit<T, I, F>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_init_vec(self.items, self.init, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_sum() {
        let s: u64 = (0u32..1000).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn collect_preserves_input_order() {
        let v: Vec<usize> = (0usize..512).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..512).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let r: Result<Vec<u32>, String> = (0u32..100)
            .into_par_iter()
            .map(|i| {
                if i == 42 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r, Err("boom".to_string()));
        let ok: Result<Vec<u32>, String> = (0u32..10).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let data = vec![1u64, 2, 3, 4];
        let s: u64 = data.par_iter().map(|&x| x * 10).sum();
        assert_eq!(s, 100);
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let v: Vec<usize> = (0usize..256)
            .into_par_iter()
            .map_init(
                || {
                    INITS.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    // The scratch must arrive empty of *our* marker: each
                    // item clears what it wrote, proving reuse is safe.
                    assert!(scratch.is_empty());
                    scratch.push(i);
                    let out = scratch[0] * 2;
                    scratch.clear();
                    out
                },
            )
            .collect();
        assert_eq!(v, (0..256).map(|i| i * 2).collect::<Vec<_>>());
        // One init per worker (or one inline), never one per item.
        assert!(INITS.load(Ordering::Relaxed) <= super::current_num_threads().max(1));
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let total: u64 = (0u32..8)
            .into_par_iter()
            .map(|i| {
                (0u32..100)
                    .into_par_iter()
                    .map(|j| (i + j) as u64)
                    .sum::<u64>()
            })
            .sum();
        let expected: u64 = (0..8u64)
            .map(|i| (0..100u64).map(|j| i + j).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }
}
