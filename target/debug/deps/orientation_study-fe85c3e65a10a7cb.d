/root/repo/target/debug/deps/orientation_study-fe85c3e65a10a7cb.d: crates/tc-bench/src/bin/orientation_study.rs

/root/repo/target/debug/deps/orientation_study-fe85c3e65a10a7cb: crates/tc-bench/src/bin/orientation_study.rs

crates/tc-bench/src/bin/orientation_study.rs:
