/root/repo/target/debug/deps/proptest_invariants-a909d22b443fc896.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-a909d22b443fc896: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
