use std::fmt;

/// Errors surfaced by the simulator.
///
/// `OutOfMemory` is load-bearing for the reproduction: several of the
/// published implementations fail on the largest datasets (the red crosses
/// in Figure 11 of the paper), and they fail here the same way — by asking
/// the device for more global memory than it has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device-memory allocation exceeded remaining capacity.
    OutOfMemory {
        /// Human-readable tag of the buffer that failed to allocate.
        what: String,
        /// Words requested by the failing allocation.
        requested_words: u64,
        /// Words still available on the device.
        available_words: u64,
    },
    /// A kernel required more shared memory per block than the device has.
    SharedMemoryExceeded {
        requested_words: u32,
        available_words: u32,
    },
    /// A kernel was launched with an invalid configuration.
    InvalidLaunch(String),
    /// The kernel itself reported a failure (e.g. a hash-table overflow in
    /// an implementation with fixed-size buckets).
    KernelFault(String),
    /// A kernel lane accessed a device buffer out of bounds. Unlike a
    /// host-side out-of-bounds access (a harness bug, which panics), a
    /// lane-side fault is attributed to the implementation under test:
    /// the faulting block poisons itself, the launch returns this error,
    /// and an evaluation sweep records the cell as failed and moves on.
    MemoryFault {
        /// Debug name of the buffer that was accessed.
        buffer: String,
        /// The out-of-bounds word index.
        index: usize,
        /// The buffer's length in words.
        len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                what,
                requested_words,
                available_words,
            } => write!(
                f,
                "device out of memory allocating `{what}`: requested {requested_words} words, \
                 {available_words} available"
            ),
            SimError::SharedMemoryExceeded {
                requested_words,
                available_words,
            } => write!(
                f,
                "shared memory exceeded: requested {requested_words} words/block, \
                 device provides {available_words}"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::KernelFault(msg) => write!(f, "kernel fault: {msg}"),
            SimError::MemoryFault { buffer, index, len } => write!(
                f,
                "device memory fault: `{buffer}`[{index}] out of bounds (len {len})"
            ),
        }
    }
}

impl std::error::Error for SimError {}
