//! MatrixMarket coordinate format (`%%MatrixMarket matrix coordinate
//! ... `) — the interchange format of the GraphChallenge / SuiteSparse
//! corpora several of the compared implementations ship loaders for.
//! Only the structural pattern is used; values on weighted entries are
//! ignored. MatrixMarket is 1-indexed; IDs are shifted down on read and
//! up on write.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::types::EdgeList;

/// Leading bytes of a MatrixMarket file.
pub const MM_MAGIC: &[u8] = b"%%MatrixMarket";

/// Parse a coordinate-format MatrixMarket graph.
///
/// Tolerated per the spec and the corpora in the wild: extra whitespace
/// between banner tokens, blank lines and `%` comments anywhere after
/// the banner (including inside the entry block), and values on
/// weighted entries. Rejected with a line number: zero indices, indices
/// beyond the declared dimensions (an index *equal* to the dimension is
/// the last valid 1-indexed row/column), and entry-count mismatches.
pub fn read_matrix_market<R: Read>(reader: R) -> io::Result<EdgeList> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();

    // Banner line: `%%MatrixMarket matrix coordinate ...`, with any
    // amount of whitespace between the tokens.
    reader.read_line(&mut line)?;
    let header = line.trim().to_ascii_lowercase();
    let mut banner = header.split_whitespace();
    if banner.next() != Some("%%matrixmarket")
        || banner.next() != Some("matrix")
        || banner.next() != Some("coordinate")
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported MatrixMarket header: {}", line.trim()),
        ));
    }

    // Skip comments; then the size line.
    let (mut rows, mut cols) = (0u64, 0u64);
    let (mut declared_entries, mut read_size) = (0usize, false);
    let mut edges = Vec::new();
    let mut line_no = 1usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        if !read_size {
            // rows cols entries
            rows = parse(it.next(), line_no, t)?;
            cols = parse(it.next(), line_no, t)?;
            declared_entries = parse(it.next(), line_no, t)? as usize;
            read_size = true;
            continue;
        }
        let i: u64 = parse(it.next(), line_no, t)?;
        let j: u64 = parse(it.next(), line_no, t)?;
        if i == 0 || j == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("MatrixMarket is 1-indexed; got a zero index on line {line_no}"),
            ));
        }
        if i > rows || j > cols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "entry ({i}, {j}) on line {line_no} exceeds the declared \
                     {rows}x{cols} dimensions"
                ),
            ));
        }
        let u = u32::try_from(i - 1).map_err(|_| index_overflow(i, line_no))?;
        let v = u32::try_from(j - 1).map_err(|_| index_overflow(j, line_no))?;
        edges.push((u, v));
    }
    if read_size && edges.len() != declared_entries {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "MatrixMarket declared {declared_entries} entries but {} were present",
                edges.len()
            ),
        ));
    }
    Ok(EdgeList::new(edges))
}

fn parse(tok: Option<&str>, line_no: usize, line: &str) -> io::Result<u64> {
    tok.and_then(|t| t.parse().ok()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed MatrixMarket line {line_no}: {line:?}"),
        )
    })
}

fn index_overflow(idx: u64, line_no: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("index {idx} on line {line_no} exceeds the u32 vertex-id space"),
    )
}

/// Write a pattern-only general coordinate MatrixMarket file.
pub fn write_matrix_market<W: Write>(writer: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by tc-compare")?;
    let n = edges.id_space().max(1);
    writeln!(w, "{n} {n} {}", edges.len())?;
    for &(u, v) in &edges.edges {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_file() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    4 4 3\n\
                    1 2\n\
                    2 3\n\
                    4 1\n";
        let e = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn tolerates_values_on_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1\n\
                    1 2 3.25\n";
        let e = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1)]);
    }

    #[test]
    fn tolerates_extra_whitespace_in_banner() {
        let text = "%%MatrixMarket   matrix \t coordinate  pattern   general\n\
                    2 2 1\n\
                    1 2\n";
        let e = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1)]);
    }

    #[test]
    fn tolerates_blank_lines_and_comments_inside_entry_block() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    3 3 2\n\
                    1 2\n\
                    \n\
                    % mid-block comment\n\
                    \t \n\
                    2 3\n";
        let e = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn accepts_entry_equal_to_declared_dimension() {
        // 1-indexed: row/col == dimension is the last valid entry.
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    4 4 1\n\
                    4 4\n";
        let e = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(3, 3)]);
    }

    #[test]
    fn rejects_entry_beyond_declared_dimension() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    4 4 1\n\
                    5 1\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    4 4 1\n\
                    1 5\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_index_beyond_u32_space() {
        let big = (u32::MAX as u64) + 2;
        let text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n\
             {big} {big} 1\n\
             {big} 1\n"
        );
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("u32 vertex-id space"), "{err}");
    }

    #[test]
    fn rejects_wrong_header_and_zero_index() {
        assert!(read_matrix_market("%%MatrixMarket matrix array\n".as_bytes()).is_err());
        let zero = "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n0 1\n";
        assert!(read_matrix_market(zero.as_bytes()).is_err());
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let e = EdgeList::new(vec![(0, 5), (3, 3), (7, 1)]);
        let mut bytes = Vec::new();
        write_matrix_market(&mut bytes, &e).unwrap();
        assert_eq!(read_matrix_market(&bytes[..]).unwrap(), e);
    }
}
