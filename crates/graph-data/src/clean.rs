//! The paper's data-cleaning pipeline (Section IV, "Datasets"):
//! *"removing vertices that are not connected to any edges, eliminating
//! self-loop edges, and resolving duplicate edges within the graph. It is
//! important to note that these transformations do not alter the number
//! of triangles within the graph."*

use crate::types::{Csr, EdgeList, UndirGraph, VertexId};

/// What cleaning removed — reported by the framework's dataset pipeline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CleanReport {
    pub input_edges: u64,
    pub removed_self_loops: u64,
    /// Duplicate undirected edges removed (counting reverse-direction
    /// repeats of an already-seen edge as duplicates).
    pub removed_duplicates: u64,
    pub removed_isolated_vertices: u64,
    pub final_vertices: u32,
    pub final_edges: u64,
}

/// Clean a raw edge list into a simple undirected graph:
/// drop self-loops, merge duplicate/reverse-duplicate edges, drop
/// isolated vertices (compacting IDs while preserving relative order).
pub fn clean_edges(raw: &EdgeList) -> (UndirGraph, CleanReport) {
    let mut report = CleanReport {
        input_edges: raw.len() as u64,
        ..Default::default()
    };

    // Normalize to (min, max) pairs, dropping self-loops.
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(raw.len());
    for &(u, v) in &raw.edges {
        if u == v {
            report.removed_self_loops += 1;
        } else {
            pairs.push((u.min(v), u.max(v)));
        }
    }
    pairs.sort_unstable();
    let before = pairs.len();
    pairs.dedup();
    report.removed_duplicates = (before - pairs.len()) as u64;

    // Compact vertex IDs: keep only endpoints of surviving edges.
    let id_space = raw.id_space() as usize;
    let mut used = vec![false; id_space];
    for &(u, v) in &pairs {
        used[u as usize] = true;
        used[v as usize] = true;
    }
    let mut remap = vec![u32::MAX; id_space];
    let mut next = 0u32;
    for (old, &u) in used.iter().enumerate() {
        if u {
            remap[old] = next;
            next += 1;
        }
    }
    report.removed_isolated_vertices = (id_space as u64).saturating_sub(next as u64);
    report.final_vertices = next;
    report.final_edges = pairs.len() as u64;

    // Build symmetric adjacency.
    let n = next as usize;
    let mut deg = vec![0u32; n];
    for &(u, v) in &pairs {
        deg[remap[u as usize] as usize] += 1;
        deg[remap[v as usize] as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut acc = 0u32;
    for &d in &deg {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; acc as usize];
    for &(u, v) in &pairs {
        let (nu, nv) = (remap[u as usize], remap[v as usize]);
        targets[cursor[nu as usize] as usize] = nv;
        cursor[nu as usize] += 1;
        targets[cursor[nv as usize] as usize] = nu;
        cursor[nv as usize] += 1;
    }
    // Sort each neighbour list (pairs were sorted by (u,v), so the `nu`
    // side is already ordered, but the `nv` side is not).
    for v in 0..n {
        targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
    }

    let g = UndirGraph::from_csr(Csr::from_parts(offsets, targets));
    (g, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_self_loops_and_duplicates() {
        let raw = EdgeList::new(vec![(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        let (g, r) = clean_edges(&raw);
        assert_eq!(r.removed_self_loops, 1);
        assert_eq!(r.removed_duplicates, 2);
        assert_eq!(r.final_edges, 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn compacts_isolated_vertices_preserving_order() {
        // Vertices 0 and 3 unused; 1-5 and 5-7 edges.
        let raw = EdgeList::new(vec![(1, 5), (5, 7)]);
        let (g, r) = clean_edges(&raw);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(r.removed_isolated_vertices, 8 - 3);
        // 1 -> 0, 5 -> 1, 7 -> 2.
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn cleaning_preserves_triangles() {
        // Triangle 2-4-6 with noise.
        let raw = EdgeList::new(vec![(2, 4), (4, 2), (4, 6), (6, 2), (2, 2), (6, 2), (9, 2)]);
        let (g, _) = clean_edges(&raw);
        assert_eq!(crate::cpu_ref::node_iterator(&g), 1);
    }

    #[test]
    fn empty_input() {
        let (g, r) = clean_edges(&EdgeList::default());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(r.final_edges, 0);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let raw = EdgeList::new(vec![(5, 0), (5, 3), (5, 1), (5, 4), (5, 2)]);
        let (g, _) = clean_edges(&raw);
        // Vertex 5 remaps to 5 (all of 0..=5 used).
        let star_center = 5;
        let n = g.neighbors(star_center);
        assert!(n.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(n.len(), 5);
    }
}
