//! Mini Figure 11: run all nine algorithms on one dataset and print a
//! comparison of modelled time, profiling counters, and correctness —
//! the unified framework as a downstream user would drive it.
//!
//! ```sh
//! cargo run --release --example algorithm_comparison [dataset-name]
//! ```

use tc_compare::core::framework::registry::all_algorithms;
use tc_compare::core::framework::report::{cycles_to_ms, Table};
use tc_compare::core::{run_on_dataset, PreparedDataset, RunOutcome};
use tc_compare::graph::DatasetSpec;
use tc_compare::sim::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Email-EuAll".to_string());
    let spec = DatasetSpec::by_name(&name)
        .ok_or_else(|| format!("unknown dataset `{name}` (see Table II)"))?;
    eprintln!("preparing {} stand-in...", spec.name);
    let data = PreparedDataset::prepare(spec);
    println!(
        "dataset {}: {} vertices, {} edges, {} triangles (CPU reference)",
        spec.name, data.stats.vertices, data.stats.edges, data.ground_truth
    );

    let device = Device::v100();
    let mut t = Table::new(&[
        "algorithm",
        "triangles",
        "ok",
        "time (ms)",
        "load reqs",
        "warp eff %",
        "tx/req",
    ]);
    for algo in all_algorithms() {
        eprintln!("running {}...", algo.name());
        let rec = run_on_dataset(&device, algo.as_ref(), &data);
        match rec.outcome {
            RunOutcome::Ok {
                triangles,
                kernel_cycles,
                counters,
                verified,
            } => {
                t.row(vec![
                    rec.algorithm,
                    triangles.to_string(),
                    if verified { "yes" } else { "MISMATCH" }.to_string(),
                    format!("{:.3}", cycles_to_ms(kernel_cycles)),
                    counters.global_load_requests.to_string(),
                    format!("{:.1}", counters.warp_execution_efficiency() * 100.0),
                    format!("{:.2}", counters.gld_transactions_per_request()),
                ]);
            }
            RunOutcome::Failed(e) => {
                t.row(vec![
                    rec.algorithm,
                    "-".into(),
                    format!("FAILED: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{}", t.render());
    Ok(())
}
