//! Test wall for the cover-edge algorithm (Bader et al., arXiv
//! 2403.02997): property-based differential invariants against the
//! node-iterator oracle on every generator family, the metamorphic
//! conformance checks, and a golden counters snapshot of its sim kernel
//! on the fixed R-MAT graph (the same graph GroupTC's snapshot pins).

use proptest::prelude::*;

use tc_compare::algos::conformance::{
    check_differential, check_orientation_invariance, check_relabel_invariance, generator_cases,
};
use tc_compare::algos::coveredge::{cover_plan, CoverEdge};
use tc_compare::algos::{DeviceGraph, TcAlgorithm};
use tc_compare::graph::{clean_edges, cpu_ref, gen, orient, Orientation};
use tc_compare::sim::{Device, DeviceMem, ProfileCounters};

/// CPU cover-edge count == node-iterator oracle on one raw edge list.
fn assert_matches_oracle(edges: &tc_compare::graph::EdgeList, label: &str) {
    let (g, _) = clean_edges(edges);
    let expected = cpu_ref::node_iterator(&g);
    let dag = orient(&g, Orientation::ById);
    assert_eq!(CoverEdge.count_cpu(&dag), expected, "{label}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cpu_count_matches_oracle_on_er(
        (n, m, seed) in (20u32..180, 0usize..1200, 0u64..1 << 32)
    ) {
        let edges = gen::erdos_renyi(n, m, seed);
        assert_matches_oracle(&edges, "erdos_renyi");
    }

    #[test]
    fn cpu_count_matches_oracle_on_ba(
        (n, m, seed) in (10u32..200, 1u32..8, 0u64..1 << 32)
    ) {
        let edges = gen::barabasi_albert(n, m, 0.5, seed);
        assert_matches_oracle(&edges, "barabasi_albert");
    }

    #[test]
    fn cpu_count_matches_oracle_on_rmat(
        (scale, m, seed) in (5u32..10, 10usize..3000, 0u64..1 << 32)
    ) {
        let edges = gen::rmat(scale, m, 0.57, 0.19, 0.19, 0.05, seed);
        assert_matches_oracle(&edges, "rmat");
    }

    #[test]
    fn cpu_count_matches_oracle_on_ws(
        (n, k, seed) in (12u32..200, 2u32..6, 0u64..1 << 32)
    ) {
        let edges = gen::watts_strogatz(n, k, 0.2, seed);
        assert_matches_oracle(&edges, "watts_strogatz");
    }

    #[test]
    fn cover_set_invariants_hold(
        (n, m, seed) in (10u32..150, 0usize..900, 0u64..1 << 32)
    ) {
        let edges = gen::erdos_renyi(n, m, seed);
        let (g, _) = clean_edges(&edges);
        let dag = orient(&g, Orientation::ById);
        let (src, dst) = dag.edge_arrays();
        let plan = cover_plan(dag.num_vertices(), &src, &dst);
        // Levels differ by at most one across every edge (BFS property
        // on the symmetrized graph), so every triangle has a horizontal
        // edge and the cover set really covers.
        for (&u, &v) in src.iter().zip(&dst) {
            let (lu, lv) = (plan.levels[u as usize], plan.levels[v as usize]);
            prop_assert!(lu.abs_diff(lv) <= 1, "edge ({u},{v}): levels {lu},{lv}");
        }
        // Cover edges are exactly the horizontal ones, normalized.
        let horizontal = src
            .iter()
            .zip(&dst)
            .filter(|&(&u, &v)| plan.levels[u as usize] == plan.levels[v as usize])
            .count();
        prop_assert_eq!(plan.cover_src.len(), horizontal);
        for (&u, &v) in plan.cover_src.iter().zip(&plan.cover_dst) {
            prop_assert!(u < v);
        }
    }
}

#[test]
fn metamorphic_conformance_cases_pass() {
    // The same orientation/relabeling invariance battery the registry
    // sweep runs, pinned here so a cover-edge regression is named by its
    // own test file and repro one-liner.
    for case in generator_cases().iter().filter(|c| c.metamorphic) {
        check_differential(&CoverEdge, case);
        check_orientation_invariance(&CoverEdge, case);
        check_relabel_invariance(&CoverEdge, case, 0xBADE ^ case.name.len() as u64);
    }
}

fn run_coveredge(dev: &Device) -> tc_compare::algos::TcOutput {
    // reproduce with: let edges = gen::rmat(10, 8000, 0.57, 0.19, 0.19, 0.05, 42);
    let edges = gen::rmat(10, 8000, 0.57, 0.19, 0.19, 0.05, 42);
    let (g, _) = clean_edges(&edges);
    let dag = orient(&g, Orientation::ById);
    let mut mem = DeviceMem::new(dev);
    let dg = DeviceGraph::upload(&dag, &mut mem).expect("upload");
    CoverEdge.count(dev, &mut mem, &dg).expect("CoverEdge run")
}

/// The pinned counters of the plain (detector-off, sanitizer-off) run.
/// Any drift means the modelled memory system, the BFS/cover prepass or
/// the kernel changed — re-pin deliberately.
const GOLDEN: ProfileCounters = ProfileCounters {
    global_load_requests: 49_895,
    gld_transactions: 341_662,
    dram_load_sectors: 65_143,
    global_store_requests: 0,
    gst_transactions: 0,
    global_atomic_requests: 120,
    dram_atomic_sectors: 120,
    shared_load_requests: 0,
    shared_store_requests: 0,
    shared_atomic_requests: 0,
    compute_slots: 37_636,
    issued_slots: 87_651,
    active_thread_slots: 1_019_959,
    race_checks: 0,
    races_detected: 0,
    sanitizer_checks: 0,
    sanitizer_reports: 0,
    lint_checks: 0,
};

#[test]
fn coveredge_counters_on_fixed_rmat_are_pinned() {
    let out = run_coveredge(&Device::v100());
    // Same graph, same count as GroupTC's snapshot — different kernel.
    assert_eq!(out.triangles, 24_199);
    assert_eq!(out.stats.kernel_cycles, 109_310);
    assert_eq!(out.stats.counters, GOLDEN);
}

#[test]
fn coveredge_snapshot_is_unchanged_under_the_sanitizer() {
    let out = run_coveredge(&Device::v100().with_sanitizer());
    assert!(out.stats.counters.sanitizer_checks > 0);
    assert_eq!(out.stats.counters.sanitizer_reports, 0);
    let masked = ProfileCounters {
        sanitizer_checks: 0,
        sanitizer_reports: 0,
        lint_checks: 0,
        ..out.stats.counters
    };
    assert_eq!(masked, GOLDEN);
    assert_eq!(out.triangles, 24_199);
    assert_eq!(out.stats.kernel_cycles, 109_310);
}
