/root/repo/target/debug/deps/fig15-baa13bcaeb7c41b5.d: crates/tc-bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-baa13bcaeb7c41b5.rmeta: crates/tc-bench/src/bin/fig15.rs Cargo.toml

crates/tc-bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
