//! GroupTC — the paper's new algorithm (Section V / Figure 14).
//!
//! Edge-centric and binary-search based, but with a basic computational
//! unit no existing method uses: an **edge chunk**. A block of `n`
//! threads processes `n` *consecutive* edges; because consecutive DAG
//! edges share sources and sit in adjacent CSR slots, every lane always
//! has comparable work — even on small low-degree graphs where TRUST's
//! block-per-vertex grant starves — and neighbouring lanes touch
//! neighbouring list members, keeping loads coalesced.
//!
//! Per chunk the block proceeds in two phases:
//!
//! 1. **Metadata caching**: lane `i` resolves chunk edge `i`'s
//!    (key-list base/length, search-table base/length) into shared
//!    memory.
//! 2. **Strided probing**: the lanes stride the chunk's concatenated key
//!    stream; each key is binary-searched in its edge's table segment.
//!
//! The three published optimizations, all individually toggleable:
//!
//! * **Partial 2-hop search** — the input is oriented so `u < v` for
//!   every edge; since a closing wedge `w` satisfies `w > v`, only the
//!   suffix of `N(u)` beyond `v` needs searching. As edge `(u,v)` *is*
//!   CSR slot `e` of `u`'s list, that suffix is simply
//!   `col_indices[e+1 .. u_end)` — no lookup needed. (The paper's
//!   example: for edge (0,8) of Figure 14, no search at all.)
//! * **Resume offsets** — a lane revisiting the same edge sees strictly
//!   increasing keys, so each search resumes from the previous hit
//!   position instead of the table start.
//! * **Table flipping** — per edge, pick `u`'s suffix or `N(v)` as the
//!   search table: binary-search cost is `keys * log(table)`, so the
//!   longer side should be the table, but `u` is favoured beyond pure
//!   length (consecutive edges share `u`, so its table stays hot in
//!   cache) unless its suffix is shorter than **half** of `N(v)` — the
//!   paper's empirical 2x rule.

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};
use tc_algos::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use tc_algos::device_graph::DeviceGraph;
use tc_algos::util::warp_reduce_add;

/// Tunable knobs (defaults = the published configuration; the toggles
/// exist for the ablation benches of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTcConfig {
    /// Threads per block = edges per chunk.
    pub chunk_size: u32,
    /// Optimization 1: search only the `N(u)` suffix beyond `v`.
    pub partial_two_hop: bool,
    /// Optimization 2: resume searches from the last hit offset.
    pub resume_offset: bool,
    /// Optimization 3: per-edge search-table choice (2x rule).
    pub flip_tables: bool,
}

impl Default for GroupTcConfig {
    fn default() -> Self {
        GroupTcConfig {
            chunk_size: 256,
            partial_two_hop: true,
            resume_offset: true,
            flip_tables: true,
        }
    }
}

/// The GroupTC algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct GroupTc {
    pub config: GroupTcConfig,
}

impl GroupTc {
    pub fn new(config: GroupTcConfig) -> Self {
        GroupTc { config }
    }

    /// A variant with one optimization disabled (for ablations).
    pub fn without_partial_two_hop() -> Self {
        GroupTc::new(GroupTcConfig {
            partial_two_hop: false,
            ..Default::default()
        })
    }

    pub fn without_resume_offset() -> Self {
        GroupTc::new(GroupTcConfig {
            resume_offset: false,
            ..Default::default()
        })
    }

    pub fn without_flip_tables() -> Self {
        GroupTc::new(GroupTcConfig {
            flip_tables: false,
            ..Default::default()
        })
    }
}

/// Shared-memory slots per cached edge: key base, table base, table len
/// (key lengths live in the prefix-sum region).
const META: u32 = 3;

impl TcAlgorithm for GroupTc {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "GroupTC",
            reference: "this paper, Section V",
            year: 2024,
            iterator: IteratorKind::Edge,
            intersection: Intersection::BinSearch,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "grouptc.counter")?;
        let stats = run_chunked(dev, mem, g, self.config, None, counter)?;
        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: binary-search intersection per edge. The chunked
    /// group processing, resume offsets and table flipping exist to keep
    /// device lanes busy and caches hot; the host analogue is the plain
    /// parallel binary-search forward count.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        tc_algos::cpu::par_edge_binsearch(dag)
    }
}

/// The chunked GroupTC kernel, optionally restricted to an explicit
/// edge-id list (`None` = all edges in CSR order). Shared with the
/// hybrid extension, whose light-edge pass runs exactly this kernel over
/// the non-hub subset.
pub(crate) fn run_chunked(
    dev: &Device,
    mem: &DeviceMem,
    g: &DeviceGraph,
    cfg: GroupTcConfig,
    edge_ids: Option<(gpu_sim::BufId, u32)>,
    counter: gpu_sim::BufId,
) -> Result<gpu_sim::LaunchStats, SimError> {
    {
        let n = cfg.chunk_size;
        let work_items = edge_ids.map_or(g.owned_edges(), |(_, len)| len);
        let chunks = work_items.div_ceil(n).max(1);
        let grid = chunks.min(8 * dev.config().num_sms);
        // Shared layout: META*n edge metadata, then two n-word ping-pong
        // buffers for the key-length prefix scan.
        let scan_a = (META * n) as usize;
        let scan_b = scan_a + n as usize;
        let launch = KernelConfig::new(grid, n).with_shared_words((META + 2) * n);
        let scan_steps = n.ilog2() + u32::from(!n.is_power_of_two());

        dev.launch(mem, launch, |blk| {
            let bidx = blk.block_idx();
            let gdim = blk.grid_dim();
            let mut locals = vec![0u32; n as usize];
            let mut chunk = bidx;
            while chunk < chunks {
                let chunk_base = chunk * n;
                let chunk_len = n.min(work_items - chunk_base);
                // Phase 1: resolve this chunk's edge metadata into shared
                // memory; lane i owns edge chunk_base + i (coalesced).
                blk.phase(|lane| {
                    let i = lane.tid();
                    if i >= chunk_len {
                        // Zero key length so the scan ignores this slot.
                        lane.st_shared(scan_a + i as usize, 0);
                        return;
                    }
                    let e = match edge_ids {
                        // Hybrid subset: one indirection (coalesced).
                        Some((ids, _)) => lane.ld_global(ids, (chunk_base + i) as usize),
                        // Dense walk over this device's edge range.
                        None => g.edge_lo + chunk_base + i,
                    };
                    let u = lane.ld_global(g.edge_src, e as usize);
                    let v = lane.ld_global(g.edge_dst, e as usize);
                    let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
                    // Partial 2-hop: the suffix of N(u) past v starts
                    // right after this edge's own CSR slot.
                    let (su_base, su_len) = if cfg.partial_two_hop {
                        (e + 1, u_end - (e + 1))
                    } else {
                        let u_base = lane.ld_global(g.row_offsets, u as usize);
                        (u_base, u_end - u_base)
                    };
                    let v_base = lane.ld_global(g.row_offsets, v as usize);
                    let v_len = lane.ld_global(g.row_offsets, v as usize + 1) - v_base;
                    lane.compute(1);
                    // Table flipping: binary-search cost is
                    // keys * log(table), so the longer side should be the
                    // table — but `u` repeats across consecutive edges,
                    // so its suffix is preferred as the table (cache
                    // reuse) unless it is outright shorter than half of
                    // N(v) (the paper's empirical 2x rule).
                    let take_u = !cfg.flip_tables || su_len * 2 >= v_len;
                    let (k_base, k_len, t_base, t_len) = if take_u {
                        (v_base, v_len, su_base, su_len)
                    } else {
                        (su_base, su_len, v_base, v_len)
                    };
                    let s = (META * i) as usize;
                    lane.st_shared(s, k_base);
                    lane.st_shared(s + 1, t_base);
                    lane.st_shared(s + 2, t_len);
                    lane.st_shared(scan_a + i as usize, k_len);
                });
                // Hillis–Steele inclusive scan of the key lengths
                // (ping-pong buffers; log2(n) barrier steps).
                let mut src = scan_a;
                let mut dst = scan_b;
                let mut d = 1u32;
                for _ in 0..scan_steps {
                    blk.phase(|lane| {
                        let i = lane.tid();
                        let mut v = lane.ld_shared(src + i as usize);
                        if i >= d {
                            v += lane.ld_shared(src + (i - d) as usize);
                        }
                        lane.compute(1);
                        lane.st_shared(dst + i as usize, v);
                    });
                    std::mem::swap(&mut src, &mut dst);
                    d <<= 1;
                }
                let prefix = src;
                // Phase 2: lanes stride the chunk's concatenated key
                // stream; each position is located via binary search on
                // the prefix array, then the key is searched in its
                // edge's table.
                blk.phase(|lane| {
                    let total = lane.ld_shared(prefix + n as usize - 1);
                    let mut cnt = 0u32;
                    let mut pos = lane.tid();
                    // Resume-offset state for the edge currently worked.
                    let mut resume_edge = u32::MAX;
                    let mut resume_lo = 0u32;
                    while pos < total {
                        // First edge whose prefix exceeds pos.
                        let (mut lo_i, mut hi_i) = (0u32, chunk_len);
                        while lo_i < hi_i {
                            let mid = lo_i + (hi_i - lo_i) / 2;
                            let p = lane.ld_shared(prefix + mid as usize);
                            lane.compute(1);
                            if p > pos {
                                hi_i = mid;
                            } else {
                                lo_i = mid + 1;
                            }
                        }
                        let e_idx = lo_i;
                        let prev = if e_idx == 0 {
                            0
                        } else {
                            lane.ld_shared(prefix + e_idx as usize - 1)
                        };
                        let k_off = pos - prev;
                        let s = (META * e_idx) as usize;
                        let k_base = lane.ld_shared(s);
                        let t_base = lane.ld_shared(s + 1);
                        let t_len = lane.ld_shared(s + 2);
                        let key = lane.ld_global(g.col_indices, (k_base + k_off) as usize);
                        // Resume from the previous stop within this edge.
                        let lo0 = if cfg.resume_offset && resume_edge == e_idx {
                            resume_lo
                        } else {
                            0
                        };
                        let (mut lo, mut hi) = (t_base + lo0, t_base + t_len);
                        let mut found = false;
                        while lo < hi {
                            let mid = lo + (hi - lo) / 2;
                            let x = lane.ld_global(g.col_indices, mid as usize);
                            lane.compute(1);
                            match x.cmp(&key) {
                                std::cmp::Ordering::Equal => {
                                    found = true;
                                    lo = mid + 1;
                                    break;
                                }
                                std::cmp::Ordering::Less => lo = mid + 1,
                                std::cmp::Ordering::Greater => hi = mid,
                            }
                        }
                        if found {
                            cnt += 1;
                        }
                        if cfg.resume_offset {
                            resume_edge = e_idx;
                            // Keys are increasing along the stream, so no
                            // later match can precede this stop point.
                            resume_lo = lo - t_base;
                        }
                        lane.converge();
                        pos += n;
                    }
                    locals[lane.tid() as usize] += cnt;
                });
                chunk += gdim;
            }
            blk.phase(|lane| {
                warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_data::Orientation;
    use tc_algos::testutil;

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &GroupTc::default(),
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs_default_config() {
        testutil::exhaustive_small_graph_check(&GroupTc::default());
    }

    #[test]
    fn exhaustive_small_graphs_all_ablations() {
        testutil::exhaustive_small_graph_check(&GroupTc::without_partial_two_hop());
        testutil::exhaustive_small_graph_check(&GroupTc::without_resume_offset());
        testutil::exhaustive_small_graph_check(&GroupTc::without_flip_tables());
        // Everything off.
        testutil::exhaustive_small_graph_check(&GroupTc::new(GroupTcConfig {
            chunk_size: 256,
            partial_two_hop: false,
            resume_offset: false,
            flip_tables: false,
        }));
    }

    #[test]
    fn chunk_size_sweep_is_exact() {
        for chunk in [32, 64, 128, 512, 1024] {
            let algo = GroupTc::new(GroupTcConfig {
                chunk_size: chunk,
                ..Default::default()
            });
            testutil::assert_matches_reference(
                &algo,
                &testutil::figure1_edges(),
                Orientation::DegreeAsc,
            );
            testutil::assert_matches_reference(
                &algo,
                &graph_data::gen::rmat(10, 6000, 0.57, 0.19, 0.19, 0.05, 77),
                Orientation::DegreeAsc,
            );
        }
    }

    #[test]
    fn partial_two_hop_reduces_search_work() {
        use gpu_sim::{Device, DeviceMem};
        use graph_data::{clean_edges, orient};
        use tc_algos::device_graph::DeviceGraph;

        let raw = graph_data::gen::rmat(12, 30_000, 0.57, 0.19, 0.19, 0.05, 5);
        let (g, _) = clean_edges(&raw);
        let dag = orient(&g, Orientation::DegreeAsc);
        let dev = Device::v100();

        let run = |algo: &GroupTc| {
            let mut mem = DeviceMem::new(&dev);
            let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
            algo.count(&dev, &mut mem, &dg).unwrap()
        };
        let with = run(&GroupTc::default());
        let without = run(&GroupTc::without_partial_two_hop());
        assert_eq!(with.triangles, without.triangles);
        assert!(
            with.stats.counters.global_load_requests < without.stats.counters.global_load_requests,
            "partial 2-hop should cut load requests ({} vs {})",
            with.stats.counters.global_load_requests,
            without.stats.counters.global_load_requests
        );
    }

    #[test]
    fn metadata_row() {
        let m = GroupTc::default().meta();
        assert_eq!(m.name, "GroupTC");
        assert_eq!(m.iterator, IteratorKind::Edge);
        assert_eq!(m.intersection, Intersection::BinSearch);
        assert_eq!(m.granularity, Granularity::Fine);
    }
}
