/root/repo/target/release/deps/all_figures-3b10c13cccb78480.d: crates/tc-bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-3b10c13cccb78480: crates/tc-bench/src/bin/all_figures.rs

crates/tc-bench/src/bin/all_figures.rs:
