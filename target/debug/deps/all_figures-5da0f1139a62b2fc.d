/root/repo/target/debug/deps/all_figures-5da0f1139a62b2fc.d: crates/tc-bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-5da0f1139a62b2fc.rmeta: crates/tc-bench/src/bin/all_figures.rs Cargo.toml

crates/tc-bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
