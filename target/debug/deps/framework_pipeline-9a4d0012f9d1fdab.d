/root/repo/target/debug/deps/framework_pipeline-9a4d0012f9d1fdab.d: tests/framework_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libframework_pipeline-9a4d0012f9d1fdab.rmeta: tests/framework_pipeline.rs Cargo.toml

tests/framework_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
