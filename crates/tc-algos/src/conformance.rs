//! Cross-algorithm conformance checks: differential testing against the
//! CPU reference plus metamorphic invariants, all executed under the
//! simulator's data-race detector *and* SimSan.
//!
//! Since the backend split, every check is also *three-way* differential:
//! the sim kernel, the algorithm's native host kernel
//! ([`TcAlgorithm::count_cpu`]) and the `cpu_ref::node_iterator` oracle
//! must agree on every case — the CPU execution path lives behind the
//! same wall the sim path does.
//!
//! Every check runs on a [`Device::with_race_detection`] +
//! [`Device::with_sanitizer`] device, so a kernel that only *appears*
//! correct because the simulator serializes lanes (or zero-fills memory
//! that real hardware leaves as garbage) fails here with
//! [`SimError::DataRace`] or [`SimError::Sanitizer`] instead of passing
//! on a schedule-dependent answer. After each run the device graph is
//! freed and [`DeviceMem::leak_check`] pins that the algorithm released
//! every scratch buffer it allocated.
//!
//! Failure messages always embed a paste-able generator call (kept in
//! sync with the actual case construction by `stringify!`), so any red
//! test reproduces with a one-liner like
//! `let edges = gen::rmat(9, 3000, 0.57, 0.19, 0.19, 0.05, 104);`.

use gpu_sim::{Device, DeviceMem, SimError};
use graph_data::{clean_edges, cpu_ref, gen, orient, DagGraph, EdgeList, Orientation, VertexId};

use crate::api::{TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;

/// One conformance input: a generated graph plus the exact expression
/// that regenerates it.
pub struct ConformanceCase {
    /// Short case label (unique within [`generator_cases`]).
    pub name: &'static str,
    /// Paste-able expression reproducing `edges` exactly.
    pub repro: &'static str,
    /// Whether the (more expensive) metamorphic checks run on this case.
    pub metamorphic: bool,
    pub edges: EdgeList,
}

/// Builds a [`ConformanceCase`] whose `repro` string is derived from the
/// actual generator call, so the two can never drift apart.
macro_rules! case {
    ($name:literal, $metamorphic:expr, $gen:ident($($arg:expr),* $(,)?)) => {
        ConformanceCase {
            name: $name,
            repro: concat!(
                "gen::",
                stringify!($gen),
                "(",
                stringify!($($arg),*),
                ")"
            ),
            metamorphic: $metamorphic,
            edges: gen::$gen($($arg),*),
        }
    };
}

/// The conformance corpus: one or two representatives of every generator
/// family (Erdős–Rényi, Barabási–Albert, R-MAT, Watts–Strogatz, road
/// grid), sized so the full registry sweep stays in test-suite budget.
pub fn generator_cases() -> Vec<ConformanceCase> {
    vec![
        case!("er-sparse", false, erdos_renyi(200, 400, 101)),
        case!("er-dense", true, erdos_renyi(120, 2000, 102)),
        case!("ba-hubs", false, barabasi_albert(250, 5, 0.5, 103)),
        case!(
            "rmat-skewed",
            true,
            rmat(9, 3000, 0.57, 0.19, 0.19, 0.05, 104)
        ),
        case!(
            "rmat-uniform",
            false,
            rmat(8, 2500, 0.25, 0.25, 0.25, 0.25, 105)
        ),
        case!("ws-ring", true, watts_strogatz(180, 4, 0.15, 106)),
        case!("road-grid", true, road_grid(12, 12, 0.9, 0.4, 107)),
    ]
}

/// Run `algo` on `dag` end to end with the data-race detector, SimSan
/// and SimLint forced on, then free the graph and leak-check the
/// device: an algorithm that abandons a scratch buffer fails here with
/// [`SimError::Sanitizer`] (leak), and one whose lanes disagree on a
/// barrier fails with [`SimError::BarrierDivergence`]. Performance
/// lints are advisory and land in `TcOutput::stats.lint`.
pub fn run_checked(algo: &dyn TcAlgorithm, dag: &DagGraph) -> Result<TcOutput, SimError> {
    let dev = Device::v100()
        .with_race_detection()
        .with_sanitizer()
        .with_lints();
    let mut mem = DeviceMem::new(&dev);
    let dg = DeviceGraph::upload(dag, &mut mem)?;
    let out = algo.count(&dev, &mut mem, &dg)?;
    dg.free(&mut mem)?;
    mem.leak_check()?;
    Ok(out)
}

/// `run_checked` under the algorithm's preferred orientation, panicking
/// with the case's repro one-liner on any failure (including a detected
/// data race).
fn count_or_die(algo: &dyn TcAlgorithm, case: &ConformanceCase, dag: &DagGraph) -> TcOutput {
    match run_checked(algo, dag) {
        Ok(out) => out,
        Err(e) => panic!(
            "{} failed on case `{}` under {:?}: {e}\n  reproduce with: let edges = {};",
            algo.name(),
            case.name,
            dag.orientation(),
            case.repro,
        ),
    }
}

/// `count_cpu` for one case, asserting the host kernel agrees with the
/// node-iterator oracle (and therefore with any sim count that passed
/// its own differential check).
fn cpu_count_checked(algo: &dyn TcAlgorithm, case: &ConformanceCase, dag: &DagGraph) -> u64 {
    let expected = {
        let (g, _) = clean_edges(&case.edges);
        cpu_ref::node_iterator(&g)
    };
    let got = algo.count_cpu(dag);
    assert_eq!(
        got,
        expected,
        "{}: cpu kernel counted {got} but the node-iterator oracle says {expected} \
         on case `{}` under {:?}\n  reproduce with: let edges = {};",
        algo.name(),
        case.name,
        dag.orientation(),
        case.repro,
    );
    got
}

/// Differential check: the GPU count must equal the CPU node-iterator
/// baseline (an implementation independent of orientation and of every
/// GPU intersection strategy), and the algorithm's native host kernel
/// must agree with both. Returns the race-detector, sanitizer and lint
/// check counts so callers can prove all three were live.
pub fn check_differential(algo: &dyn TcAlgorithm, case: &ConformanceCase) -> (u64, u64, u64) {
    let (g, _) = clean_edges(&case.edges);
    let expected = cpu_ref::node_iterator(&g);
    let dag = orient(&g, algo.preferred_orientation());
    let out = count_or_die(algo, case, &dag);
    assert_eq!(
        out.triangles,
        expected,
        "{} counted {} but the CPU reference says {expected} on case `{}`\n  \
         reproduce with: let edges = {};",
        algo.name(),
        out.triangles,
        case.name,
        case.repro,
    );
    cpu_count_checked(algo, case, &dag);
    assert!(
        out.stats.counters.race_checks > 0,
        "{}: race detector performed no checks on `{}` — detection wiring is broken",
        algo.name(),
        case.name,
    );
    assert!(
        out.stats.counters.sanitizer_checks > 0,
        "{}: sanitizer performed no checks on `{}` — SimSan wiring is broken",
        algo.name(),
        case.name,
    );
    assert!(
        out.stats.counters.lint_checks > 0,
        "{}: SimLint performed no checks on `{}` — lint wiring is broken",
        algo.name(),
        case.name,
    );
    (
        out.stats.counters.race_checks,
        out.stats.counters.sanitizer_checks,
        out.stats.counters.lint_checks,
    )
}

/// Metamorphic check: the triangle count is a graph invariant, so the
/// three standard orientations must all agree — on both backends.
pub fn check_orientation_invariance(algo: &dyn TcAlgorithm, case: &ConformanceCase) {
    let (g, _) = clean_edges(&case.edges);
    let mut counts = Vec::new();
    for o in [
        Orientation::ById,
        Orientation::DegreeAsc,
        Orientation::DegreeDesc,
    ] {
        let dag = orient(&g, o);
        let sim = count_or_die(algo, case, &dag).triangles;
        let cpu = cpu_count_checked(algo, case, &dag);
        assert_eq!(
            cpu,
            sim,
            "{}: cpu and sim disagree under {o:?} on case `{}`\n  \
             reproduce with: let edges = {};",
            algo.name(),
            case.name,
            case.repro,
        );
        counts.push((o, sim));
    }
    let (first_o, first) = counts[0];
    for &(o, n) in &counts[1..] {
        assert_eq!(
            n,
            first,
            "{}: {o:?} counted {n} but {first_o:?} counted {first} on case `{}`\n  \
             reproduce with: let edges = {};",
            algo.name(),
            case.name,
            case.repro,
        );
    }
}

/// Metamorphic check: renaming vertices cannot change the number of
/// triangles. The permutation is a deterministic Fisher–Yates shuffle
/// seeded per case, so a failure reproduces exactly.
pub fn check_relabel_invariance(algo: &dyn TcAlgorithm, case: &ConformanceCase, seed: u64) {
    let baseline = {
        let (g, _) = clean_edges(&case.edges);
        let dag = orient(&g, algo.preferred_orientation());
        count_or_die(algo, case, &dag).triangles
    };
    let relabeled = relabel_edges(&case.edges, seed);
    let (g, _) = clean_edges(&relabeled);
    let dag = orient(&g, algo.preferred_orientation());
    let got = count_or_die(algo, case, &dag).triangles;
    assert_eq!(
        got,
        baseline,
        "{}: relabeling (seed {seed}) changed the count from {baseline} to {got} on case `{}`\n  \
         reproduce with: let edges = relabel_edges(&{}, {seed});",
        algo.name(),
        case.name,
        case.repro,
    );
    let cpu = algo.count_cpu(&dag);
    assert_eq!(
        cpu,
        baseline,
        "{}: cpu kernel counted {cpu} on the relabeled (seed {seed}) case `{}`, expected \
         {baseline}\n  reproduce with: let edges = relabel_edges(&{}, {seed});",
        algo.name(),
        case.name,
        case.repro,
    );
}

/// Metamorphic check on the cleaning pipeline itself (no GPU involved):
/// injecting self-loops and duplicate/reversed-duplicate edges must not
/// change the triangle count, and cleaning must be idempotent.
pub fn check_cleaning_idempotence(case: &ConformanceCase) {
    let (clean, _) = clean_edges(&case.edges);
    let expected = cpu_ref::node_iterator(&clean);

    let dirty = dirty_edges(&case.edges);
    let (recleaned, report) = clean_edges(&dirty);
    assert_eq!(
        cpu_ref::node_iterator(&recleaned),
        expected,
        "cleaning the dirtied `{}` changed its triangle count\n  \
         reproduce with: let edges = dirty_edges(&{});",
        case.name,
        case.repro,
    );
    assert!(
        report.removed_self_loops > 0 && report.removed_duplicates > 0,
        "dirtying `{}` should have injected removable noise",
        case.name,
    );

    // Idempotence: re-cleaning an already-clean graph removes nothing.
    let already_clean = EdgeList::new(clean.undirected_edges().collect());
    let (twice, report2) = clean_edges(&already_clean);
    assert_eq!(report2.removed_self_loops, 0, "case `{}`", case.name);
    assert_eq!(report2.removed_duplicates, 0, "case `{}`", case.name);
    assert_eq!(report2.removed_isolated_vertices, 0, "case `{}`", case.name);
    assert_eq!(twice.num_vertices(), clean.num_vertices());
    assert_eq!(twice.num_edges(), clean.num_edges());
}

/// Apply a seeded random permutation to the vertex labels of `edges`.
pub fn relabel_edges(edges: &EdgeList, seed: u64) -> EdgeList {
    let n = edges.id_space();
    let perm = permutation(n, seed);
    EdgeList::new(
        edges
            .edges
            .iter()
            .map(|&(u, v)| (perm[u as usize], perm[v as usize]))
            .collect(),
    )
}

/// Inject the noise the paper's cleaning pipeline exists to remove:
/// self-loops, exact duplicates and reversed duplicates.
pub fn dirty_edges(edges: &EdgeList) -> EdgeList {
    let mut dirty = edges.edges.clone();
    for (i, &(u, v)) in edges.edges.iter().enumerate() {
        match i % 3 {
            0 => dirty.push((u, v)), // exact duplicate
            1 => dirty.push((v, u)), // reversed duplicate
            _ => dirty.push((u, u)), // self-loop
        }
    }
    EdgeList::new(dirty)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic Fisher–Yates permutation of `0..n`.
fn permutation(n: u32, seed: u64) -> Vec<VertexId> {
    let mut p: Vec<VertexId> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..p.len()).rev() {
        let j = (xorshift(&mut s) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Summary of one algorithm's pass through the whole corpus.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceStats {
    /// Differential + metamorphic GPU runs executed.
    pub runs: u64,
    /// Native host-kernel runs executed alongside the sim runs (every
    /// sim run is mirrored by a `count_cpu` differential twin).
    pub cpu_runs: u64,
    /// Race-detector checks accumulated across the differential runs —
    /// nonzero proves the suite exercised the detector.
    pub race_checks: u64,
    /// SimSan checks accumulated across the differential runs — nonzero
    /// proves the suite actually ran sanitized.
    pub sanitizer_checks: u64,
    /// SimLint checks accumulated across the differential runs — nonzero
    /// proves the suite actually ran under the diagnostics engine.
    pub lint_checks: u64,
}

/// Run the full conformance suite for one algorithm: differential on
/// every case (sim ≡ cpu ≡ node-iterator), metamorphic checks on the
/// designated subset.
pub fn run_all(algo: &dyn TcAlgorithm) -> ConformanceStats {
    let mut stats = ConformanceStats {
        runs: 0,
        cpu_runs: 0,
        race_checks: 0,
        sanitizer_checks: 0,
        lint_checks: 0,
    };
    for case in generator_cases() {
        let (race_checks, sanitizer_checks, lint_checks) = check_differential(algo, &case);
        stats.race_checks += race_checks;
        stats.sanitizer_checks += sanitizer_checks;
        stats.lint_checks += lint_checks;
        stats.runs += 1;
        stats.cpu_runs += 1;
        if case.metamorphic {
            check_orientation_invariance(algo, &case);
            check_relabel_invariance(algo, &case, 0xC0FFEE ^ case.name.len() as u64);
            stats.runs += 4; // three orientations + one relabeled run
            stats.cpu_runs += 4; // their host-kernel twins
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_generator_family() {
        let cases = generator_cases();
        for family in [
            "erdos_renyi",
            "barabasi_albert",
            "rmat",
            "watts_strogatz",
            "road_grid",
        ] {
            assert!(
                cases.iter().any(|c| c.repro.contains(family)),
                "no case for generator family `{family}`"
            );
        }
        assert!(
            cases.iter().filter(|c| c.metamorphic).count() >= 3,
            "metamorphic subset too thin"
        );
    }

    #[test]
    fn repro_strings_are_paste_able_generator_calls() {
        for case in generator_cases() {
            assert!(case.repro.starts_with("gen::"), "{}", case.repro);
            assert!(case.repro.ends_with(')'), "{}", case.repro);
        }
    }

    #[test]
    fn relabeling_is_a_permutation() {
        let edges = gen::erdos_renyi(50, 200, 1);
        let relabeled = relabel_edges(&edges, 99);
        assert_eq!(relabeled.len(), edges.len());
        let (g1, _) = clean_edges(&edges);
        let (g2, _) = clean_edges(&relabeled);
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(cpu_ref::node_iterator(&g1), cpu_ref::node_iterator(&g2));
    }

    #[test]
    fn dirtying_injects_all_three_noise_kinds() {
        let edges = gen::erdos_renyi(30, 90, 2);
        let dirty = dirty_edges(&edges);
        assert_eq!(dirty.len(), 2 * edges.len());
        let (_, report) = clean_edges(&dirty);
        assert!(report.removed_self_loops > 0);
        assert!(report.removed_duplicates > 0);
    }

    #[test]
    fn cleaning_idempotence_holds_on_the_corpus() {
        for case in generator_cases() {
            check_cleaning_idempotence(&case);
        }
    }
}
