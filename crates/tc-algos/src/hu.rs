//! Hu, Guan & Zou (2019) — "Triangle counting on GPU using fine-grained
//! task distribution".
//!
//! Vertex-centric, fine-grained (Section III-F / Figure 8 / Algorithm 1):
//! **one block per vertex**. Step 1 caches as much of the vertex's 1-hop
//! list as fits into shared memory; step 2 walks the concatenated 2-hop
//! stream with a fixed stride — each lane owns positions
//! `tid, tid + blockDim, ...` of the stream — and binary-searches every
//! 2-hop neighbour against the cached 1-hop list.
//!
//! The strided walk gives near-perfect warp efficiency and coalescing
//! (adjacent lanes touch adjacent stream members), but — as the paper's
//! profiling shows — Hu cannot flip table and keys like TriCore, so it
//! issues the *most* global loads of the corpus: every 2-hop member of
//! every vertex is a search key.

use gpu_sim::{Device, DeviceMem, KernelConfig, LaneCtx, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

const BLOCK_DIM: u32 = 256;
/// Words of shared memory per block used to cache the 1-hop list (16 KB,
/// the paper's "determining appropriate block and shared memory sizes").
const CACHE_WORDS: u32 = 4096;

/// Hu's algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Hu;

/// Read the `i`-th (0-based) out-neighbour of the current vertex, from
/// the shared cache when it was cached, from DRAM otherwise.
#[inline]
fn read_u_entry(lane: &mut LaneCtx, g: &DeviceGraph, base: u32, cached: u32, i: u32) -> u32 {
    if i < cached {
        lane.ld_shared(i as usize)
    } else {
        lane.ld_global(g.col_indices, (base + i) as usize)
    }
}

/// Tiered binary search of `key` in the current vertex's list of length
/// `n` (prefix `cached` in shared).
fn tiered_bsearch(
    lane: &mut LaneCtx,
    g: &DeviceGraph,
    base: u32,
    cached: u32,
    n: u32,
    key: u32,
) -> bool {
    let (mut lo, mut hi) = (0u32, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = read_u_entry(lane, g, base, cached, mid);
        lane.compute(1);
        match v.cmp(&key) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    false
}

impl TcAlgorithm for Hu {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Hu",
            reference: "Hu, Guan & Zou, ICDEW 2019",
            year: 2019,
            iterator: IteratorKind::Vertex,
            intersection: Intersection::BinSearch,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "hu.counter")?;
        let grid = g.owned_pivots().clamp(1, 4 * dev.config().num_sms);
        let cfg = KernelConfig::new(grid, BLOCK_DIM).with_shared_words(CACHE_WORDS);
        let (pivot_lo, pivot_hi) = (g.pivot_lo, g.pivot_hi);

        let stats = dev.launch(mem, cfg, |blk| {
            let bidx = blk.block_idx();
            let gdim = blk.grid_dim();
            let mut locals = vec![0u32; BLOCK_DIM as usize];
            let mut u = pivot_lo + bidx;
            while u < pivot_hi {
                // Step 1: cache the 1-hop neighbours of u.
                blk.phase(|lane| {
                    let base = lane.ld_global(g.row_offsets, u as usize);
                    let end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let n = end - base;
                    let cached = n.min(CACHE_WORDS);
                    let mut i = lane.tid();
                    while i < cached {
                        let w = lane.ld_global(g.col_indices, (base + i) as usize);
                        lane.st_shared(i as usize, w);
                        i += BLOCK_DIM;
                    }
                });
                // Step 2: Algorithm 1 — strided fine-grained search over
                // the 2-hop stream.
                blk.phase(|lane| {
                    let base = lane.ld_global(g.row_offsets, u as usize);
                    let end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let un = end - base;
                    let cached = un.min(CACHE_WORDS);
                    let mut tc = 0u32;
                    let mut u_point = 0u32; // index into N(u)
                    let mut v_offset = lane.tid();
                    while u_point < un {
                        let v = read_u_entry(lane, g, base, cached, u_point);
                        let mut v_point = lane.ld_global(g.row_offsets, v as usize);
                        let mut v_deg = lane.ld_global(g.row_offsets, v as usize + 1) - v_point;
                        // Current v exhausted for this lane's offset:
                        // move to the v that contains it.
                        while u_point < un && v_offset >= v_deg {
                            lane.compute(1);
                            v_offset -= v_deg;
                            u_point += 1;
                            if u_point < un {
                                let v2 = read_u_entry(lane, g, base, cached, u_point);
                                v_point = lane.ld_global(g.row_offsets, v2 as usize);
                                v_deg = lane.ld_global(g.row_offsets, v2 as usize + 1) - v_point;
                            }
                        }
                        if u_point < un {
                            let w = lane.ld_global(g.col_indices, (v_point + v_offset) as usize);
                            if tiered_bsearch(lane, g, base, cached, un, w) {
                                tc += 1;
                            }
                        }
                        lane.converge();
                        v_offset += BLOCK_DIM;
                    }
                    locals[lane.tid() as usize] += tc;
                });
                u += gdim;
            }
            blk.phase(|lane| {
                warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: vertex-iterator binary search (Hu's shared-memory
    /// cache is a device optimization with no host analogue).
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_binsearch(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &Hu,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&Hu);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&Hu, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Hu.meta();
        assert_eq!(m.year, 2019);
        assert_eq!(m.iterator, IteratorKind::Vertex);
        assert_eq!(m.intersection, Intersection::BinSearch);
    }
}
