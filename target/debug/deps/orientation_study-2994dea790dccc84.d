/root/repo/target/debug/deps/orientation_study-2994dea790dccc84.d: crates/tc-bench/src/bin/orientation_study.rs

/root/repo/target/debug/deps/orientation_study-2994dea790dccc84: crates/tc-bench/src/bin/orientation_study.rs

crates/tc-bench/src/bin/orientation_study.rs:
