//! The four list-intersection primitives of Section II-B (Merge, Binary
//! Search, Hash, BitMap) as plain CPU routines. Each returns the size of
//! the intersection of two strictly-ascending lists. The GPU kernels
//! re-implement these against the simulator; these copies are the oracle
//! the property tests compare against.

use crate::types::VertexId;

/// Two-pointer merge intersection (the Forward/Polak primitive).
pub fn intersect_merge(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Binary-search intersection: each element of the shorter list is looked
/// up in the longer one (the TriCore/Hu primitive).
pub fn intersect_binsearch(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (keys, table) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    keys.iter()
        .filter(|k| table.binary_search(k).is_ok())
        .count() as u64
}

/// Hash intersection with `buckets` chained buckets (the H-INDEX/TRUST
/// primitive). The shorter list builds the table.
pub fn intersect_hash(a: &[VertexId], b: &[VertexId], buckets: usize) -> u64 {
    let (build, probe) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let buckets = buckets.max(1);
    let mut table: Vec<Vec<VertexId>> = vec![Vec::new(); buckets];
    for &x in build {
        table[x as usize % buckets].push(x);
    }
    probe
        .iter()
        .filter(|&&x| table[x as usize % buckets].contains(&x))
        .count() as u64
}

/// Bitmap intersection (the Bisson primitive): mark one list in a bitmap
/// spanning the vertex-ID space, then test the other.
pub fn intersect_bitmap(a: &[VertexId], b: &[VertexId], id_space: u32) -> u64 {
    let words = (id_space as usize).div_ceil(32);
    let mut bits = vec![0u32; words];
    for &x in a {
        bits[x as usize / 32] |= 1 << (x % 32);
    }
    b.iter()
        .filter(|&&x| bits[x as usize / 32] >> (x % 32) & 1 == 1)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &[u32] = &[1, 3, 5, 7, 9];
    const B: &[u32] = &[2, 3, 4, 7, 10, 12];

    #[test]
    fn all_primitives_agree_on_example() {
        assert_eq!(intersect_merge(A, B), 2);
        assert_eq!(intersect_binsearch(A, B), 2);
        assert_eq!(intersect_hash(A, B, 4), 2);
        assert_eq!(intersect_bitmap(A, B, 13), 2);
    }

    #[test]
    fn empty_lists() {
        assert_eq!(intersect_merge(&[], B), 0);
        assert_eq!(intersect_binsearch(A, &[]), 0);
        assert_eq!(intersect_hash(&[], &[], 8), 0);
        assert_eq!(intersect_bitmap(&[], B, 13), 0);
    }

    #[test]
    fn identical_lists() {
        assert_eq!(intersect_merge(A, A), A.len() as u64);
        assert_eq!(intersect_binsearch(A, A), A.len() as u64);
        assert_eq!(intersect_hash(A, A, 2), A.len() as u64);
        assert_eq!(intersect_bitmap(A, A, 10), A.len() as u64);
    }

    #[test]
    fn single_bucket_hash_degenerates_to_scan() {
        assert_eq!(intersect_hash(A, B, 1), 2);
    }

    #[test]
    fn disjoint_lists() {
        let c: &[u32] = &[100, 200];
        assert_eq!(intersect_merge(A, c), 0);
        assert_eq!(intersect_binsearch(A, c), 0);
        assert_eq!(intersect_hash(A, c, 8), 0);
        assert_eq!(intersect_bitmap(A, c, 201), 0);
    }
}
