//! Registry of every algorithm under evaluation: the eight published
//! implementations (Table I), GroupTC, and the cover-edge counter.

use tc_algos::api::TcAlgorithm;
use tc_algos::coveredge::CoverEdge;
use tc_algos::published_algorithms;

use crate::grouptc::GroupTc;
use crate::grouptc_hybrid::GroupTcHybrid;

/// All ten counters: Table I order, then GroupTC (as in Figure 15),
/// then the cover-edge algorithm (PAPERS.md follow-on work).
pub fn all_algorithms() -> Vec<Box<dyn TcAlgorithm>> {
    let mut algos = published_algorithms();
    algos.push(Box::new(GroupTc::default()));
    algos.push(Box::new(CoverEdge));
    algos
}

/// The ten evaluated counters plus GroupTC-H, this reproduction's
/// implementation of the paper's Section VI future work.
pub fn extended_algorithms() -> Vec<Box<dyn TcAlgorithm>> {
    let mut algos = all_algorithms();
    algos.push(Box::new(GroupTcHybrid::default()));
    algos
}

/// Look an algorithm up by (case-insensitive) name.
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn TcAlgorithm>> {
    all_algorithms()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_algorithms_coveredge_last() {
        let algos = all_algorithms();
        assert_eq!(algos.len(), 10);
        assert_eq!(algos[algos.len() - 2].name(), "GroupTC");
        assert_eq!(algos.last().unwrap().name(), "CoverEdge");
    }

    #[test]
    fn extended_registry_appends_the_hybrid() {
        let algos = extended_algorithms();
        assert_eq!(algos.len(), 11);
        assert_eq!(algos.last().unwrap().name(), "GroupTC-H");
    }

    #[test]
    fn lookup() {
        assert!(algorithm_by_name("grouptc").is_some());
        assert!(algorithm_by_name("TRUST").is_some());
        assert!(algorithm_by_name("coveredge").is_some());
        assert!(algorithm_by_name("polak").is_some());
        assert!(algorithm_by_name("cuGraph").is_none());
    }
}
