/root/repo/target/debug/deps/tc_bench-8da2e039260038de.d: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-8da2e039260038de.rlib: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/libtc_bench-8da2e039260038de.rmeta: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
