use std::ops::AddAssign;

use crate::lint::LintReport;

/// nvprof-equivalent profiling counters, defined exactly as in the paper's
/// "Metrics" paragraph (Section IV):
///
/// * `global_load_requests` — total number of global-memory load
///   *requests* (one per warp load instruction that has at least one
///   active lane).
/// * `warp_execution_efficiency()` — ratio of average active threads per
///   issued warp instruction to the warp size.
/// * `gld_transactions_per_request()` — average number of 32-byte-sector
///   transactions needed to serve one global load request (1 = perfectly
///   coalesced for 4-byte accesses within a sector-aligned window, up to
///   32 for fully scattered lanes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProfileCounters {
    pub global_load_requests: u64,
    /// L1TEX wavefronts: distinct 32-byte sectors addressed per load
    /// request, summed — counted whether or not the sector hits cache,
    /// exactly like nvprof's `gld_transactions`.
    pub gld_transactions: u64,
    /// Subset of load sectors that actually went to DRAM (cache misses);
    /// this is what the bandwidth floor consumes.
    pub dram_load_sectors: u64,
    pub global_store_requests: u64,
    pub gst_transactions: u64,
    pub global_atomic_requests: u64,
    /// Distinct 32-byte sectors touched by global atomics, per warp slot,
    /// summed. Atomics resolve in L2 but still move their sectors over
    /// DRAM, so this feeds the launch-level bandwidth floor alongside
    /// `dram_load_sectors` and `gst_transactions`. (Counting *requests*
    /// there, as before, undercounted scattered atomics 32x and
    /// overcounted fully-colliding ones not at all.)
    pub dram_atomic_sectors: u64,
    pub shared_load_requests: u64,
    pub shared_store_requests: u64,
    pub shared_atomic_requests: u64,
    pub compute_slots: u64,
    /// Total warp instruction slots issued (all kinds).
    pub issued_slots: u64,
    /// Sum over issued slots of the number of active lanes.
    pub active_thread_slots: u64,
    /// Conflict checks performed by the data-race detector (zero unless
    /// the launch enabled race detection); a nonzero value on a clean
    /// run is the evidence the kernel actually ran under the detector.
    pub race_checks: u64,
    /// Races the detector found. Normally reported through
    /// [`crate::SimError::DataRace`] instead (the first race fails the
    /// launch), so this stays zero on successful launches.
    pub races_detected: u64,
    /// Accesses vetted by SimSan (see `gpu_sim::sanitize`); zero unless
    /// the launch enabled the sanitizer — a nonzero value on a clean run
    /// is the evidence the kernel actually ran sanitized.
    pub sanitizer_checks: u64,
    /// Sanitizer reports raised. Like `races_detected`, the first report
    /// fails the launch as [`crate::SimError::Sanitizer`], so this stays
    /// zero on successful launches.
    pub sanitizer_reports: u64,
    /// Observations made by SimLint (see `gpu_sim::lint`): barrier
    /// arrivals vetted plus replay slots aggregated for the performance
    /// rules. Zero unless the launch enabled lints — like `race_checks`
    /// and `sanitizer_checks`, a nonzero value on a clean run is the
    /// evidence the kernel actually ran under the linter.
    pub lint_checks: u64,
}

impl ProfileCounters {
    /// Average active threads per warp instruction divided by the warp
    /// size; `1.0` means no divergence-induced stalls. Returns 1.0 for an
    /// empty launch so that ratios stay well-defined.
    pub fn warp_execution_efficiency(&self) -> f64 {
        if self.issued_slots == 0 {
            return 1.0;
        }
        self.active_thread_slots as f64 / (self.issued_slots as f64 * crate::WARP_SIZE as f64)
    }

    /// Average 32-byte transactions per global load request; lower is
    /// better. Returns 0.0 when no loads were issued.
    pub fn gld_transactions_per_request(&self) -> f64 {
        if self.global_load_requests == 0 {
            return 0.0;
        }
        self.gld_transactions as f64 / self.global_load_requests as f64
    }

    /// Average transactions per global store request.
    pub fn gst_transactions_per_request(&self) -> f64 {
        if self.global_store_requests == 0 {
            return 0.0;
        }
        self.gst_transactions as f64 / self.global_store_requests as f64
    }

    /// Total global memory requests of any flavour — a proxy for "total
    /// amount of work" when comparing algorithms.
    pub fn total_global_requests(&self) -> u64 {
        self.global_load_requests + self.global_store_requests + self.global_atomic_requests
    }
}

impl AddAssign for ProfileCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.global_load_requests += rhs.global_load_requests;
        self.gld_transactions += rhs.gld_transactions;
        self.dram_load_sectors += rhs.dram_load_sectors;
        self.global_store_requests += rhs.global_store_requests;
        self.gst_transactions += rhs.gst_transactions;
        self.global_atomic_requests += rhs.global_atomic_requests;
        self.dram_atomic_sectors += rhs.dram_atomic_sectors;
        self.shared_load_requests += rhs.shared_load_requests;
        self.shared_store_requests += rhs.shared_store_requests;
        self.shared_atomic_requests += rhs.shared_atomic_requests;
        self.compute_slots += rhs.compute_slots;
        self.issued_slots += rhs.issued_slots;
        self.active_thread_slots += rhs.active_thread_slots;
        self.race_checks += rhs.race_checks;
        self.races_detected += rhs.races_detected;
        self.sanitizer_checks += rhs.sanitizer_checks;
        self.sanitizer_reports += rhs.sanitizer_reports;
        self.lint_checks += rhs.lint_checks;
    }
}

/// Result of one kernel launch: the modelled kernel time plus the merged
/// profiling counters of every warp that ran.
///
/// `PartialEq`/`Eq` compare every field (counters are integers and the
/// lint report is structurally ordered), so differential tests can pin
/// two execution engines to byte-identical outcomes with a single
/// assert.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LaunchStats {
    /// Modelled kernel time in device cycles (wave-scheduled across SMs).
    pub kernel_cycles: u64,
    /// Sum of per-block cycle counts (total work, ignoring parallelism).
    pub total_block_cycles: u64,
    /// Number of blocks that executed.
    pub blocks: u64,
    pub counters: ProfileCounters,
    /// SimLint's advisory findings: `Some` (possibly empty) when the
    /// launch ran with lints enabled, `None` otherwise. Lint-only — the
    /// cycle model and every other field are byte-identical with lints
    /// on or off.
    pub lint: Option<LintReport>,
}

impl AddAssign for LaunchStats {
    fn add_assign(&mut self, rhs: Self) {
        // Sequential launches: kernel times add up.
        self.kernel_cycles += rhs.kernel_cycles;
        self.total_block_cycles += rhs.total_block_cycles;
        self.blocks += rhs.blocks;
        self.counters += rhs.counters;
        // Findings accumulate across an algorithm's launches; a mix of
        // linted and unlinted launches keeps whichever report exists.
        match (&mut self.lint, rhs.lint) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            (_, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_one_when_empty() {
        let c = ProfileCounters::default();
        assert_eq!(c.warp_execution_efficiency(), 1.0);
        assert_eq!(c.gld_transactions_per_request(), 0.0);
    }

    #[test]
    fn efficiency_ratio() {
        let c = ProfileCounters {
            issued_slots: 10,
            active_thread_slots: 160,
            ..Default::default()
        };
        assert!((c.warp_execution_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transactions_per_request() {
        let c = ProfileCounters {
            global_load_requests: 4,
            gld_transactions: 10,
            ..Default::default()
        };
        assert!((c.gld_transactions_per_request() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn add_assign_merges_all_fields() {
        let mut a = ProfileCounters {
            global_load_requests: 1,
            gld_transactions: 2,
            dram_load_sectors: 1,
            global_store_requests: 3,
            gst_transactions: 4,
            global_atomic_requests: 5,
            dram_atomic_sectors: 16,
            shared_load_requests: 6,
            shared_store_requests: 7,
            shared_atomic_requests: 8,
            compute_slots: 9,
            issued_slots: 10,
            active_thread_slots: 11,
            race_checks: 12,
            races_detected: 13,
            sanitizer_checks: 14,
            sanitizer_reports: 15,
            lint_checks: 16,
        };
        a += a;
        assert_eq!(a.global_load_requests, 2);
        assert_eq!(a.dram_atomic_sectors, 32);
        assert_eq!(a.active_thread_slots, 22);
        assert_eq!(a.race_checks, 24);
        assert_eq!(a.races_detected, 26);
        assert_eq!(a.sanitizer_checks, 28);
        assert_eq!(a.sanitizer_reports, 30);
        assert_eq!(a.lint_checks, 32);
        assert_eq!(a.total_global_requests(), 2 + 6 + 10);
    }

    #[test]
    fn launch_stats_accumulate() {
        let mut s = LaunchStats {
            kernel_cycles: 100,
            total_block_cycles: 200,
            blocks: 2,
            counters: ProfileCounters::default(),
            lint: None,
        };
        s += LaunchStats {
            kernel_cycles: 50,
            total_block_cycles: 60,
            blocks: 1,
            counters: ProfileCounters::default(),
            lint: None,
        };
        assert_eq!(s.kernel_cycles, 150);
        assert_eq!(s.total_block_cycles, 260);
        assert_eq!(s.blocks, 3);
        assert_eq!(s.lint, None);
    }

    #[test]
    fn launch_stats_accumulate_lint_reports() {
        use crate::lint::{Diag, LintRule};
        let diag = Diag {
            rule: LintRule::LowOccupancy,
            block: None,
            lanes: None,
            pc_hint: "phase 1".to_string(),
            detail: "d".to_string(),
        };
        let linted = |diags: Vec<Diag>| LaunchStats {
            lint: Some(LintReport { diags }),
            ..Default::default()
        };
        // Linted + unlinted keeps the report; linted + linted merges
        // and dedups repeated findings.
        let mut s = LaunchStats::default();
        s += linted(vec![diag.clone()]);
        assert_eq!(s.lint.as_ref().unwrap().diags.len(), 1);
        s += LaunchStats::default();
        s += linted(vec![diag.clone()]);
        assert_eq!(s.lint.as_ref().unwrap().diags, vec![diag]);
    }

    // The divide-by-zero / rounding semantics below feed SimLint's
    // thresholds, so they are pinned explicitly for the degenerate
    // launches where they used to be only implicitly defined.

    #[test]
    fn efficiency_of_a_busy_launch_with_no_active_lanes_is_zero() {
        let c = ProfileCounters {
            issued_slots: 7,
            active_thread_slots: 0,
            ..Default::default()
        };
        assert_eq!(c.warp_execution_efficiency(), 0.0);
    }

    #[test]
    fn efficiency_is_exact_at_full_occupancy_and_never_nan() {
        let c = ProfileCounters {
            issued_slots: 1_000_000,
            active_thread_slots: 32_000_000,
            ..Default::default()
        };
        assert_eq!(c.warp_execution_efficiency(), 1.0);
        // A single fully-active slot divides exactly (no rounding): 32/32.
        let one = ProfileCounters {
            issued_slots: 1,
            active_thread_slots: 32,
            ..Default::default()
        };
        assert_eq!(one.warp_execution_efficiency(), 1.0);
        assert!(!ProfileCounters::default()
            .warp_execution_efficiency()
            .is_nan());
    }

    #[test]
    fn transactions_per_request_degenerate_cases() {
        // No requests at all — even with stray transaction counts the
        // ratio is a defined 0.0, never inf/NaN.
        let c = ProfileCounters {
            gld_transactions: 5,
            gst_transactions: 5,
            ..Default::default()
        };
        assert_eq!(c.gld_transactions_per_request(), 0.0);
        assert_eq!(c.gst_transactions_per_request(), 0.0);
        // Requests without transactions: exactly 0.0.
        let c = ProfileCounters {
            global_load_requests: 3,
            global_store_requests: 3,
            ..Default::default()
        };
        assert_eq!(c.gld_transactions_per_request(), 0.0);
        assert_eq!(c.gst_transactions_per_request(), 0.0);
    }

    #[test]
    fn transactions_per_request_is_exact_for_sector_ratios() {
        // Every ratio the replay can produce is a sum of integers
        // divided by an integer; the common ones must round-trip
        // exactly through f64 (32/1, 1/1, 4/32...).
        let c = ProfileCounters {
            global_load_requests: 1,
            gld_transactions: 32,
            global_store_requests: 32,
            gst_transactions: 4,
            ..Default::default()
        };
        assert_eq!(c.gld_transactions_per_request(), 32.0);
        assert_eq!(c.gst_transactions_per_request(), 0.125);
    }

    #[test]
    fn ratios_survive_large_counter_magnitudes() {
        // A billion-slot sweep: u64 -> f64 conversion stays monotone and
        // finite well past any realistic launch.
        let c = ProfileCounters {
            issued_slots: 1 << 40,
            active_thread_slots: (1 << 40) * 8,
            global_load_requests: 1 << 40,
            gld_transactions: (1 << 40) * 3,
            ..Default::default()
        };
        assert_eq!(c.warp_execution_efficiency(), 0.25);
        assert_eq!(c.gld_transactions_per_request(), 3.0);
    }
}
