//! Profiling utility: one-line counter digest per algorithm for a
//! single dataset — handy when calibrating the cost model.
use gpu_sim::{Device, DeviceMem};
use graph_data::{orient, DatasetSpec};
use tc_algos::device_graph::DeviceGraph;
use tc_core::framework::registry::all_algorithms;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Com-Lj".into());
    // Optional second arg: comma-separated algorithm filter.
    let filter: Option<Vec<String>> = std::env::args()
        .nth(2)
        .map(|s| s.split(',').map(|a| a.to_lowercase()).collect());
    let dev = Device::v100();
    let g = DatasetSpec::by_name(&name).unwrap().build();
    for algo in all_algorithms() {
        if let Some(f) = &filter {
            if !f.contains(&algo.name().to_lowercase()) {
                continue;
            }
        }
        let dag = orient(&g, algo.preferred_orientation());
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        match algo.count(&dev, &mut mem, &dg) {
            Ok(out) => {
                let c = out.stats.counters;
                let sectors = c.dram_load_sectors + c.gst_transactions + c.global_atomic_requests;
                println!(
                    "{:<9} cyc={:>9} blkcyc={:>11} bw_floor={:>9} reqs={:>9} tx={:>9} dram={:>9} eff={:>5.1}% tpr={:>5.2} atom={:>8} sh={:>9} slots={:>10}",
                    algo.name(), out.stats.kernel_cycles, out.stats.total_block_cycles,
                    sectors / 20, c.global_load_requests, c.gld_transactions,
                    c.dram_load_sectors,
                    c.warp_execution_efficiency() * 100.0, c.gld_transactions_per_request(),
                    c.global_atomic_requests,
                    c.shared_load_requests + c.shared_store_requests + c.shared_atomic_requests,
                    c.issued_slots
                );
            }
            Err(e) => println!("{:<9} FAILED: {e}", algo.name()),
        }
    }
}
