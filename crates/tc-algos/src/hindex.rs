//! H-INDEX (Pandey et al., HPEC 2019) — "Hash-indexing for parallel
//! triangle counting on GPUs".
//!
//! Edge-centric, fine-grained (Section III-G / Figure 9): **one warp per
//! edge** (the paper's evaluation only uses the warp configuration — the
//! block one produced incorrect results). Per edge, a 32-bucket hash
//! table is built from the *shorter* neighbour list; the lanes then
//! stride the longer list and probe. The table is stored **row-major**
//! ("row-order"): the i-th element of all buckets is contiguous, so
//! lanes probing different buckets at the same row coalesce. The first
//! [`SHARED_ROWS`] rows live in shared memory; deeper rows spill to a
//! global arena. A bucket deeper than [`MAX_ROWS`] is a hard failure —
//! the fixed-size table is exactly what breaks H-INDEX on the large
//! high-degree datasets (the paper's red crosses / "too many hash
//! collisions").

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

const BLOCK_DIM: u32 = 32;
const WARPS_PER_BLOCK: u32 = BLOCK_DIM / 32;
const BUCKETS: u32 = 32;
/// Hash-table rows kept in shared memory.
const SHARED_ROWS: u32 = 4;
/// Total row capacity (shared + global arena); beyond this the
/// implementation aborts, like the original's fixed-size table.
const MAX_ROWS: u32 = 64;

/// The H-INDEX algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct HIndex;

impl TcAlgorithm for HIndex {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "H-INDEX",
            reference: "Pandey et al., HPEC 2019",
            year: 2019,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Hash,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "hindex.counter")?;
        let grid = (24 * dev.config().num_sms).min(g.owned_edges().max(1));
        let warps_total = grid * WARPS_PER_BLOCK;
        let rounds = g.owned_edges().div_ceil(warps_total);
        // Per-warp shared: len[32] + SHARED_ROWS rows of 32 (row-major).
        let warp_shared_words = BUCKETS * (1 + SHARED_ROWS);
        let cfg = KernelConfig::new(grid, BLOCK_DIM)
            .with_shared_words(WARPS_PER_BLOCK * warp_shared_words);
        // Global spill arena: (MAX_ROWS - SHARED_ROWS) rows x 32 buckets
        // per concurrent warp. This is the big fixed allocation that,
        // together with deep buckets, makes H-INDEX fragile at scale.
        let arena_rows = MAX_ROWS - SHARED_ROWS;
        let arena = mem.alloc_zeroed(
            (warps_total * BUCKETS * arena_rows) as usize,
            "hindex.spill_arena",
        )?;
        let (edge_lo, edge_hi) = (g.edge_lo, g.edge_hi);

        let stats = dev.launch(mem, cfg, |blk| {
            let bidx = blk.block_idx();
            let mut locals = vec![0u32; BLOCK_DIM as usize];
            for round in 0..rounds {
                // Reset bucket lengths (lane l clears len[l]); a separate
                // phase so no lane's insertions race with the reset.
                blk.phase(|lane| {
                    let warp_base = (lane.warp_id() * warp_shared_words) as usize;
                    lane.st_shared(warp_base + lane.lane_id() as usize, 0);
                });
                // Build: lanes stride the shorter list and insert.
                blk.phase(|lane| {
                    let warp_global = bidx * WARPS_PER_BLOCK + lane.warp_id();
                    let e = edge_lo + warp_global + round * warps_total;
                    if e >= edge_hi {
                        return;
                    }
                    let warp_base = (lane.warp_id() * warp_shared_words) as usize;
                    let (b_base, bn, _, _) = shorter_longer(lane, g, e as usize);
                    let mut i = lane.lane_id();
                    while i < bn {
                        let x = lane.ld_global(g.col_indices, (b_base + i) as usize);
                        let bucket = x % BUCKETS;
                        lane.compute(1);
                        let row = lane.atomic_add_shared(warp_base + bucket as usize, 1);
                        if row < SHARED_ROWS {
                            // Row-major shared slot.
                            let slot = warp_base + (BUCKETS + row * BUCKETS + bucket) as usize;
                            lane.st_shared(slot, x);
                        } else if row < MAX_ROWS {
                            let slot = (warp_global * BUCKETS * arena_rows
                                + (row - SHARED_ROWS) * BUCKETS
                                + bucket) as usize;
                            lane.st_global(arena, slot, x);
                        } else {
                            lane.fault(format!(
                                "H-INDEX hash bucket overflow: bucket depth > {MAX_ROWS}"
                            ));
                            return;
                        }
                        lane.converge();
                        i += 32;
                    }
                });
                // Probe: lanes stride the longer list.
                blk.phase(|lane| {
                    let warp_global = bidx * WARPS_PER_BLOCK + lane.warp_id();
                    let e = edge_lo + warp_global + round * warps_total;
                    if e >= edge_hi {
                        return;
                    }
                    let warp_base = (lane.warp_id() * warp_shared_words) as usize;
                    let (_, _, q_base, qn) = shorter_longer(lane, g, e as usize);
                    let mut cnt = 0u32;
                    let mut i = lane.lane_id();
                    while i < qn {
                        let key = lane.ld_global(g.col_indices, (q_base + i) as usize);
                        let bucket = key % BUCKETS;
                        lane.compute(1);
                        let len = lane.ld_shared(warp_base + bucket as usize);
                        for row in 0..len.min(MAX_ROWS) {
                            let x = if row < SHARED_ROWS {
                                lane.ld_shared(
                                    warp_base + (BUCKETS + row * BUCKETS + bucket) as usize,
                                )
                            } else {
                                lane.ld_global(
                                    arena,
                                    (warp_global * BUCKETS * arena_rows
                                        + (row - SHARED_ROWS) * BUCKETS
                                        + bucket) as usize,
                                )
                            };
                            lane.compute(1);
                            if x == key {
                                cnt += 1;
                                break;
                            }
                        }
                        lane.converge();
                        i += 32;
                    }
                    locals[lane.tid() as usize] += cnt;
                });
            }
            blk.phase(|lane| {
                warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        mem.free(arena)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: 32-bucket chained hash per edge — the same bucket
    /// count as the warp-mode shared-memory table.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_hash(dag, BUCKETS as usize)
    }
}

/// Edge list bounds with the **shorter** list first (build side) and the
/// longer second (query side) — H-INDEX's collision-reduction choice.
fn shorter_longer(lane: &mut gpu_sim::LaneCtx, g: &DeviceGraph, e: usize) -> (u32, u32, u32, u32) {
    let u = lane.ld_global(g.edge_src, e);
    let v = lane.ld_global(g.edge_dst, e);
    let u_base = lane.ld_global(g.row_offsets, u as usize);
    let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
    let v_base = lane.ld_global(g.row_offsets, v as usize);
    let v_end = lane.ld_global(g.row_offsets, v as usize + 1);
    let (un, vn) = (u_end - u_base, v_end - v_base);
    lane.compute(1);
    if un <= vn {
        (u_base, un, v_base, vn)
    } else {
        (v_base, vn, u_base, un)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &HIndex,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&HIndex);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&HIndex, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn overflows_on_pathological_bucket_depth() {
        // Two hubs joined by an edge, both adjacent to 2399 common
        // vertices: the edge (0, 1)'s *shorter* out-list has ~75 entries
        // per bucket, past the table's MAX_ROWS capacity.
        use graph_data::{clean_edges, orient, EdgeList};
        let mut edges = vec![(0u32, 1u32)];
        for k in 2..2400u32 {
            edges.push((0, k));
            edges.push((1, k));
        }
        let (g, _) = clean_edges(&EdgeList::new(edges));
        let dag = orient(&g, Orientation::ById);
        let dev = gpu_sim::Device::v100();
        let mut mem = gpu_sim::DeviceMem::new(&dev);
        let dg = crate::device_graph::DeviceGraph::upload(&dag, &mut mem).unwrap();
        let res = HIndex.count(&dev, &mut mem, &dg);
        assert!(
            matches!(res, Err(SimError::KernelFault(_))),
            "expected bucket overflow, got {res:?}"
        );
    }

    #[test]
    fn metadata_matches_table1() {
        let m = HIndex.meta();
        assert_eq!(m.year, 2019);
        assert_eq!(m.intersection, Intersection::Hash);
    }
}
