//! SNAP text edge-list format: one `src dst` pair per line (whitespace or
//! tab separated), `#`-prefixed comment lines, as distributed at
//! <https://snap.stanford.edu/data/>.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::types::EdgeList;

/// Parse SNAP text. Malformed lines produce `InvalidData` errors with the
/// line number; blank lines and comments are skipped.
pub fn parse_snap_text<R: Read>(reader: R) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| malformed(line_no, line))?
                .parse::<u32>()
                .map_err(|_| malformed(line_no, line))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        // Extra columns (weights, timestamps) are tolerated and ignored,
        // like the paper's transformation tools do for temporal graphs
        // such as sx-stackoverflow.
        edges.push((u, v));
    }
    Ok(EdgeList::new(edges))
}

fn malformed(line_no: usize, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed SNAP line {line_no}: {line:?}"),
    )
}

/// Write SNAP text with a provenance header.
pub fn write_snap_text<W: Write>(writer: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# Directed edge list written by tc-compare")?;
    writeln!(w, "# Edges: {}", edges.len())?;
    for &(u, v) in &edges.edges {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_tabs() {
        let text = "# FromNodeId\tToNodeId\n\n0\t1\n2 3\n  4   5  \n";
        let e = parse_snap_text(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn tolerates_extra_columns() {
        let text = "0 1 1350000000\n1 2 1360000000\n";
        let e = parse_snap_text(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_snap_text("0 x\n".as_bytes()).is_err());
        assert!(parse_snap_text("42\n".as_bytes()).is_err());
        assert!(parse_snap_text("-1 3\n".as_bytes()).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_snap_text("0 1\nbad line\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip() {
        let e = EdgeList::new(vec![(3, 1), (0, 0), (7, 9)]);
        let mut out = Vec::new();
        write_snap_text(&mut out, &e).unwrap();
        assert_eq!(parse_snap_text(&out[..]).unwrap(), e);
    }

    #[test]
    fn empty_input_is_empty_list() {
        assert!(parse_snap_text("".as_bytes()).unwrap().is_empty());
        assert!(parse_snap_text("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
