//! Automated shape checks: the paper's qualitative findings, expressed
//! as predicates over a run matrix. `all_figures` prints the verdicts
//! and EXPERIMENTS.md records them; reproductions are judged on these
//! *shapes*, not on absolute numbers.

use graph_data::{DatasetSpec, SizeClass};

use crate::framework::report::{extract, MatrixView};

/// One qualitative claim and its verdict on a given matrix.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    pub claim: &'static str,
    pub holds: bool,
    pub detail: String,
}

/// Registry entries that post-date the paper. The paper's claims
/// describe *its* algorithm set, so these never participate in a claim
/// — neither as "published" rivals nor as dataset winners.
fn in_paper(algo: &str) -> bool {
    !matches!(algo, "CoverEdge" | "GroupTC-H")
}

/// The paper's eight published implementations (its own GroupTC and
/// everything post-paper excluded) — the comparison set for claims
/// about "the fastest published implementation".
fn published(algo: &str) -> bool {
    in_paper(algo) && algo != "GroupTC"
}

/// Evaluate the paper's headline claims against a sweep over `datasets`
/// (any subset of Table II; claims about absent size classes are
/// skipped).
pub fn check_claims(view: &MatrixView, datasets: &[DatasetSpec]) -> Vec<ClaimResult> {
    let mut results = Vec::new();
    let time = |algo: &str, ds: &str| view.value(algo, ds, extract::time_ms);

    let in_class = |class: SizeClass| -> Vec<&DatasetSpec> {
        datasets.iter().filter(|d| d.size_class == class).collect()
    };
    let winner = |ds: &str| -> Option<String> {
        view.algorithms
            .iter()
            .filter(|a| in_paper(a))
            .filter_map(|a| time(a, ds).map(|t| (a.clone(), t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(a, _)| a)
    };

    // Claim 1: "the Polak algorithm ... is the winner in processing all
    // small-to-medium datasets" — checked as: Polak is the fastest
    // *published* implementation (GroupTC is the paper's own) on every
    // small dataset.
    {
        let small = in_class(SizeClass::Small);
        if !small.is_empty() {
            let mut losses = Vec::new();
            for d in &small {
                let w = view
                    .algorithms
                    .iter()
                    .filter(|a| published(a))
                    .filter_map(|a| time(a, d.name).map(|t| (a.clone(), t)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(a, _)| a);
                if w.as_deref() != Some("Polak") {
                    losses.push(format!("{} won by {}", d.name, w.unwrap_or_default()));
                }
            }
            results.push(ClaimResult {
                claim: "Polak is the fastest published implementation on every small dataset",
                holds: losses.is_empty(),
                detail: if losses.is_empty() {
                    format!("holds on all {} small datasets", small.len())
                } else {
                    losses.join("; ")
                },
            });
        }
    }

    // Claim 2: TRUST beats Polak's small-dataset rivals at scale — "TRUST
    // shows the best performance in all large datasets": checked as
    // TRUST being within the top three on every medium+large dataset.
    {
        let big: Vec<&DatasetSpec> = datasets
            .iter()
            .filter(|d| d.size_class != SizeClass::Small)
            .collect();
        if !big.is_empty() {
            let mut misses = Vec::new();
            for d in &big {
                let mut ranked: Vec<(String, f64)> = view
                    .algorithms
                    .iter()
                    .filter(|a| published(a))
                    .filter_map(|a| time(a, d.name).map(|t| (a.clone(), t)))
                    .collect();
                ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
                let rank = ranked.iter().position(|(a, _)| a == "TRUST");
                match rank {
                    Some(r) if r < 3 => {}
                    Some(r) => misses.push(format!("{}: rank {}", d.name, r + 1)),
                    None => misses.push(format!("{}: failed", d.name)),
                }
            }
            results.push(ClaimResult {
                claim: "TRUST is a top-3 published implementation on every medium/large dataset",
                holds: misses.is_empty(),
                detail: if misses.is_empty() {
                    format!("holds on all {} medium/large datasets", big.len())
                } else {
                    misses.join("; ")
                },
            });
        }
    }

    // Claim 3: Bisson and Green sit at the bottom: each is in the slowest
    // three published implementations on a majority of datasets.
    for slow in ["Bisson", "Green"] {
        let mut bottom = 0usize;
        let mut counted = 0usize;
        for d in datasets {
            let mut ranked: Vec<(String, f64)> = view
                .algorithms
                .iter()
                .filter(|a| published(a))
                .filter_map(|a| time(a, d.name).map(|t| (a.clone(), t)))
                .collect();
            if ranked.is_empty() {
                continue;
            }
            counted += 1;
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1)); // slowest first
            if ranked.iter().take(3).any(|(a, _)| a == slow) {
                bottom += 1;
            }
        }
        results.push(ClaimResult {
            claim: if slow == "Bisson" {
                "Bisson exhibits bottom-3 performance on most datasets"
            } else {
                "Green exhibits bottom-3 performance on most datasets"
            },
            holds: counted > 0 && bottom * 2 > counted,
            detail: format!("bottom-3 on {bottom}/{counted} datasets"),
        });
    }

    // Claim 4: GroupTC outperforms Polak on most datasets (paper:
    // 17 of 19, losing only the two smallest).
    {
        let mut wins = 0usize;
        let mut counted = 0usize;
        let mut losses = Vec::new();
        for d in datasets {
            if let (Some(p), Some(g)) = (time("Polak", d.name), time("GroupTC", d.name)) {
                counted += 1;
                if g <= p {
                    wins += 1;
                } else {
                    losses.push(format!("{} ({:.2}x)", d.name, p / g));
                }
            }
        }
        results.push(ClaimResult {
            claim: "GroupTC outperforms Polak on most datasets",
            holds: counted > 0 && wins * 2 > counted,
            detail: format!("wins {wins}/{counted}; losses: {}", losses.join(", ")),
        });
    }

    // Claim 5: GroupTC beats TRUST on small/medium and stays comparable
    // (>= 0.8x) on large.
    {
        let mut bad = Vec::new();
        let mut counted = 0usize;
        for d in datasets {
            if let (Some(t), Some(g)) = (time("TRUST", d.name), time("GroupTC", d.name)) {
                counted += 1;
                let speedup = t / g;
                let ok = match d.size_class {
                    SizeClass::Small | SizeClass::Medium => speedup >= 1.0,
                    SizeClass::Large => speedup >= 0.8,
                };
                if !ok {
                    bad.push(format!("{} ({speedup:.2}x)", d.name));
                }
            }
        }
        results.push(ClaimResult {
            claim: "GroupTC beats TRUST on small/medium and stays comparable on large",
            holds: counted > 0 && bad.is_empty(),
            detail: if bad.is_empty() {
                format!("holds on all {counted} datasets")
            } else {
                format!("violations: {}", bad.join(", "))
            },
        });
    }

    // Claim 6: the winner of every dataset is Polak, TRUST or GroupTC
    // (the paper's recommendation set).
    {
        let mut odd = Vec::new();
        for d in datasets {
            if let Some(w) = winner(d.name) {
                if !matches!(w.as_str(), "Polak" | "TRUST" | "GroupTC" | "GroupTC-H") {
                    odd.push(format!("{}: {w}", d.name));
                }
            }
        }
        results.push(ClaimResult {
            claim: "every dataset is won by Polak, TRUST or GroupTC",
            holds: odd.is_empty(),
            detail: if odd.is_empty() {
                "holds".to_string()
            } else {
                odd.join("; ")
            },
        });
    }

    results
}

/// Render verdicts as a text block.
pub fn render_claims(results: &[ClaimResult]) -> String {
    let mut out = String::from("PAPER-CLAIM SHAPE CHECKS\n");
    for r in results {
        out.push_str(&format!(
            "  [{}] {} — {}\n",
            if r.holds { "ok" } else { "DEVIATES" },
            r.claim,
            r.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::runner::{RunOutcome, RunRecord};
    use gpu_sim::ProfileCounters;
    use graph_data::datasets::GenSpec;

    fn spec(name: &'static str, class: SizeClass) -> DatasetSpec {
        DatasetSpec {
            name,
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: class,
            gen: GenSpec::Er {
                n: 10,
                raw_edges: 10,
            },
            seed: 0,
        }
    }

    fn rec(algo: &str, ds: &'static str, cycles: u64) -> RunRecord {
        RunRecord {
            algorithm: algo.into(),
            dataset: ds,
            backend: "sim",
            outcome: RunOutcome::Ok {
                triangles: 0,
                kernel_cycles: cycles,
                counters: ProfileCounters::default(),
                verified: true,
            },
            partition: None,
            wall: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn claims_hold_on_a_paper_shaped_matrix() {
        // Synthesize a matrix that matches the paper's story.
        let datasets = [spec("s1", SizeClass::Small), spec("m1", SizeClass::Medium)];
        let records = vec![
            rec("Green", "s1", 100),
            rec("Polak", "s1", 10),
            rec("Bisson", "s1", 120),
            rec("TRUST", "s1", 30),
            rec("GroupTC", "s1", 12),
            rec("Green", "m1", 1000),
            rec("Polak", "m1", 300),
            rec("Bisson", "m1", 1200),
            rec("TRUST", "m1", 100),
            rec("GroupTC", "m1", 90),
        ];
        let view = MatrixView::new(&records);
        let claims = check_claims(&view, &datasets);
        // GroupTC loses s1? It wins m1 and loses s1 -> 1/2 wins is not a
        // majority, so claim 4 deviates; the others hold.
        let c1 = claims
            .iter()
            .find(|c| c.claim.contains("Polak is the fastest"))
            .unwrap();
        assert!(c1.holds, "{:?}", c1);
        let c2 = claims
            .iter()
            .find(|c| c.claim.contains("TRUST is a top-3"))
            .unwrap();
        assert!(c2.holds, "{:?}", c2);
        let c6 = claims
            .iter()
            .find(|c| c.claim.contains("every dataset is won"))
            .unwrap();
        assert!(c6.holds, "{:?}", c6);
    }

    #[test]
    fn post_paper_algorithms_do_not_disturb_the_paper_claims() {
        // CoverEdge post-dates the paper: even when it wins a dataset
        // outright, claim 1 (fastest published) and claim 6 (winner in
        // the recommendation set) are judged on the paper's set only.
        let datasets = [spec("s1", SizeClass::Small)];
        let records = vec![
            rec("CoverEdge", "s1", 1),
            rec("Polak", "s1", 10),
            rec("TRUST", "s1", 30),
            rec("GroupTC", "s1", 12),
        ];
        let view = MatrixView::new(&records);
        let claims = check_claims(&view, &datasets);
        let c1 = claims
            .iter()
            .find(|c| c.claim.contains("Polak is the fastest"))
            .unwrap();
        assert!(c1.holds, "{c1:?}");
        let c6 = claims
            .iter()
            .find(|c| c.claim.contains("every dataset is won"))
            .unwrap();
        assert!(c6.holds, "{c6:?}");
    }

    #[test]
    fn deviations_are_reported() {
        let datasets = [spec("s1", SizeClass::Small)];
        let records = vec![
            rec("Polak", "s1", 100),
            rec("TRUST", "s1", 10),
            rec("GroupTC", "s1", 500),
        ];
        let view = MatrixView::new(&records);
        let claims = check_claims(&view, &datasets);
        let c1 = claims
            .iter()
            .find(|c| c.claim.contains("Polak is the fastest"))
            .unwrap();
        assert!(!c1.holds);
        assert!(c1.detail.contains("TRUST"));
        let text = render_claims(&claims);
        assert!(text.contains("DEVIATES"));
    }

    #[test]
    fn failed_cells_are_skipped_not_crashed() {
        let datasets = [spec("s1", SizeClass::Small)];
        let records = vec![
            rec("Polak", "s1", 10),
            RunRecord {
                algorithm: "H-INDEX".into(),
                dataset: "s1",
                backend: "sim",
                outcome: RunOutcome::Failed(gpu_sim::SimError::KernelFault("x".into())),
                partition: None,
                wall: std::time::Duration::ZERO,
            },
            rec("GroupTC", "s1", 9),
            rec("TRUST", "s1", 30),
        ];
        let view = MatrixView::new(&records);
        let claims = check_claims(&view, &datasets);
        assert!(!claims.is_empty());
    }
}
