/root/repo/target/debug/deps/simulator_behavior-3a5a6abede39bdfb.d: tests/simulator_behavior.rs

/root/repo/target/debug/deps/simulator_behavior-3a5a6abede39bdfb: tests/simulator_behavior.rs

tests/simulator_behavior.rs:
