/root/repo/target/debug/deps/background_approaches-0cfaff88984b8eb0.d: crates/tc-bench/src/bin/background_approaches.rs

/root/repo/target/debug/deps/libbackground_approaches-0cfaff88984b8eb0.rmeta: crates/tc-bench/src/bin/background_approaches.rs

crates/tc-bench/src/bin/background_approaches.rs:
