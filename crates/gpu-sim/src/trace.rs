/// One recorded lane operation.
///
/// Lanes append one `Op` per simulated instruction; the warp replayer
/// aligns the traces of the 32 lanes of a warp step-by-step and charges
/// each step according to the [`crate::CostModel`]. Addresses are byte
/// addresses in the flat device address space (global) or word indices
/// (shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Global-memory load of one 4-byte word at the given byte address.
    GLoad(u64),
    /// Global load served by the lane's recently-touched sectors (L1
    /// spatial reuse — e.g. the next element of a sequential scan). Counts
    /// as part of the warp's load request but adds no DRAM transaction.
    GLoadHit(u64),
    /// Global-memory store of one 4-byte word.
    GStore(u64),
    /// Global-memory atomic read-modify-write.
    GAtomic(u64),
    /// Shared-memory load at the given word index.
    SLoad(u32),
    /// Shared-memory store.
    SStore(u32),
    /// Shared-memory atomic read-modify-write.
    SAtomic(u32),
    /// One arithmetic/logic instruction (comparison, add, address math...).
    Compute,
    /// Warp-reconvergence marker (`__syncwarp` / the implicit branch
    /// re-join at the bottom of a loop): lanes that reach it wait for
    /// every other lane, re-aligning the lockstep replay. Costs nothing
    /// by itself; the cost is the stall of the lanes that arrive early.
    Converge,
}

/// The recorded instruction stream of one lane within one phase.
#[derive(Debug, Default, Clone)]
pub struct LaneTrace {
    pub ops: Vec<Op>,
}

impl LaneTrace {
    #[inline]
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of recorded ops (kept with `is_empty` for symmetry).
    #[allow(dead_code)]
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the lane recorded no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn clear(&mut self) {
        self.ops.clear();
    }
}
