//! The evaluation runner: prepares a dataset once, then runs any set of
//! algorithms on it — each on a fresh device memory image, under its own
//! preferred orientation — verifying every GPU count against the CPU
//! reference. This produces the raw matrix behind Figures 11, 12, 13
//! and 15.
//!
//! Two sweep drivers share the same per-cell code: [`run_matrix`]
//! (serial, dataset-major) and [`run_matrix_parallel`], which fans the
//! (algorithm x dataset) cells over a thread pool and returns records in
//! the exact same order, with faulting cells isolated as
//! [`RunOutcome::Failed`] instead of aborting the sweep.

use std::borrow::Cow;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use gpu_sim::{Device, ProfileCounters, SimError};
use graph_data::{cpu_ref, orient, DagGraph, DatasetSpec, GraphStats, Orientation, UndirGraph};
use tc_algos::api::TcAlgorithm;
use tc_algos::device_graph::DeviceGraph;

use rayon::prelude::*;

/// A dataset after the preparation pipeline: generated (or loaded),
/// cleaned, with statistics, ground truth, and oriented variants cached.
///
/// Every orientation the registered algorithm set can ask for is
/// precomputed at preparation time, so running a cell needs only `&self`
/// — which is what lets [`run_matrix_parallel`] share one prepared
/// dataset across concurrent cells.
pub struct PreparedDataset {
    pub spec: DatasetSpec,
    pub graph: UndirGraph,
    pub stats: GraphStats,
    /// Exact triangle count from the parallel CPU reference.
    pub ground_truth: u64,
    oriented: HashMap<Orientation, DagGraph>,
}

/// The orientations precomputed for every prepared dataset: the three
/// standard relabelings, which cover every algorithm in the extended
/// registry. Exotic orientations (`KCore`, `Random`) stay available
/// through [`PreparedDataset::dag`]'s compute-on-demand fallback.
const PRECOMPUTED_ORIENTATIONS: [Orientation; 3] = [
    Orientation::ById,
    Orientation::DegreeAsc,
    Orientation::DegreeDesc,
];

impl PreparedDataset {
    /// Run the pipeline for one Table II dataset.
    pub fn prepare(spec: &DatasetSpec) -> Self {
        let graph = spec.build();
        Self::from_graph(*spec, graph)
    }

    /// Wrap an already-cleaned graph (used by the examples and tests).
    pub fn from_graph(spec: DatasetSpec, graph: UndirGraph) -> Self {
        let stats = GraphStats::compute(&graph);
        let reference = orient(&graph, Orientation::DegreeAsc);
        let ground_truth = cpu_ref::forward_merge_parallel(&reference);
        let mut oriented = HashMap::new();
        oriented.insert(Orientation::DegreeAsc, reference);
        for o in PRECOMPUTED_ORIENTATIONS {
            oriented.entry(o).or_insert_with(|| orient(&graph, o));
        }
        PreparedDataset {
            spec,
            graph,
            stats,
            ground_truth,
            oriented,
        }
    }

    /// The DAG under `o`. Precomputed orientations (every orientation a
    /// registered algorithm prefers) are served borrowed; anything else
    /// is oriented on the fly, so the method needs only `&self` and a
    /// prepared dataset can be shared across concurrent runner cells.
    pub fn dag(&self, o: Orientation) -> Cow<'_, DagGraph> {
        match self.oriented.get(&o) {
            Some(d) => Cow::Borrowed(d),
            None => Cow::Owned(orient(&self.graph, o)),
        }
    }
}

/// How one (algorithm, dataset) cell ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    Ok {
        triangles: u64,
        /// Modelled kernel time in device cycles (the Figure 11/15
        /// y-axis).
        kernel_cycles: u64,
        counters: ProfileCounters,
        /// Whether the count matched the CPU reference.
        verified: bool,
    },
    /// The implementation failed to run — a red cross in Figure 11.
    Failed(SimError),
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub algorithm: String,
    pub dataset: &'static str,
    /// Which execution backend produced the cell (`"sim"` or `"cpu"`,
    /// see [`crate::framework::backend`]). Single-backend sweeps are all
    /// `"sim"` and their CSV emission is unchanged by this field.
    pub backend: &'static str,
    pub outcome: RunOutcome,
    /// Multi-device aggregate when the cell ran partitioned (see
    /// [`crate::framework::partitioned`]); `None` for every
    /// single-device cell, leaving CSV emission untouched.
    pub partition: Option<crate::framework::partitioned::PartitionStats>,
    /// Host wall-clock time spent simulating this cell (upload, kernels
    /// and verification). Unlike `outcome` this is measured, not
    /// modelled: it varies run to run and is deliberately excluded from
    /// the deterministic CSV emission.
    pub wall: Duration,
}

impl RunRecord {
    pub fn kernel_cycles(&self) -> Option<u64> {
        match &self.outcome {
            RunOutcome::Ok { kernel_cycles, .. } => Some(*kernel_cycles),
            RunOutcome::Failed(_) => None,
        }
    }

    pub fn counters(&self) -> Option<&ProfileCounters> {
        match &self.outcome {
            RunOutcome::Ok { counters, .. } => Some(counters),
            RunOutcome::Failed(_) => None,
        }
    }

    pub fn is_verified(&self) -> bool {
        matches!(self.outcome, RunOutcome::Ok { verified: true, .. })
    }
}

/// Run one algorithm on one prepared dataset (fresh device memory, the
/// algorithm's preferred orientation) and verify the count.
///
/// Faults are isolated per cell: a kernel that accesses device memory
/// out of bounds, overflows a fixed structure or exhausts device memory
/// produces [`RunOutcome::Failed`] here and the caller's sweep continues.
pub fn run_on_dataset(dev: &Device, algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord {
    let started = Instant::now();
    let ground_truth = data.ground_truth;
    let dataset = data.spec.name;
    let dag = data.dag(algo.preferred_orientation());
    let mut mem = gpu_sim::DeviceMem::new(dev);
    let outcome =
        match DeviceGraph::upload(&dag, &mut mem).and_then(|dg| algo.count(dev, &mut mem, &dg)) {
            Ok(out) => {
                // Tightened invariant: a successful count on a graph with
                // edges must have cost at least one modelled cycle; only the
                // empty graph may report a zero-cycle kernel. An algorithm
                // that "succeeds" without doing modelled work is a bug in
                // its instrumentation, and recording it as failed keeps
                // downstream `kernel_cycles > 0` assumptions honest.
                if out.stats.kernel_cycles == 0 && dag.num_edges() > 0 {
                    RunOutcome::Failed(SimError::KernelFault(format!(
                        "{} reported zero kernel cycles on a non-empty graph",
                        algo.name()
                    )))
                } else {
                    RunOutcome::Ok {
                        triangles: out.triangles,
                        kernel_cycles: out.stats.kernel_cycles,
                        counters: out.stats.counters,
                        verified: out.triangles == ground_truth,
                    }
                }
            }
            Err(e) => RunOutcome::Failed(e),
        };
    RunRecord {
        algorithm: algo.name().to_string(),
        dataset,
        backend: "sim",
        outcome,
        partition: None,
        wall: started.elapsed(),
    }
}

/// The full evaluation sweep: every algorithm on every dataset, serially,
/// dataset-major. Returns one record per cell.
pub fn run_matrix(
    dev: &Device,
    algos: &[Box<dyn TcAlgorithm>],
    datasets: &[DatasetSpec],
) -> Vec<RunRecord> {
    let mut records = Vec::with_capacity(algos.len() * datasets.len());
    for spec in datasets {
        let data = PreparedDataset::prepare(spec);
        for algo in algos {
            records.push(run_on_dataset(dev, algo.as_ref(), &data));
        }
    }
    records
}

/// The full evaluation sweep, parallel and fault-isolated: datasets are
/// prepared concurrently, then every (algorithm, dataset) cell is fanned
/// over the thread pool. Records come back in exactly [`run_matrix`]'s
/// order (dataset-major), and because the simulator is deterministic the
/// modelled outcomes are identical to the serial sweep's — only the
/// measured [`RunRecord::wall`] fields differ.
pub fn run_matrix_parallel(
    dev: &Device,
    algos: &[Box<dyn TcAlgorithm>],
    datasets: &[DatasetSpec],
) -> Vec<RunRecord> {
    let prepared: Vec<PreparedDataset> =
        datasets.par_iter().map(PreparedDataset::prepare).collect();
    let cells: Vec<(usize, usize)> = (0..datasets.len())
        .flat_map(|d| (0..algos.len()).map(move |a| (d, a)))
        .collect();
    cells
        .into_par_iter()
        .map(|(d, a)| run_on_dataset(dev, algos[a].as_ref(), &prepared[d]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::registry::all_algorithms;
    use graph_data::datasets::{GenSpec, SizeClass};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny-rmat",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Rmat {
                scale: 10,
                raw_edges: 8000,
            },
            seed: 7,
        }
    }

    #[test]
    fn all_nine_algorithms_verify_on_tiny_dataset() {
        let dev = Device::v100();
        let algos = all_algorithms();
        let data = PreparedDataset::prepare(&tiny_spec());
        assert!(data.ground_truth > 0, "fixture should contain triangles");
        for algo in &algos {
            let rec = run_on_dataset(&dev, algo.as_ref(), &data);
            match &rec.outcome {
                RunOutcome::Ok {
                    verified,
                    triangles,
                    ..
                } => {
                    assert!(
                        verified,
                        "{}: counted {} expected {}",
                        rec.algorithm, triangles, data.ground_truth
                    );
                }
                RunOutcome::Failed(e) => panic!("{} failed: {e}", rec.algorithm),
            }
        }
    }

    #[test]
    fn run_matrix_shape() {
        let dev = Device::v100();
        let algos = all_algorithms();
        let specs = [tiny_spec()];
        let records = run_matrix(&dev, &algos, &specs);
        assert_eq!(records.len(), algos.len());
        assert!(records.iter().all(|r| r.is_verified()));
        assert!(records.iter().all(|r| r.kernel_cycles().unwrap() > 0));
        assert!(records.iter().all(|r| r.counters().is_some()));
    }

    #[test]
    fn oriented_variants_cached() {
        let data = PreparedDataset::prepare(&tiny_spec());
        // The standard orientations are precomputed, so `dag` serves them
        // borrowed from shared state; an exotic orientation falls back to
        // computing an owned DAG on the fly.
        for o in PRECOMPUTED_ORIENTATIONS {
            assert!(
                matches!(data.dag(o), Cow::Borrowed(_)),
                "{o:?} should be precomputed"
            );
        }
        assert!(matches!(data.dag(Orientation::Random(3)), Cow::Owned(_)));
        let e1 = data.dag(Orientation::ById).num_edges();
        let e2 = data.dag(Orientation::DegreeAsc).num_edges();
        assert_eq!(e1, e2);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let dev = Device::v100();
        let algos = all_algorithms();
        let specs = [tiny_spec()];
        let serial = run_matrix(&dev, &algos, &specs);
        let parallel = run_matrix_parallel(&dev, &algos, &specs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.algorithm, p.algorithm);
            assert_eq!(s.dataset, p.dataset);
            match (&s.outcome, &p.outcome) {
                (
                    RunOutcome::Ok {
                        triangles: st,
                        kernel_cycles: sc,
                        counters: sk,
                        verified: sv,
                    },
                    RunOutcome::Ok {
                        triangles: pt,
                        kernel_cycles: pc,
                        counters: pk,
                        verified: pv,
                    },
                ) => {
                    assert_eq!(st, pt, "{}", s.algorithm);
                    assert_eq!(sc, pc, "{}", s.algorithm);
                    assert_eq!(sk, pk, "{}", s.algorithm);
                    assert_eq!(sv, pv, "{}", s.algorithm);
                }
                (a, b) => panic!("outcome mismatch for {}: {a:?} vs {b:?}", s.algorithm),
            }
        }
    }

    /// An "implementation" that reads past its edge buffer, like a real
    /// kernel with an off-by-one: the sweep must record the fault and
    /// keep going.
    struct OobAlgo;

    impl tc_algos::api::TcAlgorithm for OobAlgo {
        fn meta(&self) -> tc_algos::api::AlgoMeta {
            tc_algos::api::AlgoMeta {
                name: "oob-probe",
                reference: "synthetic fault probe",
                year: 2024,
                iterator: tc_algos::api::IteratorKind::Edge,
                intersection: tc_algos::api::Intersection::Merge,
                granularity: tc_algos::api::Granularity::Coarse,
            }
        }

        fn count(
            &self,
            dev: &Device,
            mem: &mut gpu_sim::DeviceMem,
            dg: &DeviceGraph,
        ) -> Result<tc_algos::api::TcOutput, SimError> {
            let edges = dg.num_edges as usize;
            let dst = dg.edge_dst;
            let stats = dev.launch(mem, gpu_sim::KernelConfig::new(4, 128), move |blk| {
                blk.phase(move |lane| {
                    // Off-by-a-lot: indexes way past the edge list.
                    let _ = lane.ld_global(dst, edges + lane.global_tid() as usize);
                });
            })?;
            Ok(tc_algos::api::TcOutput {
                triangles: 0,
                stats,
            })
        }
    }

    /// An "implementation" with a missing-barrier bug: every lane stores
    /// its tid to shared slot 0, then reads it back in the same phase.
    struct RacyAlgo;

    impl tc_algos::api::TcAlgorithm for RacyAlgo {
        fn meta(&self) -> tc_algos::api::AlgoMeta {
            tc_algos::api::AlgoMeta {
                name: "racy-probe",
                reference: "synthetic race probe",
                year: 2024,
                iterator: tc_algos::api::IteratorKind::Edge,
                intersection: tc_algos::api::Intersection::Hash,
                granularity: tc_algos::api::Granularity::Fine,
            }
        }

        fn count(
            &self,
            dev: &Device,
            mem: &mut gpu_sim::DeviceMem,
            _dg: &DeviceGraph,
        ) -> Result<tc_algos::api::TcOutput, SimError> {
            let cfg = gpu_sim::KernelConfig::new(1, 64).with_shared_words(1);
            let stats = dev.launch(mem, cfg, |blk| {
                blk.phase(|lane| {
                    lane.st_shared(0, lane.tid());
                    lane.ld_shared(0);
                });
            })?;
            Ok(tc_algos::api::TcOutput {
                triangles: 0,
                stats,
            })
        }
    }

    /// An "implementation" that consumes a scratch buffer it never
    /// initialized — the bug class cuda-memcheck's initcheck exists for.
    struct UninitAlgo;

    impl tc_algos::api::TcAlgorithm for UninitAlgo {
        fn meta(&self) -> tc_algos::api::AlgoMeta {
            tc_algos::api::AlgoMeta {
                name: "uninit-probe",
                reference: "synthetic sanitizer probe",
                year: 2024,
                iterator: tc_algos::api::IteratorKind::Vertex,
                intersection: tc_algos::api::Intersection::BitMap,
                granularity: tc_algos::api::Granularity::Coarse,
            }
        }

        fn count(
            &self,
            dev: &Device,
            mem: &mut gpu_sim::DeviceMem,
            _dg: &DeviceGraph,
        ) -> Result<tc_algos::api::TcOutput, SimError> {
            let scratch = mem.alloc_uninit(64, "scratch")?;
            let sums = mem.alloc_zeroed(1, "sums")?;
            let stats = dev.launch(mem, gpu_sim::KernelConfig::new(1, 32), move |blk| {
                blk.phase(move |lane| {
                    // Missing init pass: `scratch` is still garbage here.
                    let v = lane.ld_global(scratch, lane.tid() as usize);
                    lane.atomic_add_global(sums, 0, v);
                });
            })?;
            mem.free(scratch)?;
            mem.free(sums)?;
            Ok(tc_algos::api::TcOutput {
                triangles: 0,
                stats,
            })
        }
    }

    /// An "implementation" with a divergent barrier: odd lanes skip the
    /// `sync_threads` their even siblings arrive at — on hardware the
    /// block hangs; under SimLint's verifier the launch must fail.
    struct DivergentAlgo;

    impl tc_algos::api::TcAlgorithm for DivergentAlgo {
        fn meta(&self) -> tc_algos::api::AlgoMeta {
            tc_algos::api::AlgoMeta {
                name: "divergent-probe",
                reference: "synthetic barrier probe",
                year: 2024,
                iterator: tc_algos::api::IteratorKind::Edge,
                intersection: tc_algos::api::Intersection::Merge,
                granularity: tc_algos::api::Granularity::Fine,
            }
        }

        fn count(
            &self,
            dev: &Device,
            mem: &mut gpu_sim::DeviceMem,
            _dg: &DeviceGraph,
        ) -> Result<tc_algos::api::TcOutput, SimError> {
            let stats = dev.launch(mem, gpu_sim::KernelConfig::new(1, 64), |blk| {
                blk.phase(|lane| {
                    lane.compute(1);
                    if lane.tid() % 2 == 0 {
                        lane.sync_threads();
                    }
                });
            })?;
            Ok(tc_algos::api::TcOutput {
                triangles: 0,
                stats,
            })
        }
    }

    #[test]
    fn barrier_divergence_surfaces_as_failed_cell_and_csv_row() {
        // On a lint-forced device the sweep must isolate the divergent
        // cell as Failed(BarrierDivergence) with the structured Diag
        // intact, and the CSV row must carry the diagnostic — while
        // every registered algorithm still verifies on the same device.
        let dev = Device::v100().with_lints();
        let mut algos = all_algorithms();
        algos.push(Box::new(DivergentAlgo));
        let data = PreparedDataset::prepare(&tiny_spec());
        let records: Vec<RunRecord> = algos
            .iter()
            .map(|a| run_on_dataset(&dev, a.as_ref(), &data))
            .collect();
        let divergent = records.last().unwrap();
        match &divergent.outcome {
            RunOutcome::Failed(SimError::BarrierDivergence(d)) => {
                assert_eq!(d.rule, gpu_sim::LintRule::BarrierDivergence);
                assert_eq!(d.block, Some(0));
            }
            other => panic!("expected Failed(BarrierDivergence), got {other:?}"),
        }
        assert!(
            records[..records.len() - 1].iter().all(|r| r.is_verified()),
            "the registered algorithms must verify under SimLint"
        );
        let mut out = Vec::new();
        crate::framework::csv::write_records(&mut out, &records).unwrap();
        let text = String::from_utf8(out).unwrap();
        let row = text.lines().last().unwrap();
        assert!(row.starts_with("divergent-probe,"), "row: {row}");
        assert!(row.contains("\"failed: barrier divergence"), "row: {row}");
    }

    #[test]
    fn sanitizer_report_surfaces_as_failed_cell_and_csv_row() {
        // On a sanitizer-forced device the sweep must isolate the buggy
        // cell as Failed(Sanitizer) with the kind intact, and the CSV
        // row must carry the diagnostic — while every registered
        // algorithm still verifies on the same device.
        let dev = Device::v100().with_sanitizer();
        let mut algos = all_algorithms();
        algos.push(Box::new(UninitAlgo));
        let data = PreparedDataset::prepare(&tiny_spec());
        let records: Vec<RunRecord> = algos
            .iter()
            .map(|a| run_on_dataset(&dev, a.as_ref(), &data))
            .collect();
        let buggy = records.last().unwrap();
        match &buggy.outcome {
            RunOutcome::Failed(SimError::Sanitizer { kind, buffer, .. }) => {
                assert_eq!(*kind, gpu_sim::SanitizerKind::UninitRead);
                assert_eq!(buffer, "scratch");
            }
            other => panic!("expected Failed(Sanitizer), got {other:?}"),
        }
        assert!(
            records[..records.len() - 1].iter().all(|r| r.is_verified()),
            "the registered algorithms must verify under SimSan"
        );
        let mut out = Vec::new();
        crate::framework::csv::write_records(&mut out, &records).unwrap();
        let text = String::from_utf8(out).unwrap();
        let row = text.lines().last().unwrap();
        assert!(row.starts_with("uninit-probe,"), "row: {row}");
        assert!(
            row.contains("\"failed: sanitizer: uninit-read"),
            "row: {row}"
        );
    }

    #[test]
    fn data_race_surfaces_as_failed_cell_and_csv_row() {
        // On a race-forced device the sweep must isolate the racy cell as
        // Failed(DataRace) — not abort, not report a bogus count — and
        // the CSV row must carry the diagnostic.
        let dev = Device::v100().with_race_detection();
        let mut algos = all_algorithms();
        algos.push(Box::new(RacyAlgo));
        let data = PreparedDataset::prepare(&tiny_spec());
        let records: Vec<RunRecord> = algos
            .iter()
            .map(|a| run_on_dataset(&dev, a.as_ref(), &data))
            .collect();
        let racy = records.last().unwrap();
        assert!(
            matches!(racy.outcome, RunOutcome::Failed(SimError::DataRace { .. })),
            "expected Failed(DataRace), got {:?}",
            racy.outcome
        );
        assert!(
            records[..records.len() - 1].iter().all(|r| r.is_verified()),
            "the registered algorithms must verify under the detector"
        );
        let mut out = Vec::new();
        crate::framework::csv::write_records(&mut out, &records).unwrap();
        let text = String::from_utf8(out).unwrap();
        let row = text.lines().last().unwrap();
        assert!(row.starts_with("racy-probe,"), "row: {row}");
        assert!(row.contains("\"failed: data race"), "row: {row}");
    }

    #[test]
    fn faulting_algorithm_is_isolated() {
        let dev = Device::v100();
        let mut algos = all_algorithms();
        algos.push(Box::new(OobAlgo));
        let specs = [tiny_spec()];
        let records = run_matrix_parallel(&dev, &algos, &specs);
        assert_eq!(records.len(), algos.len());
        let failed: Vec<&RunRecord> = records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Failed(_)))
            .collect();
        assert_eq!(failed.len(), 1, "only the probe fails");
        assert_eq!(failed[0].algorithm, "oob-probe");
        assert!(matches!(
            failed[0].outcome,
            RunOutcome::Failed(SimError::MemoryFault { .. })
        ));
        assert!(
            records
                .iter()
                .filter(|r| r.algorithm != "oob-probe")
                .all(|r| r.is_verified()),
            "healthy cells still verify"
        );
    }
}
