//! Measurement-only overlay for the A/B perf comparison: one serial
//! sweep over Wiki-Talk, per-cell wall times on stdout as CSV.
use tc_bench::{datasets_from_args, sweep_serial};
use tc_core::framework::registry::all_algorithms;

fn main() {
    let datasets = datasets_from_args(&["Wiki-Talk".to_string()]).unwrap();
    let algos = all_algorithms();
    let recs = sweep_serial(&algos, &datasets);
    for r in &recs {
        println!("{},{:.1}", r.algorithm, r.wall.as_secs_f64() * 1e3);
    }
}
