//! Multi-device partitioned execution: the TRUST-style 2-D tiling of
//! [`tc_algos::partition`] run over N simulated devices, with an
//! interconnect cost model folded into the cycle totals.
//!
//! Every simulated device holds the **whole** graph (each kernel may
//! probe any adjacency list) and a [`PartitionPlan`] narrows only its
//! *work* ranges, so per-device counts are exact splits of the
//! single-device count — `Σ_d triangles_d == triangles` for every
//! algorithm, every graph, every N. A real multi-GPU deployment instead
//! pulls remote adjacency lists over NVLink/PCIe; that traffic is what
//! [`PartitionPlan::remote_bytes_by_tile`] estimates and
//! [`gpu_sim::CostModel::link_transfer_cycles`] prices. Per-device
//! totals are `kernel_cycles + link_cycles`, and the modelled makespan
//! is their maximum — devices run concurrently, so the slowest one sets
//! the figure-of-merit, exactly how the strong-scaling plots in the
//! multi-GPU literature are drawn.
//!
//! The devices are simulated **serially** on fresh
//! [`gpu_sim::DeviceMem`] images; determinism is inherited from the
//! simulator, so an N-device sweep is reproducible cycle-for-cycle.

use std::time::Instant;

use gpu_sim::{Device, LaunchStats};
use tc_algos::api::TcAlgorithm;
use tc_algos::device_graph::DeviceGraph;
use tc_algos::partition::PartitionPlan;

use crate::framework::backend::Backend;
use crate::framework::runner::{PreparedDataset, RunOutcome, RunRecord};

/// One simulated device's share of a partitioned run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStats {
    pub device: u32,
    /// Triangles rooted in this device's work range.
    pub triangles: u64,
    /// Modelled kernel cycles on this device alone.
    pub kernel_cycles: u64,
    /// Interconnect bytes pulled from remote tiles.
    pub link_bytes: u64,
    /// Those bytes priced by the device's link model.
    pub link_cycles: u64,
}

impl DeviceStats {
    /// Kernel plus interconnect — this device's contribution to the
    /// makespan.
    pub fn total_cycles(&self) -> u64 {
        self.kernel_cycles + self.link_cycles
    }
}

/// Aggregate of a partitioned run, attached to [`RunRecord::partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    pub num_devices: u32,
    pub per_device: Vec<DeviceStats>,
    /// `max_d (kernel_cycles_d + link_cycles_d)` — devices run
    /// concurrently, so the slowest sets the modelled wall time.
    pub makespan_cycles: u64,
    /// Total bytes crossing the interconnect, all devices.
    pub total_link_bytes: u64,
}

impl PartitionStats {
    /// Single-device cycles / N-device makespan, the strong-scaling
    /// speedup once a 1-device baseline is known.
    pub fn speedup_over(&self, single_device_cycles: u64) -> f64 {
        if self.makespan_cycles == 0 {
            return 1.0;
        }
        single_device_cycles as f64 / self.makespan_cycles as f64
    }
}

/// Run one algorithm over `num_devices` simulated devices and verify the
/// summed count. With `num_devices == 1` this is exactly the
/// single-device runner path (full work ranges, no link charges) and
/// the record carries `partition: None`, keeping 1-device output
/// byte-identical to [`crate::framework::runner::run_on_dataset`].
pub fn run_partitioned(
    dev: &Device,
    algo: &dyn TcAlgorithm,
    data: &PreparedDataset,
    num_devices: u32,
) -> RunRecord {
    if num_devices <= 1 {
        return crate::framework::runner::run_on_dataset(dev, algo, data);
    }
    let started = Instant::now();
    let dag = data.dag(algo.preferred_orientation());
    let plan = PartitionPlan::balanced(dag.csr().offsets(), num_devices);
    let (_, host_dst) = dag.edge_arrays();

    let mut per_device = Vec::with_capacity(num_devices as usize);
    let mut triangles = 0u64;
    let mut agg = LaunchStats::default();
    for d in 0..num_devices as usize {
        // Each device is a fresh memory image: nothing carries over.
        let mut mem = gpu_sim::DeviceMem::new(dev);
        let outcome = DeviceGraph::upload(&dag, &mut mem).and_then(|mut dg| {
            let (lo, hi) = plan.pivot_range(d);
            dg.restrict_to_pivots(lo, hi);
            algo.count(dev, &mut mem, &dg)
        });
        let out = match outcome {
            Ok(out) => out,
            Err(e) => {
                return RunRecord {
                    algorithm: algo.name().to_string(),
                    dataset: data.spec.name,
                    backend: "sim",
                    outcome: RunOutcome::Failed(e),
                    partition: None,
                    wall: started.elapsed(),
                }
            }
        };
        let link_bytes = plan.remote_bytes(dag.csr().offsets(), &host_dst, d);
        per_device.push(DeviceStats {
            device: d as u32,
            triangles: out.triangles,
            kernel_cycles: out.stats.kernel_cycles,
            link_bytes,
            link_cycles: dev.config().cost.link_transfer_cycles(link_bytes),
        });
        triangles += out.triangles;
        agg += out.stats;
    }

    let makespan_cycles = per_device
        .iter()
        .map(DeviceStats::total_cycles)
        .max()
        .unwrap_or(0);
    let total_link_bytes = per_device.iter().map(|d| d.link_bytes).sum();
    let partition = PartitionStats {
        num_devices,
        per_device,
        makespan_cycles,
        total_link_bytes,
    };
    RunRecord {
        algorithm: algo.name().to_string(),
        dataset: data.spec.name,
        backend: "sim",
        outcome: RunOutcome::Ok {
            triangles,
            // The headline cycle figure of a partitioned cell is its
            // makespan: concurrent devices, slowest wins.
            kernel_cycles: makespan_cycles,
            counters: agg.counters,
            verified: triangles == data.ground_truth,
        },
        partition: Some(partition),
        wall: started.elapsed(),
    }
}

/// The N-device sim backend: [`run_partitioned`] behind the common
/// [`Backend`] surface, so multi-device sweeps reuse the existing
/// matrix drivers unchanged.
pub struct PartitionedSimBackend<'d> {
    pub dev: &'d Device,
    pub num_devices: u32,
}

impl Backend for PartitionedSimBackend<'_> {
    fn tag(&self) -> &'static str {
        "sim"
    }

    fn run(&self, algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord {
        run_partitioned(self.dev, algo, data, self.num_devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::registry::all_algorithms;
    use crate::framework::runner::run_on_dataset;
    use graph_data::datasets::{DatasetSpec, GenSpec, SizeClass};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny-rmat",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Rmat {
                scale: 10,
                raw_edges: 8000,
            },
            seed: 7,
        }
    }

    #[test]
    fn partitioned_counts_match_single_device_for_all_algorithms() {
        let dev = Device::v100();
        let data = PreparedDataset::prepare(&tiny_spec());
        for algo in all_algorithms() {
            let single = run_on_dataset(&dev, algo.as_ref(), &data);
            for n in [2u32, 4] {
                let multi = run_partitioned(&dev, algo.as_ref(), &data, n);
                assert!(
                    multi.is_verified(),
                    "{} x{n}: {:?}",
                    multi.algorithm,
                    multi.outcome
                );
                let p = multi.partition.as_ref().unwrap();
                assert_eq!(p.num_devices, n);
                assert_eq!(p.per_device.len(), n as usize);
                let sum: u64 = p.per_device.iter().map(|d| d.triangles).sum();
                match &single.outcome {
                    RunOutcome::Ok { triangles, .. } => assert_eq!(sum, *triangles),
                    other => panic!("single-device failed: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn one_device_run_is_exactly_the_runner_path() {
        let dev = Device::v100();
        let data = PreparedDataset::prepare(&tiny_spec());
        let algos = all_algorithms();
        let direct = run_on_dataset(&dev, algos[0].as_ref(), &data);
        let via = run_partitioned(&dev, algos[0].as_ref(), &data, 1);
        assert!(via.partition.is_none(), "no partition stats at N=1");
        assert_eq!(via.kernel_cycles(), direct.kernel_cycles());
        match (&via.outcome, &direct.outcome) {
            (
                RunOutcome::Ok {
                    triangles: a,
                    counters: ca,
                    ..
                },
                RunOutcome::Ok {
                    triangles: b,
                    counters: cb,
                    ..
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(ca, cb);
            }
            (a, b) => panic!("outcome mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn link_charges_fold_into_makespan() {
        let dev = Device::v100();
        let data = PreparedDataset::prepare(&tiny_spec());
        let algos = all_algorithms();
        let rec = run_partitioned(&dev, algos[0].as_ref(), &data, 4);
        let p = rec.partition.as_ref().unwrap();
        assert!(p.total_link_bytes > 0, "a connected graph must ship bytes");
        for ds in &p.per_device {
            if ds.link_bytes > 0 {
                assert_eq!(
                    ds.link_cycles,
                    dev.config().cost.link_transfer_cycles(ds.link_bytes)
                );
                assert!(ds.link_cycles > dev.config().cost.link_latency);
            }
            assert!(ds.total_cycles() <= p.makespan_cycles);
        }
        assert_eq!(
            p.makespan_cycles,
            p.per_device
                .iter()
                .map(DeviceStats::total_cycles)
                .max()
                .unwrap()
        );
        // The record's headline cycles are the makespan.
        assert_eq!(rec.kernel_cycles(), Some(p.makespan_cycles));
    }

    #[test]
    fn backend_surface_matches_direct_call() {
        let dev = Device::v100();
        let data = PreparedDataset::prepare(&tiny_spec());
        let algos = all_algorithms();
        let backend = PartitionedSimBackend {
            dev: &dev,
            num_devices: 2,
        };
        let via = backend.run(algos[1].as_ref(), &data);
        let direct = run_partitioned(&dev, algos[1].as_ref(), &data, 2);
        assert_eq!(via.backend, "sim");
        assert_eq!(via.kernel_cycles(), direct.kernel_cycles());
        assert_eq!(via.partition, direct.partition);
    }
}
