/root/repo/target/debug/deps/rand-5c9f18270646cb30.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-5c9f18270646cb30.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
