/root/repo/target/debug/deps/table2-24e220e47870d8ee.d: crates/tc-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-24e220e47870d8ee: crates/tc-bench/src/bin/table2.rs

crates/tc-bench/src/bin/table2.rs:
