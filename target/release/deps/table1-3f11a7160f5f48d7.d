/root/repo/target/release/deps/table1-3f11a7160f5f48d7.d: crates/tc-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3f11a7160f5f48d7: crates/tc-bench/src/bin/table1.rs

crates/tc-bench/src/bin/table1.rs:
