/root/repo/target/debug/deps/criterion-f2f978ba3c7455ac.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f2f978ba3c7455ac.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f2f978ba3c7455ac.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
