/root/repo/target/debug/deps/gpu_sim-97a482f6c5a88197.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs

/root/repo/target/debug/deps/libgpu_sim-97a482f6c5a88197.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/schedule.rs:
crates/gpu-sim/src/trace.rs:
