/root/repo/target/debug/deps/table2-e9ade866d08bf06f.d: crates/tc-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e9ade866d08bf06f.rmeta: crates/tc-bench/src/bin/table2.rs Cargo.toml

crates/tc-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
