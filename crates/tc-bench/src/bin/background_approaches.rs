//! Section II background experiment (Figure 1 / Wang et al. comparison):
//! the intersection approach vs the matrix-multiplication and
//! subgraph-matching baselines, on the small datasets — showing why the
//! paper (and the field) focuses on intersection: the other two do
//! unavoidable redundant work.

use std::time::Instant;

use graph_data::{cpu_ref, orient, Orientation};
use tc_core::framework::report::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = if args.is_empty() {
        tc_bench::datasets_from_args(&["--small".to_string()]).unwrap()
    } else {
        tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };

    let mut t = Table::new(&[
        "dataset",
        "triangles",
        "intersection ms",
        "matmul ms",
        "subgraph ms",
    ]);
    for spec in &datasets {
        tc_bench::eprint_progress(&format!("running {}", spec.name));
        let g = spec.build();
        let dag = orient(&g, Orientation::DegreeAsc);

        let t0 = Instant::now();
        let itc = cpu_ref::forward_merge(&dag);
        let itc_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let mm = cpu_ref::matmul_count(&g);
        let mm_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let sg = cpu_ref::subgraph_match(&g);
        let sg_ms = t2.elapsed().as_secs_f64() * 1e3;

        assert_eq!(itc, mm, "{}: approaches disagree", spec.name);
        assert_eq!(itc, sg, "{}: approaches disagree", spec.name);
        t.row(vec![
            spec.name.to_string(),
            itc.to_string(),
            format!("{itc_ms:.1}"),
            format!("{mm_ms:.1}"),
            format!("{sg_ms:.1}"),
        ]);
    }
    println!("SECTION II BACKGROUND: three TC approaches (CPU, same counts)");
    println!("{}", t.render());
}
