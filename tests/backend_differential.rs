//! The differential CPU ≡ sim wall: for every registry entry (all ten
//! algorithms, cover-edge included) and every conformance graph, the
//! native host kernel, the simulated kernel and the independent
//! `cpu_ref::node_iterator` oracle must produce the same count — with
//! the sim side running under forced race detection and SimSan, plus a
//! per-run leak check (that is what `run_checked` does).
//!
//! This is the acceptance gate for the backend split: the CPU execution
//! path is born behind the same wall the sim path already lives behind,
//! so a host kernel can never drift from the algorithm it mirrors
//! without a red test naming the exact generator one-liner.

use tc_compare::algos::conformance::{generator_cases, run_checked};
use tc_compare::core::framework::csv;
use tc_compare::core::{
    all_algorithms, run_matrix_backends, Backend, CpuBackend, PreparedDataset, SimBackend,
};
use tc_compare::graph::datasets::{DatasetSpec, GenSpec, SizeClass};
use tc_compare::graph::{clean_edges, cpu_ref, orient};
use tc_compare::sim::Device;

#[test]
fn cpu_and_sim_agree_with_the_oracle_on_every_conformance_graph() {
    let algos = all_algorithms();
    assert_eq!(algos.len(), 10, "the registry should hold ten algorithms");
    for case in generator_cases() {
        let (g, _) = clean_edges(&case.edges);
        let expected = cpu_ref::node_iterator(&g);
        for algo in &algos {
            let dag = orient(&g, algo.preferred_orientation());
            // Sim side: race detection + SimSan forced on, leak-checked.
            let sim = run_checked(algo.as_ref(), &dag).unwrap_or_else(|e| {
                panic!(
                    "{} failed on `{}`: {e}\n  reproduce with: let edges = {};",
                    algo.name(),
                    case.name,
                    case.repro
                )
            });
            assert!(
                sim.stats.counters.race_checks > 0 && sim.stats.counters.sanitizer_checks > 0,
                "{} on `{}`: detector/sanitizer not live",
                algo.name(),
                case.name
            );
            // Host side: the algorithm's native rayon kernel.
            let cpu = algo.count_cpu(&dag);
            assert_eq!(
                sim.triangles,
                expected,
                "{} (sim) disagrees with the oracle on `{}`\n  reproduce with: let edges = {};",
                algo.name(),
                case.name,
                case.repro
            );
            assert_eq!(
                cpu,
                expected,
                "{} (cpu) disagrees with the oracle on `{}`\n  reproduce with: let edges = {};",
                algo.name(),
                case.name,
                case.repro
            );
        }
    }
}

#[test]
fn multi_backend_sweep_verifies_and_tags_its_csv() {
    let spec = DatasetSpec {
        name: "backend-tiny-rmat",
        paper_vertices: 0,
        paper_edges: 0,
        paper_avg_degree: 0.0,
        size_class: SizeClass::Small,
        gen: GenSpec::Rmat {
            scale: 9,
            raw_edges: 4000,
        },
        seed: 11,
    };
    let dev = Device::v100();
    let backends: [&dyn Backend; 2] = [&SimBackend { dev: &dev }, &CpuBackend];
    let algos = all_algorithms();
    let records = run_matrix_backends(&backends, &algos, &[spec]);
    assert_eq!(records.len(), 2 * algos.len());
    assert!(
        records.iter().all(|r| r.is_verified()),
        "every (backend x algorithm) cell must verify"
    );
    // Sim and cpu halves agree cell by cell.
    let (sim, cpu) = records.split_at(algos.len());
    for (s, c) in sim.iter().zip(cpu) {
        assert_eq!(s.algorithm, c.algorithm);
        assert_eq!((s.backend, c.backend), ("sim", "cpu"));
    }
    // The mixed-backend CSV carries the backend column...
    let mut out = Vec::new();
    csv::write_records(&mut out, &records).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with(csv::CSV_BACKEND_HEADER));
    assert!(text.contains(",cpu,ok,"));
    // ...while the sim-only half keeps the historical header untouched.
    let mut sim_only = Vec::new();
    csv::write_records(&mut sim_only, sim).unwrap();
    assert!(String::from_utf8(sim_only)
        .unwrap()
        .starts_with(csv::CSV_HEADER));
}

#[test]
fn cpu_backend_reuses_the_prepared_pipeline() {
    // One prepared dataset serves both backends: same orientation cache,
    // same ground truth, no per-backend re-preparation.
    let spec = DatasetSpec {
        name: "backend-shared-prep",
        paper_vertices: 0,
        paper_edges: 0,
        paper_avg_degree: 0.0,
        size_class: SizeClass::Small,
        gen: GenSpec::Rmat {
            scale: 8,
            raw_edges: 2000,
        },
        seed: 13,
    };
    let data = PreparedDataset::prepare(&spec);
    let dev = Device::v100();
    for algo in all_algorithms() {
        let sim = SimBackend { dev: &dev }.run(algo.as_ref(), &data);
        let cpu = CpuBackend.run(algo.as_ref(), &data);
        match (&sim.outcome, &cpu.outcome) {
            (
                tc_compare::core::RunOutcome::Ok { triangles: st, .. },
                tc_compare::core::RunOutcome::Ok { triangles: ct, .. },
            ) => {
                assert_eq!(st, ct, "{}", sim.algorithm);
                assert_eq!(*ct, data.ground_truth, "{}", sim.algorithm);
            }
            (a, b) => panic!("{}: {a:?} vs {b:?}", sim.algorithm),
        }
    }
}
