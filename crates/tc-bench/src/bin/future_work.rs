//! The paper's Section VI future work, measured: GroupTC-H (hash tables
//! for heavy intersections, chunked binary search for the rest) against
//! plain GroupTC and TRUST — the bottleneck it was designed to remove.

use tc_algos::api::TcAlgorithm;
use tc_algos::trust::Trust;
use tc_core::framework::report::{extract, format_sig, MatrixView, Table};
use tc_core::{GroupTc, GroupTcHybrid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let algos: Vec<Box<dyn TcAlgorithm>> = vec![
        Box::new(Trust),
        Box::new(GroupTc::default()),
        Box::new(GroupTcHybrid::default()),
    ];
    let records = tc_bench::sweep(&algos, &datasets);
    assert!(
        records.iter().all(|r| r.is_verified()),
        "all counts must verify"
    );
    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure(
            "FUTURE WORK: TRUST vs GroupTC vs GroupTC-H (modelled ms)",
            extract::time_ms
        )
    );

    let mut t = Table::new(&["dataset", "GroupTC-H vs GroupTC", "GroupTC-H vs TRUST"]);
    for spec in &datasets {
        let h = view.value("GroupTC-H", spec.name, extract::time_ms);
        let cell = |base: Option<f64>| match (base, h) {
            (Some(b), Some(hh)) if hh > 0.0 => format!("{}x", format_sig(b / hh)),
            _ => "x".to_string(),
        };
        let plain = view.value("GroupTC", spec.name, extract::time_ms);
        let trust = view.value("TRUST", spec.name, extract::time_ms);
        t.row(vec![spec.name.to_string(), cell(plain), cell(trust)]);
    }
    println!("GroupTC-H speedups:");
    println!("{}", t.render());
}
