/root/repo/target/debug/deps/tc_algos-0ebf4169fa637a37.d: crates/tc-algos/src/lib.rs crates/tc-algos/src/api.rs crates/tc-algos/src/bisson.rs crates/tc-algos/src/device_graph.rs crates/tc-algos/src/fox.rs crates/tc-algos/src/green.rs crates/tc-algos/src/hindex.rs crates/tc-algos/src/hu.rs crates/tc-algos/src/polak.rs crates/tc-algos/src/registry.rs crates/tc-algos/src/tricore.rs crates/tc-algos/src/trust.rs crates/tc-algos/src/util.rs crates/tc-algos/src/testutil.rs

/root/repo/target/debug/deps/libtc_algos-0ebf4169fa637a37.rmeta: crates/tc-algos/src/lib.rs crates/tc-algos/src/api.rs crates/tc-algos/src/bisson.rs crates/tc-algos/src/device_graph.rs crates/tc-algos/src/fox.rs crates/tc-algos/src/green.rs crates/tc-algos/src/hindex.rs crates/tc-algos/src/hu.rs crates/tc-algos/src/polak.rs crates/tc-algos/src/registry.rs crates/tc-algos/src/tricore.rs crates/tc-algos/src/trust.rs crates/tc-algos/src/util.rs crates/tc-algos/src/testutil.rs

crates/tc-algos/src/lib.rs:
crates/tc-algos/src/api.rs:
crates/tc-algos/src/bisson.rs:
crates/tc-algos/src/device_graph.rs:
crates/tc-algos/src/fox.rs:
crates/tc-algos/src/green.rs:
crates/tc-algos/src/hindex.rs:
crates/tc-algos/src/hu.rs:
crates/tc-algos/src/polak.rs:
crates/tc-algos/src/registry.rs:
crates/tc-algos/src/tricore.rs:
crates/tc-algos/src/trust.rs:
crates/tc-algos/src/util.rs:
crates/tc-algos/src/testutil.rs:
