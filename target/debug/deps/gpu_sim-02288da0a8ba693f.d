/root/repo/target/debug/deps/gpu_sim-02288da0a8ba693f.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sim-02288da0a8ba693f.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/exec.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/schedule.rs crates/gpu-sim/src/trace.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/exec.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/schedule.rs:
crates/gpu-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
