/root/repo/target/debug/deps/tc_compare-061de5c3cbcc00b7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtc_compare-061de5c3cbcc00b7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
