/root/repo/target/debug/deps/all_figures-4941a0d2ca99417d.d: crates/tc-bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-4941a0d2ca99417d: crates/tc-bench/src/bin/all_figures.rs

crates/tc-bench/src/bin/all_figures.rs:
