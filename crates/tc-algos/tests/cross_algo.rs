//! Cross-algorithm integration tests at the crate level: pairwise
//! agreement on structured and random graphs, resource-failure modes,
//! and stats sanity for every published implementation.

use gpu_sim::{Device, DeviceMem, SimError};
use graph_data::{clean_edges, cpu_ref, gen, orient, EdgeList, Orientation};
use tc_algos::device_graph::DeviceGraph;
use tc_algos::published_algorithms;

fn fixtures() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("rmat", gen::rmat(11, 14_000, 0.57, 0.19, 0.19, 0.05, 71)),
        ("ba-clustered", gen::barabasi_albert(1_200, 6, 0.7, 72)),
        ("ws-lattice", gen::watts_strogatz(900, 4, 0.05, 73)),
        ("road", gen::road_grid(35, 35, 0.8, 0.2, 74)),
        ("er", gen::erdos_renyi(900, 5_000, 75)),
    ]
}

#[test]
fn all_published_algorithms_agree_on_every_fixture() {
    let dev = Device::v100();
    for (name, raw) in fixtures() {
        let (g, _) = clean_edges(&raw);
        let expected = {
            let dag = orient(&g, Orientation::DegreeAsc);
            cpu_ref::forward_merge(&dag)
        };
        for algo in published_algorithms() {
            let dag = orient(&g, algo.preferred_orientation());
            let mut mem = DeviceMem::new(&dev);
            let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
            let out = algo.count(&dev, &mut mem, &dg).unwrap();
            assert_eq!(out.triangles, expected, "{} wrong on {name}", algo.name());
            // Auxiliary allocations must all have been released.
            dg.free(&mut mem).unwrap();
            assert_eq!(
                mem.allocated_words(),
                0,
                "{} leaked device memory on {name}",
                algo.name()
            );
        }
    }
}

#[test]
fn every_algorithm_reports_work_proportional_stats() {
    let dev = Device::v100();
    let (small, _) = clean_edges(&gen::rmat(10, 5_000, 0.57, 0.19, 0.19, 0.05, 81));
    let (large, _) = clean_edges(&gen::rmat(13, 40_000, 0.57, 0.19, 0.19, 0.05, 81));
    for algo in published_algorithms() {
        let run = |g: &graph_data::UndirGraph| {
            let dag = orient(g, algo.preferred_orientation());
            let mut mem = DeviceMem::new(&dev);
            let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
            algo.count(&dev, &mut mem, &dg).unwrap().stats
        };
        let s = run(&small);
        let l = run(&large);
        assert!(
            l.counters.global_load_requests > s.counters.global_load_requests,
            "{}: more edges must mean more loads",
            algo.name()
        );
        assert!(
            l.total_block_cycles > s.total_block_cycles,
            "{}: more edges must mean more work",
            algo.name()
        );
    }
}

#[test]
fn algorithms_fail_cleanly_when_auxiliary_memory_does_not_fit() {
    // A device just big enough for the graph but not for the big
    // auxiliary structures some algorithms allocate.
    let (g, _) = clean_edges(&gen::rmat(12, 30_000, 0.57, 0.19, 0.19, 0.05, 91));
    let dag = orient(&g, Orientation::DegreeAsc);
    let graph_words = (dag.csr().offsets().len() + 3 * dag.csr().targets().len()) as u64;
    let dev = Device::with_memory_words(graph_words + 256);
    let mut failures = 0;
    for algo in published_algorithms() {
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        match algo.count(&dev, &mut mem, &dg) {
            Ok(out) => {
                // Algorithms with small aux footprints still succeed and
                // must still be exact.
                assert_eq!(
                    out.triangles,
                    cpu_ref::forward_merge(&dag),
                    "{}",
                    algo.name()
                );
            }
            Err(SimError::OutOfMemory { .. }) => failures += 1,
            Err(e) => panic!("{}: unexpected error {e}", algo.name()),
        }
    }
    assert!(
        failures > 0,
        "at least the arena-hungry implementations should OOM (red crosses)"
    );
}
