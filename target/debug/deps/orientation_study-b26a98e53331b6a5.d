/root/repo/target/debug/deps/orientation_study-b26a98e53331b6a5.d: crates/tc-bench/src/bin/orientation_study.rs

/root/repo/target/debug/deps/liborientation_study-b26a98e53331b6a5.rmeta: crates/tc-bench/src/bin/orientation_study.rs

crates/tc-bench/src/bin/orientation_study.rs:
