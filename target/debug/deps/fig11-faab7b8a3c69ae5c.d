/root/repo/target/debug/deps/fig11-faab7b8a3c69ae5c.d: crates/tc-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-faab7b8a3c69ae5c.rmeta: crates/tc-bench/src/bin/fig11.rs

crates/tc-bench/src/bin/fig11.rs:
