/root/repo/target/debug/deps/table2-5ff1bd7df0f24e6e.d: crates/tc-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5ff1bd7df0f24e6e: crates/tc-bench/src/bin/table2.rs

crates/tc-bench/src/bin/table2.rs:
