//! One full evaluation sweep printing every figure (11, 12, 13a, 13b and
//! the Figure 15 subset with speedups) from a single run — the cheapest
//! way to regenerate the whole evaluation section.

use tc_core::framework::registry::all_algorithms;
use tc_core::framework::report::{extract, format_sig, wall_summary, MatrixView, Table};
use tc_core::framework::runner::RunOutcome;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Optional `--csv <path>`: dump the raw matrix for external plotting.
    let csv_path = args.iter().position(|a| a == "--csv").map(|i| {
        let mut it = args.drain(i..i + 2);
        it.next();
        it.next().expect("--csv needs a path")
    });
    // Optional `--timed-csv <path>`: same matrix plus the measured
    // host_wall_ms column (not deterministic across runs).
    let timed_csv_path = args.iter().position(|a| a == "--timed-csv").map(|i| {
        let mut it = args.drain(i..i + 2);
        it.next();
        it.next().expect("--timed-csv needs a path")
    });
    // Optional `--serial`: run cells one at a time instead of fanning
    // out over the rayon pool. The records are identical either way.
    let serial = args
        .iter()
        .position(|a| a == "--serial")
        .map(|i| args.remove(i))
        .is_some();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    tc_bench::eprint_progress(&format!(
        "running 9 algorithms x {} datasets ({})",
        datasets.len(),
        if serial { "serial" } else { "parallel" }
    ));
    let records = if serial {
        tc_bench::sweep_serial(&all_algorithms(), &datasets)
    } else {
        tc_bench::full_sweep(&datasets)
    };
    eprintln!("[tc-bench] {}", wall_summary(&records, 5));

    // Verification summary first: every successful run must be exact.
    let unverified: Vec<_> = records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                RunOutcome::Ok {
                    verified: false,
                    ..
                }
            )
        })
        .collect();
    assert!(
        unverified.is_empty(),
        "unverified counts: {:?}",
        unverified
            .iter()
            .map(|r| (&r.algorithm, r.dataset))
            .collect::<Vec<_>>()
    );
    let failures: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.outcome, RunOutcome::Failed(_)))
        .map(|r| format!("{} on {}", r.algorithm, r.dataset))
        .collect();
    eprintln!(
        "[tc-bench] {} cells, {} failures (red crosses): {:?}",
        records.len(),
        failures.len(),
        failures
    );

    if let Some(path) = csv_path {
        let f = std::fs::File::create(&path).expect("create csv");
        tc_core::framework::csv::write_records(std::io::BufWriter::new(f), &records)
            .expect("write csv");
        eprintln!("[tc-bench] wrote {path}");
    }
    if let Some(path) = timed_csv_path {
        let f = std::fs::File::create(&path).expect("create timed csv");
        tc_core::framework::csv::write_records_timed(std::io::BufWriter::new(f), &records)
            .expect("write timed csv");
        eprintln!("[tc-bench] wrote {path}");
    }

    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure(
            "FIGURE 11: total running time (modelled ms)",
            extract::time_ms
        )
    );
    println!(
        "{}",
        view.render_figure("FIGURE 12: global load requests", extract::load_requests)
    );
    println!(
        "{}",
        view.render_figure(
            "FIGURE 13(a): warp_execution_efficiency (%)",
            extract::warp_efficiency
        )
    );
    println!(
        "{}",
        view.render_figure("FIGURE 13(b): gld_transactions_per_request", extract::tpr)
    );

    // Figure 15 digest from the same sweep.
    let mut t = Table::new(&["dataset", "class", "GroupTC vs Polak", "GroupTC vs TRUST"]);
    for spec in &datasets {
        let group = view.value("GroupTC", spec.name, extract::time_ms);
        let cell = |base: Option<f64>| match (base, group) {
            (Some(b), Some(g)) if g > 0.0 => format!("{}x", format_sig(b / g)),
            _ => "x".to_string(),
        };
        let polak = view.value("Polak", spec.name, extract::time_ms);
        let trust = view.value("TRUST", spec.name, extract::time_ms);
        t.row(vec![
            spec.name.to_string(),
            format!("{:?}", spec.size_class),
            cell(polak),
            cell(trust),
        ]);
    }
    println!("FIGURE 15 digest: GroupTC speedups");
    println!("{}", t.render());

    let claims = tc_core::framework::claims::check_claims(&view, &datasets);
    println!("{}", tc_core::framework::claims::render_claims(&claims));
}
