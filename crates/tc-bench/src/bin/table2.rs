//! Regenerates Table II: the 19 datasets with vertex count, edge count
//! and average degree — for both the paper's SNAP originals and the
//! synthetic stand-ins this reproduction actually runs, so the scale
//! substitution is visible at a glance.

use std::time::Instant;

use graph_data::GraphStats;
use rayon::prelude::*;
use tc_core::framework::report::{human_count, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // Generator runs are independent, so build the stand-ins across the
    // rayon pool; collect() keeps the rows in Table II order.
    let started = Instant::now();
    let stats: Vec<(GraphStats, f64)> = datasets
        .par_iter()
        .map(|spec| {
            let cell = Instant::now();
            let g = spec.build();
            let s = GraphStats::compute(&g);
            (s, cell.elapsed().as_secs_f64() * 1e3)
        })
        .collect();

    let mut t = Table::new(&[
        "dataset",
        "paper V",
        "paper E",
        "paper deg",
        "stand-in V",
        "stand-in E",
        "stand-in deg",
        "max deg",
        "build ms",
    ]);
    for (spec, (s, build_ms)) in datasets.iter().zip(&stats) {
        t.row(vec![
            spec.name.to_string(),
            human_count(spec.paper_vertices),
            human_count(spec.paper_edges),
            format!("{:.1}", spec.paper_avg_degree),
            human_count(s.vertices as u64),
            human_count(s.edges),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            format!("{build_ms:.1}"),
        ]);
    }
    tc_bench::eprint_progress(&format!(
        "built {} datasets in {:.2}s",
        datasets.len(),
        started.elapsed().as_secs_f64()
    ));
    println!("TABLE II: DATASETS (paper SNAP originals vs synthetic stand-ins)");
    println!("{}", t.render());
}
