//! # tc-core — the paper's contribution
//!
//! Two things live here:
//!
//! * [`grouptc`] — **GroupTC**, the new algorithm of Section V:
//!   edge-centric, binary-search based, processing *chunks* of
//!   consecutive edges per thread block so every lane always has work,
//!   with the paper's three optimizations (partial 2-hop search,
//!   resume offsets, and search-table flipping), each individually
//!   toggleable for the ablation benches.
//! * [`framework`] — the unified testing framework of Section IV:
//!   dataset preparation pipeline, the algorithm registry (the eight
//!   published implementations plus GroupTC), the evaluation runner that
//!   produces every figure's underlying matrix, and report formatting.

pub mod framework;
pub mod grouptc;
pub mod grouptc_hybrid;

pub use framework::backend::{
    run_matrix_backends, run_matrix_backends_parallel, run_on_dataset_cpu, Backend, CpuBackend,
    SimBackend,
};
pub use framework::conformance::{run_conformance, run_conformance_suite, ConformanceReport};
pub use framework::registry::all_algorithms;
pub use framework::runner::{
    run_matrix, run_matrix_parallel, run_on_dataset, PreparedDataset, RunOutcome, RunRecord,
};
pub use grouptc::{GroupTc, GroupTcConfig};
pub use grouptc_hybrid::GroupTcHybrid;
