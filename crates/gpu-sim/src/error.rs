use std::fmt;

use crate::lint::Diag;
use crate::race::RaceKind;
use crate::sanitize::SanitizerKind;

/// Errors surfaced by the simulator.
///
/// `OutOfMemory` is load-bearing for the reproduction: several of the
/// published implementations fail on the largest datasets (the red crosses
/// in Figure 11 of the paper), and they fail here the same way — by asking
/// the device for more global memory than it has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device-memory allocation exceeded remaining capacity.
    OutOfMemory {
        /// Human-readable tag of the buffer that failed to allocate.
        what: String,
        /// Words requested by the failing allocation.
        requested_words: u64,
        /// Words still available on the device.
        available_words: u64,
    },
    /// A kernel required more shared memory per block than the device has.
    SharedMemoryExceeded {
        requested_words: u32,
        available_words: u32,
    },
    /// A kernel was launched with an invalid configuration.
    InvalidLaunch(String),
    /// The kernel itself reported a failure (e.g. a hash-table overflow in
    /// an implementation with fixed-size buckets).
    KernelFault(String),
    /// A kernel lane accessed a device buffer out of bounds. Unlike a
    /// host-side out-of-bounds access (a harness bug, which panics), a
    /// lane-side fault is attributed to the implementation under test:
    /// the faulting block poisons itself, the launch returns this error,
    /// and an evaluation sweep records the cell as failed and moves on.
    MemoryFault {
        /// Debug name of the buffer that was accessed.
        buffer: String,
        /// The out-of-bounds word index.
        index: usize,
        /// The buffer's length in words.
        len: usize,
    },
    /// The race detector (see `gpu_sim::race`) caught two lanes of one
    /// block touching the same word between two barriers, at least one
    /// of them with a plain (non-atomic) write. On real hardware the
    /// outcome would be schedule-dependent; the launch fails instead of
    /// silently reporting whichever interleaving the simulator picked.
    DataRace {
        /// Shared-memory word index or global byte address, per `kind`.
        addr: u64,
        /// Address space and conflict flavour.
        kind: RaceKind,
        /// The two conflicting lanes' thread indices within the block,
        /// in the order the accesses were simulated.
        lanes: (u32, u32),
        /// Where the conflict was observed (barrier-phase number and the
        /// humanized address), for correlating with kernel source.
        pc_hint: String,
    },
    /// SimSan (see `gpu_sim::sanitize`) caught a memory-state bug:
    /// uninit-read, use-after-free, redzone hit, double-free or a leak.
    /// Lane-side reports poison the block like `MemoryFault`/`DataRace`;
    /// host-side reports (double-free, dangling copy-back, leak) come
    /// straight from the `DeviceMem` call that detected them.
    Sanitizer {
        /// What went wrong.
        kind: SanitizerKind,
        /// Debug name of the buffer involved (`"shared"` for per-block
        /// shared memory; the live buffer names for a leak).
        buffer: String,
        /// Word offset of the offending access within the buffer (for a
        /// leak: the words still allocated).
        word: usize,
        /// The accessing lane's thread index, or `None` for host-side
        /// reports.
        lane: Option<u32>,
        /// Where the report was raised (barrier-phase number and the
        /// humanized address, or the host operation).
        pc_hint: String,
    },
    /// SimLint's barrier-divergence verifier (see `gpu_sim::lint`)
    /// caught live lanes of one block disagreeing on reaching an
    /// explicit barrier ([`LaneCtx::sync_threads`](crate::LaneCtx::sync_threads))
    /// within a phase — a lane retired or branched past a barrier its
    /// siblings wait at. On real hardware this hangs the block, so like
    /// [`SimError::DataRace`] it is fatal: the block poisons itself and
    /// the launch fails with the structured diagnostic.
    BarrierDivergence(Diag),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                what,
                requested_words,
                available_words,
            } => write!(
                f,
                "device out of memory allocating `{what}`: requested {requested_words} words, \
                 {available_words} available"
            ),
            SimError::SharedMemoryExceeded {
                requested_words,
                available_words,
            } => write!(
                f,
                "shared memory exceeded: requested {requested_words} words/block, \
                 device provides {available_words}"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::KernelFault(msg) => write!(f, "kernel fault: {msg}"),
            SimError::MemoryFault { buffer, index, len } => write!(
                f,
                "device memory fault: `{buffer}`[{index}] out of bounds (len {len})"
            ),
            SimError::DataRace {
                addr,
                kind,
                lanes,
                pc_hint,
            } => write!(
                f,
                "data race: {kind} conflict at {} {addr} between lanes {} and {} ({pc_hint})",
                if kind.is_shared() {
                    "shared word"
                } else {
                    "global byte address"
                },
                lanes.0,
                lanes.1,
            ),
            SimError::Sanitizer {
                kind,
                buffer,
                word,
                lane,
                pc_hint,
            } => {
                write!(f, "sanitizer: {kind} on `{buffer}`[{word}]")?;
                if let Some(l) = lane {
                    write!(f, " by lane {l}")?;
                }
                write!(f, " ({pc_hint})")
            }
            SimError::BarrierDivergence(d) => {
                write!(f, "barrier divergence")?;
                if let Some(b) = d.block {
                    write!(f, " in block {b}")?;
                }
                write!(f, ": {} ({})", d.detail, d.pc_hint)
            }
        }
    }
}

impl std::error::Error for SimError {}
