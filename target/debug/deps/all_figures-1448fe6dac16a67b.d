/root/repo/target/debug/deps/all_figures-1448fe6dac16a67b.d: crates/tc-bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-1448fe6dac16a67b: crates/tc-bench/src/bin/all_figures.rs

crates/tc-bench/src/bin/all_figures.rs:
