/root/repo/target/debug/deps/diag-3f45699c84dc4f51.d: crates/tc-bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-3f45699c84dc4f51: crates/tc-bench/src/bin/diag.rs

crates/tc-bench/src/bin/diag.rs:
