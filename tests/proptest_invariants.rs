//! Property-based tests over the whole stack: random graphs in, exact
//! agreement out — plus pipeline invariants (cleaning idempotence,
//! orientation preservation, format round-trips).

use proptest::prelude::*;

use tc_compare::algos::published_algorithms;
use tc_compare::algos::testutil::run_on_dag;
use tc_compare::core::GroupTc;
use tc_compare::graph::{clean_edges, cpu_ref, io, orient, EdgeList, Orientation};

/// Random raw edge list: up to 400 edges over up to 60 vertices, with
/// self-loops and duplicates allowed (cleaning must cope).
fn raw_edges() -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0u32..60, 0u32..60), 0..400).prop_map(EdgeList::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_gpu_algorithm_matches_every_cpu_reference(raw in raw_edges()) {
        let (g, _) = clean_edges(&raw);
        // Independent oracle on the undirected graph.
        let expected = cpu_ref::node_iterator(&g);
        prop_assert_eq!(cpu_ref::matmul_count(&g), expected);
        prop_assert_eq!(cpu_ref::subgraph_match(&g), expected);
        for o in [Orientation::ById, Orientation::DegreeAsc, Orientation::DegreeDesc] {
            let dag = orient(&g, o);
            prop_assert_eq!(cpu_ref::forward_merge(&dag), expected);
            prop_assert_eq!(cpu_ref::binsearch_count(&dag), expected);
            prop_assert_eq!(cpu_ref::hash_count(&dag), expected);
            prop_assert_eq!(cpu_ref::bitmap_count(&dag), expected);
        }
        // GPU algorithms under their preferred orientation.
        let dag = orient(&g, Orientation::DegreeAsc);
        for algo in published_algorithms() {
            let dag_pref = orient(&g, algo.preferred_orientation());
            prop_assert_eq!(run_on_dag(algo.as_ref(), &dag_pref), expected,
                "{} disagrees", algo.name());
        }
        prop_assert_eq!(run_on_dag(&GroupTc::default(), &dag), expected);
    }

    #[test]
    fn cleaning_is_idempotent(raw in raw_edges()) {
        let (g1, _) = clean_edges(&raw);
        let again = EdgeList::new(g1.undirected_edges().collect());
        let (g2, report) = clean_edges(&again);
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(report.removed_self_loops, 0);
        prop_assert_eq!(report.removed_duplicates, 0);
        prop_assert_eq!(report.removed_isolated_vertices, 0);
    }

    #[test]
    fn orientation_preserves_edges_and_degrees_sum(raw in raw_edges()) {
        let (g, _) = clean_edges(&raw);
        for o in [Orientation::ById, Orientation::DegreeAsc, Orientation::DegreeDesc] {
            let dag = orient(&g, o);
            prop_assert_eq!(dag.num_edges(), g.num_edges());
            // Every DAG edge ascends.
            for (u, v) in dag.csr().edge_iter() {
                prop_assert!(u < v);
            }
            // The relabeling is a permutation.
            let mut seen = vec![false; g.num_vertices() as usize];
            for v in 0..dag.num_vertices() {
                let old = dag.old_id(v) as usize;
                prop_assert!(!seen[old]);
                seen[old] = true;
            }
        }
    }

    #[test]
    fn formats_round_trip(raw in raw_edges()) {
        let mut text = Vec::new();
        io::write_snap_text(&mut text, &raw).unwrap();
        prop_assert_eq!(io::parse_snap_text(&text[..]).unwrap(), raw.clone());

        let mut bin = Vec::new();
        io::write_binary_edges(&mut bin, &raw).unwrap();
        prop_assert_eq!(io::read_binary_edges(&bin[..]).unwrap(), raw.clone());

        prop_assert_eq!(io::read_edges_auto(&text[..]).unwrap(), raw.clone());
        prop_assert_eq!(io::read_edges_auto(&bin[..]).unwrap(), raw);
    }

    #[test]
    fn csr_file_round_trip(raw in raw_edges()) {
        let (g, _) = clean_edges(&raw);
        let dag = orient(&g, Orientation::DegreeAsc);
        let mut bytes = Vec::new();
        io::write_csr(&mut bytes, dag.csr()).unwrap();
        prop_assert_eq!(&io::read_csr(&bytes[..]).unwrap(), dag.csr());
    }

    #[test]
    fn per_edge_supports_sum_to_count(raw in raw_edges()) {
        let (g, _) = clean_edges(&raw);
        let dag = orient(&g, Orientation::ById);
        let supports = cpu_ref::per_edge_supports(&dag);
        prop_assert_eq!(supports.len() as u64, dag.num_edges());
        prop_assert_eq!(supports.iter().sum::<u64>(), cpu_ref::node_iterator(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn intersection_primitives_agree_with_sets(
        mut a in prop::collection::btree_set(0u32..200, 0..40),
        mut b in prop::collection::btree_set(0u32..200, 0..40),
        buckets in 1usize..64,
    ) {
        let a: Vec<u32> = std::mem::take(&mut a).into_iter().collect();
        let b: Vec<u32> = std::mem::take(&mut b).into_iter().collect();
        let expected = a.iter().filter(|x| b.contains(x)).count() as u64;
        prop_assert_eq!(cpu_ref::intersect_merge(&a, &b), expected);
        prop_assert_eq!(cpu_ref::intersect_binsearch(&a, &b), expected);
        prop_assert_eq!(cpu_ref::intersect_hash(&a, &b, buckets), expected);
        prop_assert_eq!(cpu_ref::intersect_bitmap(&a, &b, 200), expected);
    }
}
