/root/repo/target/debug/examples/quickstart-33ebfdcbe1465cb3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-33ebfdcbe1465cb3: examples/quickstart.rs

examples/quickstart.rs:
