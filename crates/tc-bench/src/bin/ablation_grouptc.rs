//! Ablation bench for GroupTC's design choices (DESIGN.md experiment
//! index): each of the three Section V optimizations toggled off
//! individually, plus a chunk-size sweep — all verified-exact runs.

use tc_algos::api::TcAlgorithm;
use tc_core::framework::report::{extract, wall_summary, MatrixView};
use tc_core::{GroupTc, GroupTcConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = if args.is_empty() {
        tc_bench::datasets_from_args(&["--medium".to_string()]).unwrap()
    } else {
        tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };

    // Named variants: the display name comes from meta(), so wrap each in
    // a renaming shim.
    struct Named(&'static str, GroupTc);
    impl TcAlgorithm for Named {
        fn name(&self) -> &'static str {
            self.0
        }
        fn meta(&self) -> tc_algos::api::AlgoMeta {
            self.1.meta()
        }
        fn count(
            &self,
            dev: &gpu_sim::Device,
            mem: &mut gpu_sim::DeviceMem,
            g: &tc_algos::device_graph::DeviceGraph,
        ) -> Result<tc_algos::api::TcOutput, gpu_sim::SimError> {
            self.1.count(dev, mem, g)
        }
    }

    let algos: Vec<Box<dyn TcAlgorithm>> = vec![
        Box::new(Named("full", GroupTc::default())),
        Box::new(Named("no-partial-2hop", GroupTc::without_partial_two_hop())),
        Box::new(Named("no-resume", GroupTc::without_resume_offset())),
        Box::new(Named("no-flip", GroupTc::without_flip_tables())),
        Box::new(Named(
            "chunk-64",
            GroupTc::new(GroupTcConfig {
                chunk_size: 64,
                ..Default::default()
            }),
        )),
        Box::new(Named(
            "chunk-1024",
            GroupTc::new(GroupTcConfig {
                chunk_size: 1024,
                ..Default::default()
            }),
        )),
    ];
    let records = tc_bench::sweep(&algos, &datasets);
    eprintln!("[tc-bench] {}", wall_summary(&records, 3));
    assert!(
        records.iter().all(|r| r.is_verified()),
        "every ablation variant must stay exact"
    );
    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure("GroupTC ablations (modelled ms)", extract::time_ms)
    );
    println!(
        "{}",
        view.render_figure(
            "GroupTC ablations (global load requests)",
            extract::load_requests
        )
    );
}
