/root/repo/target/debug/deps/fig13b-ae970cf03266040e.d: crates/tc-bench/src/bin/fig13b.rs

/root/repo/target/debug/deps/libfig13b-ae970cf03266040e.rmeta: crates/tc-bench/src/bin/fig13b.rs

crates/tc-bench/src/bin/fig13b.rs:
