/root/repo/target/debug/deps/fig11-66c077232512f7d3.d: crates/tc-bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-66c077232512f7d3.rmeta: crates/tc-bench/src/bin/fig11.rs Cargo.toml

crates/tc-bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
