//! The framework's data-transformation tools: read any supported edge
//! format, clean it, and write all three formats back out — the
//! preprocessing step that feeds "datasets from different sources to
//! different ITC implementations" (Section IV).
//!
//! ```sh
//! cargo run --release --example format_convert <input> <output-dir>
//! ```
//!
//! Without arguments, a demo graph is generated and converted in a
//! temporary directory.

use std::fs::File;
use std::path::PathBuf;

use tc_compare::graph::{clean_edges, gen, io, orient, EdgeList, Orientation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (raw, out_dir): (EdgeList, PathBuf) = match args.as_slice() {
        [input, out] => (io::read_edges_auto(File::open(input)?)?, PathBuf::from(out)),
        [] => {
            let dir = std::env::temp_dir().join("tc-compare-convert-demo");
            (gen::rmat(12, 40_000, 0.57, 0.19, 0.19, 0.05, 1), dir)
        }
        _ => {
            eprintln!("usage: format_convert [<input> <output-dir>]");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&out_dir)?;

    let (graph, report) = clean_edges(&raw);
    println!(
        "cleaned: {} -> {} edges ({} self-loops, {} duplicates, {} isolated vertices removed)",
        report.input_edges,
        report.final_edges,
        report.removed_self_loops,
        report.removed_duplicates,
        report.removed_isolated_vertices
    );

    // Text edge list.
    let cleaned = EdgeList::new(graph.undirected_edges().collect());
    let text_path = out_dir.join("edges.txt");
    io::write_snap_text(File::create(&text_path)?, &cleaned)?;

    // Binary edge list.
    let bin_path = out_dir.join("edges.bin");
    io::write_binary_edges(File::create(&bin_path)?, &cleaned)?;

    // Oriented CSR (what the GPU kernels consume).
    let dag = orient(&graph, Orientation::DegreeAsc);
    let csr_path = out_dir.join("graph.csr");
    io::write_csr(File::create(&csr_path)?, dag.csr())?;

    for p in [&text_path, &bin_path, &csr_path] {
        println!(
            "wrote {} ({} bytes)",
            p.display(),
            std::fs::metadata(p)?.len()
        );
    }

    // Round-trip check through the auto-detecting reader.
    let back = io::read_edges_auto(File::open(&bin_path)?)?;
    assert_eq!(back, cleaned, "binary round-trip must be lossless");
    println!("round-trip verified");
    Ok(())
}
