/root/repo/target/debug/deps/grouptc-e84957a5ec0b2882.d: crates/tc-bench/benches/grouptc.rs Cargo.toml

/root/repo/target/debug/deps/libgrouptc-e84957a5ec0b2882.rmeta: crates/tc-bench/benches/grouptc.rs Cargo.toml

crates/tc-bench/benches/grouptc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
