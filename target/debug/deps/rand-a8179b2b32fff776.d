/root/repo/target/debug/deps/rand-a8179b2b32fff776.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a8179b2b32fff776.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
