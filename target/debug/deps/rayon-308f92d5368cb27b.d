/root/repo/target/debug/deps/rayon-308f92d5368cb27b.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-308f92d5368cb27b.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
