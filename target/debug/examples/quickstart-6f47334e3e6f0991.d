/root/repo/target/debug/examples/quickstart-6f47334e3e6f0991.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6f47334e3e6f0991: examples/quickstart.rs

examples/quickstart.rs:
