/root/repo/target/debug/deps/fig12-046c5c8c6dd5b080.d: crates/tc-bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-046c5c8c6dd5b080.rmeta: crates/tc-bench/src/bin/fig12.rs Cargo.toml

crates/tc-bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
