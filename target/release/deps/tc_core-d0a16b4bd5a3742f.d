/root/repo/target/release/deps/tc_core-d0a16b4bd5a3742f.d: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs

/root/repo/target/release/deps/libtc_core-d0a16b4bd5a3742f.rlib: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs

/root/repo/target/release/deps/libtc_core-d0a16b4bd5a3742f.rmeta: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs

crates/tc-core/src/lib.rs:
crates/tc-core/src/framework/mod.rs:
crates/tc-core/src/framework/claims.rs:
crates/tc-core/src/framework/csv.rs:
crates/tc-core/src/framework/registry.rs:
crates/tc-core/src/framework/report.rs:
crates/tc-core/src/framework/runner.rs:
crates/tc-core/src/grouptc.rs:
crates/tc-core/src/grouptc_hybrid.rs:
