//! GroupTC-H — the paper's stated future work, implemented.
//!
//! Section VI: *"The primary factor contributing to GroupTC's slightly
//! slower performance on large datasets compared to TRUST is the slower
//! search time of the binary search when compared to a hash table
//! lookup. In our upcoming research, we will focus on developing an
//! algorithm specifically designed to address this bottleneck."*
//!
//! GroupTC-H routes each edge by its intersection shape:
//!
//! * **light edges** (small search table, where a log-factor is cheap
//!   and table tops stay cached) run through the unmodified chunked
//!   GroupTC kernel, restricted to the light subset via an edge-id
//!   indirection;
//! * **heavy edges** (table of [`HASH_TABLE_MIN`]+ entries probed by
//!   [`HASH_KEYS_MIN`]+ keys — exactly where `log2(table)` dwarfs a
//!   hash lookup) go to a warp-per-edge kernel that builds a 256-bucket
//!   shared-memory hash table from the shorter side and probes with the
//!   longer, H-INDEX-style. Overflowing buckets fall back to binary
//!   search for that edge, so the count stays exact.

use gpu_sim::{Device, DeviceMem, KernelConfig, LaunchStats, SimError};
use tc_algos::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use tc_algos::device_graph::DeviceGraph;
use tc_algos::util::{bsearch_global, warp_reduce_add};

use crate::grouptc::{run_chunked, GroupTcConfig};

/// Minimum search-table length for the hash path.
pub const HASH_TABLE_MIN: u32 = 256;
/// Minimum key count for the hash path (few keys can't amortize the
/// table build).
pub const HASH_KEYS_MIN: u32 = 32;

const BUCKETS: u32 = 256;
/// Rows per bucket in shared memory; deeper buckets trigger the exact
/// binary-search fallback.
const ROWS: u32 = 16;

/// The hybrid GroupTC + hash algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct GroupTcHybrid {
    pub config: GroupTcConfig,
}

impl GroupTcHybrid {
    pub fn new(config: GroupTcConfig) -> Self {
        GroupTcHybrid { config }
    }

    /// Host-side split (launch planning): (light edge ids, heavy edge
    /// ids) under the same table-flipping rule the kernels apply.
    pub fn split_edges(&self, g: &DeviceGraph) -> (Vec<u32>, Vec<u32>) {
        let mut light = Vec::new();
        let mut heavy = Vec::new();
        for e in g.edge_lo..g.edge_hi {
            let u = g.host_src[e as usize];
            let v = g.host_dst[e as usize];
            let u_end = g.host_offsets[u as usize + 1];
            let su_len = if self.config.partial_two_hop {
                u_end - (e + 1)
            } else {
                u_end - g.host_offsets[u as usize]
            };
            let v_len = g.host_out_degree(v);
            let take_u = !self.config.flip_tables || su_len * 2 >= v_len;
            let (k_len, t_len) = if take_u {
                (v_len, su_len)
            } else {
                (su_len, v_len)
            };
            if t_len >= HASH_TABLE_MIN && k_len >= HASH_KEYS_MIN {
                heavy.push(e);
            } else {
                light.push(e);
            }
        }
        (light, heavy)
    }
}

impl TcAlgorithm for GroupTcHybrid {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "GroupTC-H",
            reference: "this reproduction; the paper's Section VI future work",
            year: 2024,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Hash,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let (light, heavy) = self.split_edges(g);
        let counter = mem.alloc_zeroed(1, "grouptc_h.counter")?;
        let mut stats = LaunchStats::default();
        if !light.is_empty() {
            if light.len() as u32 == g.owned_edges() {
                stats += run_chunked(dev, mem, g, self.config, None, counter)?;
            } else {
                let ids = mem.alloc_from_slice(&light, "grouptc_h.light_ids")?;
                stats += run_chunked(
                    dev,
                    mem,
                    g,
                    self.config,
                    Some((ids, light.len() as u32)),
                    counter,
                )?;
                mem.free(ids)?;
            }
        }
        if !heavy.is_empty() {
            let ids = mem.alloc_from_slice(&heavy, "grouptc_h.heavy_ids")?;
            stats += hash_pass(dev, mem, g, self.config, ids, heavy.len() as u32, counter)?;
            mem.free(ids)?;
        }
        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: the same light/heavy routing as the device split —
    /// edges whose search table clears the hash thresholds intersect via
    /// a chained hash, the rest via binary search.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        tc_algos::cpu::par_edge_adaptive_hash(dag, HASH_TABLE_MIN, HASH_KEYS_MIN, BUCKETS as usize)
    }
}

/// Warp-per-heavy-edge hash kernel: build a 256-bucket table from the
/// shorter side in shared memory, probe with the longer side, coalesced.
fn hash_pass(
    dev: &Device,
    mem: &DeviceMem,
    g: &DeviceGraph,
    cfg: GroupTcConfig,
    edge_ids: gpu_sim::BufId,
    n_edges: u32,
    counter: gpu_sim::BufId,
) -> Result<LaunchStats, SimError> {
    let grid = (24 * dev.config().num_sms).min(n_edges.max(1));
    let rounds = n_edges.div_ceil(grid);
    // len[256] + ROWS rows of 256 + overflow flag.
    let shared_words = BUCKETS * (1 + ROWS) + 1;
    let overflow_flag = (BUCKETS * (1 + ROWS)) as usize;
    let launch = KernelConfig::new(grid, 32).with_shared_words(shared_words);

    // Resolve the (key, table) sides exactly as the chunked kernel does.
    let sides = move |lane: &mut gpu_sim::LaneCtx, e: u32| -> (u32, u32, u32, u32) {
        let u = lane.ld_global(g.edge_src, e as usize);
        let v = lane.ld_global(g.edge_dst, e as usize);
        let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
        let (su_base, su_len) = if cfg.partial_two_hop {
            (e + 1, u_end - (e + 1))
        } else {
            let u_base = lane.ld_global(g.row_offsets, u as usize);
            (u_base, u_end - u_base)
        };
        let v_base = lane.ld_global(g.row_offsets, v as usize);
        let v_len = lane.ld_global(g.row_offsets, v as usize + 1) - v_base;
        lane.compute(1);
        let take_u = !cfg.flip_tables || su_len * 2 >= v_len;
        if take_u {
            (v_base, v_len, su_base, su_len)
        } else {
            (su_base, su_len, v_base, v_len)
        }
    };

    dev.launch(mem, launch, |blk| {
        let bidx = blk.block_idx();
        let mut locals = [0u32; 32];
        for round in 0..rounds {
            let i = bidx + round * grid;
            // Clear bucket lengths + flag.
            blk.phase(|lane| {
                let mut b = lane.tid();
                while b < BUCKETS {
                    lane.st_shared(b as usize, 0);
                    b += 32;
                }
                if lane.tid() == 0 {
                    lane.st_shared(overflow_flag, 0);
                }
            });
            // Build the table from the *table* side (the hash replaces
            // the binary search over it).
            blk.phase(|lane| {
                if i >= n_edges {
                    return;
                }
                let e = lane.ld_global(edge_ids, i as usize);
                let (_, _, t_base, t_len) = sides(lane, e);
                let mut k = lane.lane_id();
                while k < t_len {
                    let x = lane.ld_global(g.col_indices, (t_base + k) as usize);
                    let bucket = x % BUCKETS;
                    lane.compute(1);
                    let row = lane.atomic_add_shared(bucket as usize, 1);
                    if row < ROWS {
                        lane.st_shared((BUCKETS + row * BUCKETS + bucket) as usize, x);
                    } else {
                        lane.st_shared(overflow_flag, 1);
                    }
                    lane.converge();
                    k += 32;
                }
            });
            // Probe with the key side.
            blk.phase(|lane| {
                if i >= n_edges {
                    return;
                }
                let e = lane.ld_global(edge_ids, i as usize);
                let (k_base, k_len, t_base, t_len) = sides(lane, e);
                let overflowed = lane.ld_shared(overflow_flag) != 0;
                let mut cnt = 0u32;
                let mut k = lane.lane_id();
                while k < k_len {
                    let key = lane.ld_global(g.col_indices, (k_base + k) as usize);
                    let hit = if overflowed {
                        bsearch_global(lane, g.col_indices, t_base, t_base + t_len, key)
                    } else {
                        let bucket = key % BUCKETS;
                        lane.compute(1);
                        let len = lane.ld_shared(bucket as usize);
                        let mut found = false;
                        for row in 0..len.min(ROWS) {
                            let x = lane.ld_shared((BUCKETS + row * BUCKETS + bucket) as usize);
                            lane.compute(1);
                            if x == key {
                                found = true;
                                break;
                            }
                        }
                        found
                    };
                    if hit {
                        cnt += 1;
                    }
                    lane.converge();
                    k += 32;
                }
                locals[lane.tid() as usize] += cnt;
            });
        }
        blk.phase(|lane| {
            warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_data::{clean_edges, cpu_ref, gen, orient, Orientation};
    use tc_algos::testutil;

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&GroupTcHybrid::default());
    }

    /// A graph guaranteed to exercise the hash path: two interconnected
    /// hub clusters give edges whose flipped table exceeds the threshold.
    fn heavy_fixture() -> graph_data::DagGraph {
        let raw = gen::barabasi_albert(4000, 40, 0.4, 99);
        let (g, _) = clean_edges(&raw);
        orient(&g, Orientation::DegreeDesc)
    }

    #[test]
    fn hash_path_is_exercised_and_exact() {
        let dag = heavy_fixture();
        let dev = gpu_sim::Device::v100();
        let mut mem = gpu_sim::DeviceMem::new(&dev);
        let dg = tc_algos::device_graph::DeviceGraph::upload(&dag, &mut mem).unwrap();
        let hybrid = GroupTcHybrid::default();
        let (light, heavy) = hybrid.split_edges(&dg);
        assert!(!heavy.is_empty(), "fixture must produce heavy edges");
        assert_eq!(light.len() + heavy.len(), dg.num_edges as usize);
        let out = hybrid.count(&dev, &mut mem, &dg).unwrap();
        assert_eq!(out.triangles, cpu_ref::forward_merge(&dag));
    }

    #[test]
    fn agrees_with_grouptc_everywhere() {
        for seed in [1u64, 2, 3] {
            let raw = gen::rmat(12, 40_000, 0.57, 0.19, 0.19, 0.05, seed);
            let (g, _) = clean_edges(&raw);
            let dag = orient(&g, Orientation::DegreeAsc);
            let expected = cpu_ref::forward_merge(&dag);
            assert_eq!(
                testutil::run_on_dag(&GroupTcHybrid::default(), &dag),
                expected
            );
        }
    }

    #[test]
    fn split_is_stable_and_partitioning() {
        let dag = heavy_fixture();
        let dev = gpu_sim::Device::v100();
        let mut mem = gpu_sim::DeviceMem::new(&dev);
        let dg = tc_algos::device_graph::DeviceGraph::upload(&dag, &mut mem).unwrap();
        let hybrid = GroupTcHybrid::default();
        let (l1, h1) = hybrid.split_edges(&dg);
        let (l2, h2) = hybrid.split_edges(&dg);
        assert_eq!(l1, l2);
        assert_eq!(h1, h2);
        // No edge in both lists.
        let mut all: Vec<u32> = l1.iter().chain(h1.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), dg.num_edges as usize);
    }
}
