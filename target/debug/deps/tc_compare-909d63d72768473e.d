/root/repo/target/debug/deps/tc_compare-909d63d72768473e.d: src/lib.rs

/root/repo/target/debug/deps/tc_compare-909d63d72768473e: src/lib.rs

src/lib.rs:
