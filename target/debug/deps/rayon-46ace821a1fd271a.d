/root/repo/target/debug/deps/rayon-46ace821a1fd271a.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-46ace821a1fd271a.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-46ace821a1fd271a.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
