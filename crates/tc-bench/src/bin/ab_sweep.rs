//! Measurement-only overlay for interleaved A/B perf comparisons:
//! serial sweeps over the selected datasets, per-cell minimum wall time
//! across `--reps` repetitions. Run it alternately from two builds (the
//! A side and the B side) on one machine and compare the emitted
//! schema-v1 bench JSON — wall times from different machines are never
//! comparable, which is why this tool exists separately from
//! `bench_sweep` and refuses statistically meaningless rep counts.
//!
//! ```sh
//! cargo run --release -p tc-bench --bin ab_sweep -- \
//!     [dataset-name... | --small | --medium] [--reps N] \
//!     [--algos NAME[,NAME...]] [--bench-json PATH]
//! ```
//!
//! Per-cell results go to stdout as CSV
//! (`algorithm,dataset,wall_ms,kernel_cycles`); `--bench-json` writes
//! the same cells as a schema-v1 file (see `tc_bench::bench_json`) so
//! the two sides of an A/B run are machine-comparable.

use std::time::Instant;

use tc_bench::bench_json::{self, BenchCell};
use tc_bench::{datasets_from_args, eprint_progress, sweep_serial};
use tc_core::framework::registry::all_algorithms;

fn main() -> Result<(), String> {
    let mut reps: u32 = 3;
    let mut json_path: Option<String> = None;
    let mut algo_filter: Option<Vec<String>> = None;
    let mut dataset_args: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--algos" => {
                let list = args.next().ok_or("--algos needs a comma-separated list")?;
                algo_filter = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--bench-json" => {
                json_path = Some(args.next().ok_or("--bench-json needs a path")?);
            }
            other => dataset_args.push(other.to_string()),
        }
    }
    if reps < 3 {
        return Err(format!(
            "--reps {reps} is too few for an A/B comparison: a single wall-time \
             sample is dominated by scheduler and cache noise, and the per-cell \
             minimum only sheds it with at least 3 repetitions (pass --reps 3 \
             or more)"
        ));
    }
    if dataset_args.is_empty() {
        dataset_args.push("Wiki-Talk".to_string());
    }
    let datasets = datasets_from_args(&dataset_args)?;

    let mut algos = all_algorithms();
    if let Some(names) = &algo_filter {
        let known: Vec<String> = algos.iter().map(|a| a.name().to_string()).collect();
        for name in names {
            if !known.iter().any(|k| k.eq_ignore_ascii_case(name)) {
                return Err(format!(
                    "unknown algorithm `{name}` (registered: {})",
                    known.join(", ")
                ));
            }
        }
        algos.retain(|a| names.iter().any(|n| n.eq_ignore_ascii_case(a.name())));
    }

    eprint_progress(&format!(
        "ab_sweep: {} algorithms x {} datasets, {reps} reps, serial",
        algos.len(),
        datasets.len(),
    ));
    let total_started = Instant::now();
    let mut cells = BenchCell::from_records(&sweep_serial(&algos, &datasets));
    for rep in 1..reps {
        eprint_progress(&format!("rep {}/{reps}", rep + 1));
        BenchCell::merge_min_wall(&mut cells, &sweep_serial(&algos, &datasets));
    }
    let total_wall_ms = total_started.elapsed().as_secs_f64() * 1e3;

    for c in &cells {
        println!(
            "{},{},{:.3},{}",
            c.algorithm, c.dataset, c.wall_ms, c.kernel_cycles
        );
    }
    if let Some(path) = json_path {
        let text = bench_json::render("V100", reps, total_wall_ms, &cells);
        bench_json::validate(&text).map_err(|e| format!("internal: emitted bad JSON: {e}"))?;
        std::fs::write(&path, &text).map_err(|e| format!("write {path}: {e}"))?;
        eprint_progress(&format!("wrote {path}"));
    }
    Ok(())
}
