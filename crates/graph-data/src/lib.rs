//! # graph-data — graph substrate for the TC-Compare reproduction
//!
//! Everything the paper's evaluation framework needs around the GPU
//! kernels themselves:
//!
//! * [`types`] — CSR storage, the cleaned undirected graph type, and the
//!   [`types::CsrAccess`] trait the pipeline is generic over.
//! * [`chunked`] — out-of-core CSR: arrays spilled to a versioned file
//!   and served through a bounded LRU chunk cache.
//! * [`clean`] — the paper's data-cleaning pipeline (drop self-loops,
//!   duplicate edges and isolated vertices; Section IV "Datasets").
//! * [`orient`] — DAG orientations (by ID, by degree) used by the
//!   intersection-based counters so each triangle is found exactly once.
//! * [`io`] — SNAP text and binary edge-list formats plus auto-detection
//!   (the paper's "data transformation tools").
//! * [`gen`] — synthetic graph generators (RMAT, Barabási–Albert with
//!   triad formation, Erdős–Rényi, 2-D road grids, Watts–Strogatz).
//! * [`datasets`] — the 19-dataset registry mirroring Table II with
//!   scaled-down synthetic stand-ins.
//! * [`cpu_ref`] — exact CPU triangle counters (merge, binary-search,
//!   hash, bitmap, node-iterator, matrix-multiplication and
//!   subgraph-matching baselines) used as ground truth.

pub mod chunked;
pub mod clean;
pub mod cpu_ref;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod kcore;
pub mod orient;
pub mod stats;
pub mod types;

pub use chunked::{ChunkCacheConfig, ChunkCacheStats, ChunkedCsr};
pub use clean::{clean_edges, CleanReport};
pub use datasets::{DatasetSpec, SizeClass, TABLE2_DATASETS};
pub use kcore::{core_decomposition, CoreDecomposition};
pub use orient::{orient, orient_access, DagGraph, Orientation};
pub use stats::GraphStats;
pub use types::{materialize_csr, Csr, CsrAccess, EdgeList, UndirGraph, VertexId};
