/root/repo/target/debug/deps/simulator_behavior-45d4bca7ed11912f.d: tests/simulator_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_behavior-45d4bca7ed11912f.rmeta: tests/simulator_behavior.rs Cargo.toml

tests/simulator_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
