/root/repo/target/debug/deps/criterion-842527a7df0abf08.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-842527a7df0abf08.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
