/root/repo/target/debug/deps/ablation_grouptc-23f40fc4c6d138db.d: crates/tc-bench/src/bin/ablation_grouptc.rs

/root/repo/target/debug/deps/ablation_grouptc-23f40fc4c6d138db: crates/tc-bench/src/bin/ablation_grouptc.rs

crates/tc-bench/src/bin/ablation_grouptc.rs:
