/root/repo/target/debug/deps/tc_compare-06a023cc859dd7ac.d: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-06a023cc859dd7ac.rlib: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-06a023cc859dd7ac.rmeta: src/lib.rs

src/lib.rs:
