/root/repo/target/debug/deps/fig12-db2077ea78f3c30a.d: crates/tc-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-db2077ea78f3c30a: crates/tc-bench/src/bin/fig12.rs

crates/tc-bench/src/bin/fig12.rs:
