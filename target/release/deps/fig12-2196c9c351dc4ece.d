/root/repo/target/release/deps/fig12-2196c9c351dc4ece.d: crates/tc-bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-2196c9c351dc4ece: crates/tc-bench/src/bin/fig12.rs

crates/tc-bench/src/bin/fig12.rs:
