/root/repo/target/debug/deps/fig13a-63bd6cfb4368d8ff.d: crates/tc-bench/src/bin/fig13a.rs

/root/repo/target/debug/deps/fig13a-63bd6cfb4368d8ff: crates/tc-bench/src/bin/fig13a.rs

crates/tc-bench/src/bin/fig13a.rs:
