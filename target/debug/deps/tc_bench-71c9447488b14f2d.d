/root/repo/target/debug/deps/tc_bench-71c9447488b14f2d.d: crates/tc-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtc_bench-71c9447488b14f2d.rmeta: crates/tc-bench/src/lib.rs Cargo.toml

crates/tc-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
