use crate::counters::ProfileCounters;
use crate::device::Device;
use crate::lint::{BarrierLint, LintObserver};
use crate::mem::{BufId, Buffer, DeviceMem};
use crate::race::{Access, RaceTracker};
use crate::sanitize::{SanTracker, ShadowAccess};
use crate::trace::{LaneTrace, Op, PackedOp, TAG_COMPUTE, TAG_CONVERGE, TAG_SATOMIC};
use crate::{CostModel, SimError, SHARED_BANKS, WARP_SIZE};

/// Launch geometry: `grid_dim` blocks of `block_dim` threads, each block
/// carrying `shared_words` words of shared memory — plus the per-launch
/// data-race-detection and sanitizer toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    pub grid_dim: u32,
    pub block_dim: u32,
    pub shared_words: u32,
    /// Run this launch under the phase-based data-race detector (see
    /// `gpu_sim::race`). Off by default so benchmark launches pay ~zero
    /// cost (a single predictable branch per access); the detector is
    /// also forced on for every launch on a
    /// [`Device::with_race_detection`] device.
    pub race_detect: bool,
    /// Run this launch under SimSan (see `gpu_sim::sanitize`): shadow
    /// tracking for uninit-read, use-after-free and redzone accesses.
    /// Off by default like `race_detect`; also forced on for every
    /// launch on a [`Device::with_sanitizer`] device.
    pub sanitize: bool,
    /// Replay with the retained two-pass engine: record every lane of
    /// the block into block-lifetime traces, then replay them all at the
    /// barrier — the pre-fusion execution order, kept as a debug /
    /// differential reference. Off by default: the fused engine replays
    /// each warp the moment its 32 lanes finish a phase, so trace words
    /// are consumed while still cache-hot. Both engines are
    /// bit-identical by construction (same lane order, same replay
    /// rules); `tests/fused_vs_twopass.rs` locks that equivalence. Also
    /// forced on for every launch on a [`Device::with_retained_trace`]
    /// device.
    pub retained_trace: bool,
    /// Run this launch under SimLint (see `gpu_sim::lint`): the
    /// barrier-divergence verifier plus the performance lint pass that
    /// watches the replay stream for uncoalesced access, bank-conflict,
    /// atomic-contention and low-occupancy hotspots. Off by default like
    /// the other analyses; also forced on for every launch on a
    /// [`Device::with_lints`] device. Zero-perturbation: lint observers
    /// only read values the replay already computed, so counters and
    /// cycles are byte-identical with lints on or off.
    pub lint: bool,
}

impl KernelConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        KernelConfig {
            grid_dim,
            block_dim,
            shared_words: 0,
            race_detect: false,
            sanitize: false,
            retained_trace: false,
            lint: false,
        }
    }

    pub fn with_shared_words(mut self, words: u32) -> Self {
        self.shared_words = words;
        self
    }

    /// Toggle the data-race detector for this launch.
    pub fn with_race_detection(mut self, on: bool) -> Self {
        self.race_detect = on;
        self
    }

    /// Toggle SimSan for this launch.
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Toggle the retained two-pass trace engine for this launch (see
    /// [`KernelConfig::retained_trace`]).
    pub fn with_retained_trace(mut self, on: bool) -> Self {
        self.retained_trace = on;
        self
    }

    /// Toggle SimLint for this launch.
    pub fn with_lints(mut self, on: bool) -> Self {
        self.lint = on;
        self
    }
}

/// `blockIdx.x * blockDim.x + threadIdx.x`, widened to `u64` *before* the
/// multiply. Launches of more than `u32::MAX / block_dim` blocks are
/// legal (CUDA grids go to 2^31-1 blocks), and edge-per-thread kernels on
/// billion-edge graphs index with exactly this product — in `u32` it
/// wraps and silently aliases distant threads onto the same edges.
#[inline]
pub fn global_thread_id(block_idx: u32, block_dim: u32, tid: u32) -> u64 {
    block_idx as u64 * block_dim as u64 + tid as u64
}

/// Reusable per-worker arena for block execution. One `BlockScratch`
/// lives per rayon worker (via `map_init`) and is recycled across every
/// block that worker simulates, so the steady-state record/replay loop
/// performs no heap allocation: lane traces keep their `Vec<Op>`
/// capacity, and the shared/L1/cursor buffers are `clear()`+`resize()`d
/// in place.
///
/// Under the default fused engine `traces` holds one warp's worth of
/// lane buffers (≤ 32), recycled across every warp of every phase —
/// that tiny working set is what keeps trace words L1-resident between
/// record and replay. The retained engine sizes it to the full
/// `block_dim` instead.
#[derive(Default)]
pub struct BlockScratch {
    shared: Vec<u32>,
    traces: Vec<LaneTrace>,
    l1: Vec<u64>,
    replay: ReplayScratch,
    /// Per-lane retirement flags (see [`LaneCtx::retire`]): a retired
    /// lane is skipped by every later phase of its block.
    retired: Vec<bool>,
}

impl BlockScratch {
    fn reset(&mut self, shared_words: usize, trace_lanes: usize, l1_len: usize, block_dim: usize) {
        self.shared.clear();
        self.shared.resize(shared_words, 0);
        // Keep the per-lane op buffers (the hot allocation) alive across
        // blocks; only their lengths reset.
        self.traces.truncate(trace_lanes);
        for t in &mut self.traces {
            t.clear();
        }
        self.traces.resize_with(trace_lanes, LaneTrace::default);
        self.l1.clear();
        self.l1.resize(l1_len, u64::MAX);
        self.retired.clear();
        self.retired.resize(block_dim, false);
    }
}

/// The consumer side of the record/replay split: lanes *generate*
/// `PackedOp` words into buffers the sink hands out, and the sink
/// decides when those buffers are *consumed* (replayed into cycles and
/// counters). The two implementations differ only in consumption
/// timing, never in replay rules, so their results are bit-identical:
///
/// * [`FusedSink`] (default) replays each warp's slice of the phase the
///   moment its ≤ 32 lanes finish recording it, then immediately
///   recycles the same 32 buffers for the next warp. Trace words are
///   written and read back while still cache-hot, and no block-lifetime
///   trace ever exists.
/// * [`RetainedSink`] keeps one buffer per lane of the block and
///   replays them all at the phase barrier — the original two-pass
///   engine, preserved behind [`KernelConfig::retained_trace`] as the
///   differential reference.
///
/// The race detector and SimSan are *not* sink clients: they hook the
/// record side (checks run at access time inside [`LaneCtx`]) and are
/// phase-scoped via their own `end_phase`, so they see the exact same
/// access interleaving under either sink.
pub(crate) trait PhaseSink {
    /// The buffer lane `tid` records the current phase into. The fused
    /// sink maps `tid` to its warp-local slot; the retained sink to the
    /// lane's block-lifetime trace.
    fn lane_trace(&mut self, tid: u32) -> &mut LaneTrace;

    /// All lanes of one warp have finished recording the current phase
    /// (called in warp order). The fused sink replays and recycles its
    /// warp buffers here; the retained sink does nothing.
    fn warp_complete(&mut self);

    /// Block-wide barrier: the phase is over. Folds the phase's cycle
    /// cost (max over the block's warps — they run concurrently, the
    /// barrier waits for the slowest) into the block total. The
    /// retained sink replays every lane trace here first.
    fn end_phase(&mut self);

    /// The block is done: yield its accumulated (cycles, counters).
    fn finish(&mut self) -> (u64, ProfileCounters);
}

/// Streaming sink: replay each warp phase as soon as it is recorded.
pub(crate) struct FusedSink<'a> {
    /// One buffer per warp lane (≤ 32), shared by every warp in turn.
    traces: &'a mut [LaneTrace],
    replay: &'a mut ReplayScratch,
    cost: CostModel,
    counters: ProfileCounters,
    cycles: u64,
    /// Max replay cycles over the warps seen so far this phase.
    phase_cycles: u64,
    /// SimLint performance observer (`Some` when the launch enabled
    /// lints): fed per replay slot, phase-advanced at the barrier. Both
    /// sinks replay a phase's warps in the same order and advance the
    /// observer at the same point, so the reports are engine-identical.
    lint: Option<&'a mut LintObserver>,
}

impl<'a> FusedSink<'a> {
    fn new(
        traces: &'a mut [LaneTrace],
        replay: &'a mut ReplayScratch,
        cost: CostModel,
        lint: Option<&'a mut LintObserver>,
    ) -> Self {
        FusedSink {
            traces,
            replay,
            cost,
            counters: ProfileCounters::default(),
            cycles: 0,
            phase_cycles: 0,
            lint,
        }
    }
}

impl PhaseSink for FusedSink<'_> {
    #[inline]
    fn lane_trace(&mut self, tid: u32) -> &mut LaneTrace {
        &mut self.traces[tid as usize % WARP_SIZE]
    }

    fn warp_complete(&mut self) {
        let (cycles, counters) = replay_warp(
            self.traces,
            &self.cost,
            self.replay,
            self.lint.as_deref_mut(),
        );
        self.phase_cycles = self.phase_cycles.max(cycles);
        self.counters += counters;
        for t in self.traces.iter_mut() {
            t.clear();
        }
    }

    fn end_phase(&mut self) {
        self.cycles += self.phase_cycles;
        self.phase_cycles = 0;
        if let Some(obs) = self.lint.as_deref_mut() {
            obs.end_phase(
                self.counters.issued_slots,
                self.counters.active_thread_slots,
            );
        }
    }

    fn finish(&mut self) -> (u64, ProfileCounters) {
        (self.cycles, self.counters)
    }
}

/// Two-pass sink: record the whole block, replay at the barrier.
pub(crate) struct RetainedSink<'a> {
    /// One block-lifetime buffer per lane of the block.
    traces: &'a mut [LaneTrace],
    replay: &'a mut ReplayScratch,
    cost: CostModel,
    counters: ProfileCounters,
    cycles: u64,
    /// SimLint performance observer, fed exactly like [`FusedSink`]'s:
    /// same warp order, same phase-advance point, identical reports.
    lint: Option<&'a mut LintObserver>,
}

impl<'a> RetainedSink<'a> {
    fn new(
        traces: &'a mut [LaneTrace],
        replay: &'a mut ReplayScratch,
        cost: CostModel,
        lint: Option<&'a mut LintObserver>,
    ) -> Self {
        RetainedSink {
            traces,
            replay,
            cost,
            counters: ProfileCounters::default(),
            cycles: 0,
            lint,
        }
    }
}

impl PhaseSink for RetainedSink<'_> {
    #[inline]
    fn lane_trace(&mut self, tid: u32) -> &mut LaneTrace {
        &mut self.traces[tid as usize]
    }

    fn warp_complete(&mut self) {}

    fn end_phase(&mut self) {
        let mut phase_cycles = 0u64;
        for warp in self.traces.chunks(WARP_SIZE) {
            let (cycles, counters) =
                replay_warp(warp, &self.cost, self.replay, self.lint.as_deref_mut());
            phase_cycles = phase_cycles.max(cycles);
            self.counters += counters;
        }
        self.cycles += phase_cycles;
        for t in self.traces.iter_mut() {
            t.clear();
        }
        if let Some(obs) = self.lint.as_deref_mut() {
            obs.end_phase(
                self.counters.issued_slots,
                self.counters.active_thread_slots,
            );
        }
    }

    fn finish(&mut self) -> (u64, ProfileCounters) {
        (self.cycles, self.counters)
    }
}

/// Per-block execution context handed to the kernel closure.
///
/// A kernel structures its work as a sequence of [`BlockCtx::phase`]
/// calls; each phase runs every lane of the block to completion (in lane
/// order) and ends with an implicit block-wide barrier. Lane traces are
/// replayed warp-by-warp for profiling and timing — by default the
/// moment each warp finishes recording its slice of the phase (see
/// [`PhaseSink`]). All growable state lives in the borrowed
/// [`BlockScratch`] arena.
pub struct BlockCtx<'a> {
    mem: &'a DeviceMem,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    shared: &'a mut Vec<u32>,
    /// Consumes recorded ops: hands out recording buffers and replays
    /// them (per warp when fused, per phase when retained).
    sink: &'a mut dyn PhaseSink,
    /// Phase-based data-race detector (`Some` when the launch enabled
    /// detection): records this block's shared and plain-global accesses
    /// between barriers and poisons the block on a cross-lane conflict.
    race: Option<RaceTracker>,
    /// SimSan (`Some` when the launch enabled the sanitizer): vets every
    /// access against the shadow state and poisons the block on a report.
    san: Option<SanTracker>,
    /// SimLint barrier-divergence verifier (`Some` when the launch
    /// enabled lints): tracks per-lane barrier arrivals each phase and
    /// poisons the block when live lanes disagree on reaching a barrier.
    lint: Option<BarrierLint>,
    /// Per-lane retirement flags: a lane that called [`LaneCtx::retire`]
    /// is skipped by every later phase (it has exited the kernel).
    retired: &'a mut Vec<bool>,
    /// Each warp's slice of the SM's L1 cache, direct-mapped by sector
    /// (concatenated per warp). Captures both the spatial reuse of
    /// sequential scans (a merge re-reads each 32-byte sector ~8 times)
    /// and the cross-lane reuse of hot search-table tops — while keeping
    /// the slice small enough that many concurrent per-lane streams
    /// conflict, as they do in the real 128 KB/SM cache shared by 2048
    /// threads.
    l1: &'a mut Vec<u64>,
    l1_slice: usize,
    fault: Option<SimError>,
}

impl<'a> BlockCtx<'a> {
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Words of shared memory available to this block.
    pub fn shared_words(&self) -> u32 {
        self.shared.len() as u32
    }

    /// Run one barrier-delimited phase: the closure is invoked once per
    /// lane, in lane order. Values written to shared memory in this phase
    /// are visible to *all* lanes from the next phase on (and to later
    /// lanes of this phase, matching any CUDA schedule of a race-free
    /// kernel that separates producers and consumers with barriers).
    pub fn phase<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut LaneCtx<'_, '_>),
    {
        // A faulted block is poisoned: later phases are skipped entirely,
        // like a CUDA grid after a sticky device-side error.
        if self.fault.is_some() {
            return;
        }
        let mut tid = 0u32;
        'warps: while tid < self.block_dim {
            let warp_end = (tid + WARP_SIZE as u32).min(self.block_dim);
            let l1_base = (tid as usize / WARP_SIZE) * self.l1_slice;
            while tid < warp_end {
                if self.fault.is_some() {
                    // The fault discards the launch's stats, so the
                    // partially recorded warp is never replayed.
                    break 'warps;
                }
                if self.retired[tid as usize] {
                    // The lane exited the kernel in an earlier phase.
                    tid += 1;
                    continue;
                }
                let mut lane = LaneCtx {
                    mem: self.mem,
                    shared: self.shared,
                    trace: self.sink.lane_trace(tid),
                    race: &mut self.race,
                    san: &mut self.san,
                    lint: &mut self.lint,
                    retired: &mut self.retired[tid as usize],
                    l1: &mut self.l1[l1_base..l1_base + self.l1_slice],
                    buf_cache: None,
                    tid,
                    block_idx: self.block_idx,
                    block_dim: self.block_dim,
                    grid_dim: self.grid_dim,
                    fault: &mut self.fault,
                    pending_compute: 0,
                };
                f(&mut lane);
                lane.flush_compute();
                tid += 1;
            }
            // The warp's slice of the phase is fully recorded: the fused
            // sink replays it here, while its trace words are still hot.
            self.sink.warp_complete();
        }
        self.barrier();
    }

    /// End the phase: close the analysis epochs and fold the phase's
    /// replay cycles (the retained sink also replays here).
    fn barrier(&mut self) {
        if let Some(t) = self.race.as_mut() {
            t.end_phase();
        }
        if let Some(t) = self.san.as_mut() {
            t.end_phase();
        }
        if let Some(t) = self.lint.as_mut() {
            // A fault truncates the phase mid-warp, so the lanes that
            // never ran would look divergent; the original fault wins
            // and the verifier's verdict is dropped.
            if let Some(err) = t.end_phase(self.block_idx) {
                if self.fault.is_none() {
                    self.fault = Some(err);
                }
            }
        }
        self.sink.end_phase();
    }
}

/// Per-lane context: the kernel-facing instruction set. Every method both
/// performs the real operation (against device/shared memory) and records
/// it in the lane's trace for lockstep replay.
pub struct LaneCtx<'a, 'b> {
    mem: &'a DeviceMem,
    shared: &'b mut Vec<u32>,
    trace: &'b mut LaneTrace,
    race: &'b mut Option<RaceTracker>,
    san: &'b mut Option<SanTracker>,
    lint: &'b mut Option<BarrierLint>,
    /// This lane's retirement flag (see [`LaneCtx::retire`]).
    retired: &'b mut bool,
    l1: &'b mut [u64],
    /// One-entry cache of the last buffer this lane touched through a
    /// global accessor. Nearly every global access of a scan or probe
    /// loop hits the same buffer as the previous one, so the common case
    /// is a handle compare instead of a buffer-table chase. Sound
    /// because the lane holds `&DeviceMem` for the whole launch: the
    /// buffer table cannot change while the cache lives.
    buf_cache: Option<(BufId, &'a Buffer)>,
    tid: u32,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    fault: &'b mut Option<SimError>,
    /// Arithmetic instructions recorded since the last non-compute op:
    /// [`LaneCtx::compute`] only bumps this counter, and the run is
    /// flushed into the trace as one `Op::Compute` word when the next
    /// memory op / converge marker / end of the lane's phase needs the
    /// ordering — the inner-loop `compute(1)` call is then a register
    /// add instead of a trace access.
    pending_compute: u32,
}

impl<'a> LaneCtx<'a, '_> {
    /// Thread index within the block (`threadIdx.x`).
    #[inline]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Block index within the grid (`blockIdx.x`).
    #[inline]
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Threads per block (`blockDim.x`).
    #[inline]
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// Blocks per grid (`gridDim.x`).
    #[inline]
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`), as a
    /// `u64`: see [`global_thread_id`] for why the product must widen.
    #[inline]
    pub fn global_tid(&self) -> u64 {
        global_thread_id(self.block_idx, self.block_dim, self.tid)
    }

    /// Lane index within the warp.
    #[inline]
    pub fn lane_id(&self) -> u32 {
        self.tid % WARP_SIZE as u32
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp_id(&self) -> u32 {
        self.tid / WARP_SIZE as u32
    }

    /// Report a kernel-level failure (e.g. a fixed-capacity structure
    /// overflowed); the launch returns [`SimError::KernelFault`].
    pub fn fault(&mut self, msg: impl Into<String>) {
        self.set_fault(SimError::KernelFault(msg.into()));
    }

    /// Record the block's first fault; later faults (often cascades from
    /// the poisoned value 0 the first one returned) are dropped.
    #[inline]
    fn set_fault(&mut self, err: SimError) {
        if self.fault.is_none() {
            *self.fault = Some(err);
        }
    }

    /// Whether this block already faulted. Poisoned lanes stop touching
    /// memory: loads return 0, stores and atomics are dropped, so a bad
    /// index can't cascade into a host-visible panic before `run_block`
    /// turns the fault into an error.
    #[inline]
    fn poisoned(&self) -> bool {
        self.fault.is_some()
    }

    /// Run one shared-memory access through the race detector (if the
    /// launch enabled it); a conflict poisons the block. Out-of-range
    /// indices are skipped so the subsequent data access reports the
    /// bounds fault with its usual message.
    ///
    /// Each analysis guard is an always-inlined `is_some` test in front
    /// of a never-inlined body: the checks sit on every memory access of
    /// every lane, and letting the (cold on plain runs) detector body
    /// into the accessors turned each disabled check into a real call.
    #[inline(always)]
    fn race_check_shared(&mut self, idx: usize, access: Access) {
        if self.race.is_some() {
            self.race_check_shared_slow(idx, access);
        }
    }

    #[inline(never)]
    fn race_check_shared_slow(&mut self, idx: usize, access: Access) {
        let tid = self.tid;
        if let Some(t) = self.race.as_mut() {
            if idx < self.shared.len() {
                if let Some(err) = t.check_shared(tid, idx, access) {
                    self.set_fault(err);
                }
            }
        }
    }

    /// Run one *plain* global access through the race detector. Atomics
    /// never come through here: they synchronize with each other and are
    /// exempt by design.
    #[inline(always)]
    fn race_check_global(&mut self, buf: BufId, idx: usize, access: Access) {
        if self.race.is_some() {
            self.race_check_global_slow(buf, idx, access);
        }
    }

    #[inline(never)]
    fn race_check_global_slow(&mut self, buf: BufId, idx: usize, access: Access) {
        let tid = self.tid;
        let addr = self.mem.addr_of(buf, idx);
        let name = self.mem.name(buf);
        if let Some(err) = self
            .race
            .as_mut()
            .and_then(|t| t.check_global(tid, addr, name, idx, access))
        {
            self.set_fault(err);
        }
    }

    /// Vet one shared-memory access against the SimSan shadow (if the
    /// launch enabled the sanitizer); a report poisons the block. Checks
    /// never touch the lane trace or the cost model, so a clean kernel's
    /// counters and cycles are identical sanitizer-on and -off.
    #[inline(always)]
    fn san_check_shared(&mut self, idx: usize, access: ShadowAccess) {
        if self.san.is_some() {
            self.san_check_shared_slow(idx, access);
        }
    }

    #[inline(never)]
    fn san_check_shared_slow(&mut self, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        if let Some(t) = self.san.as_mut() {
            if let Some(err) = t.check_shared(tid, idx, access) {
                self.set_fault(err);
            }
        }
    }

    /// Vet one global-memory access against the SimSan shadow. Runs
    /// *before* the data access so that freed-handle and redzone hits
    /// carry the sanitizer diagnostic rather than a bare `MemoryFault`.
    #[inline(always)]
    fn san_check_global(&mut self, buf: BufId, idx: usize, access: ShadowAccess) {
        if self.san.is_some() {
            self.san_check_global_slow(buf, idx, access);
        }
    }

    #[inline(never)]
    fn san_check_global_slow(&mut self, buf: BufId, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        let state = self.mem.shadow_state(buf, idx);
        let name = self.mem.name(buf);
        if let Some(err) = self
            .san
            .as_mut()
            .and_then(|t| t.check_global(tid, state, name, idx, access))
        {
            self.set_fault(err);
        }
    }

    /// Record `n` arithmetic instructions (comparisons, address math...).
    /// Run-length encoded: adjacent calls merge into one trace word (see
    /// [`LaneTrace::push_compute`] and [`LaneCtx::pending_compute`]).
    #[inline]
    pub fn compute(&mut self, n: u32) {
        self.pending_compute += n;
    }

    /// Flush the pending compute run into the trace. Must run before any
    /// other op is recorded (and at the end of the lane's phase) so the
    /// trace keeps the true program order.
    #[inline]
    fn flush_compute(&mut self) {
        if self.pending_compute > 0 {
            self.trace.push_compute(self.pending_compute);
            self.pending_compute = 0;
        }
    }

    /// Warp-reconvergence point (`__syncwarp` / the implicit re-join at
    /// the bottom of a divergent loop). Call it at the end of each outer
    /// loop iteration whose body contains data-dependent inner loops, so
    /// the replay re-aligns the lanes like real SIMT hardware does.
    #[inline]
    pub fn converge(&mut self) {
        self.flush_compute();
        self.trace.push(Op::Converge);
    }

    /// An explicit mid-phase `__syncthreads()` arrival point. Within the
    /// phase model every [`BlockCtx::phase`] already ends in a block-wide
    /// barrier; kernels whose control flow makes some lanes *skip* a
    /// barrier (the classic divergent-barrier bug) express the arrival
    /// with this call. It records a [`Op::Converge`] re-alignment marker
    /// unconditionally (so the cycle model is identical lints on or
    /// off); under SimLint the barrier-divergence verifier additionally
    /// counts the arrival, and at the end of the phase every live lane
    /// must have arrived the same number of times or the block fails
    /// with [`SimError::BarrierDivergence`] — on real hardware, the
    /// lanes that did arrive wait forever.
    #[inline]
    pub fn sync_threads(&mut self) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        self.trace.push(Op::Converge);
        if self.lint.is_some() {
            self.sync_threads_slow();
        }
    }

    #[inline(never)]
    fn sync_threads_slow(&mut self) {
        let tid = self.tid;
        if let Some(t) = self.lint.as_mut() {
            t.arrive(tid);
        }
    }

    /// Retire this lane for the rest of the launch: it is skipped by
    /// every later phase, like a CUDA thread returning from the kernel
    /// while its block keeps running. Retirement is legal when the
    /// remaining phases place no barrier the lane was counted on; a lane
    /// that retires while siblings still arrive at a
    /// [`LaneCtx::sync_threads`] barrier in the same phase is exactly
    /// the divergence SimLint's verifier reports. The caller should
    /// `return` from the phase closure right after calling this.
    #[inline]
    pub fn retire(&mut self) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        *self.retired = true;
        if self.lint.is_some() {
            self.retire_slow();
        }
    }

    #[inline(never)]
    fn retire_slow(&mut self) {
        let tid = self.tid;
        if let Some(t) = self.lint.as_mut() {
            t.retire(tid);
        }
    }

    /// Resolve `buf` through the lane's one-entry buffer cache (see
    /// [`LaneCtx::buf_cache`]). The returned reference borrows the
    /// launch-lifetime `DeviceMem`, not `self`, so callers can keep it
    /// across trace and fault accesses.
    #[inline]
    fn global_buf(&mut self, buf: BufId) -> &'a Buffer {
        match self.buf_cache {
            Some((id, b)) if id == buf => b,
            _ => {
                let b = self.mem.buffer(buf);
                self.buf_cache = Some((buf, b));
                b
            }
        }
    }

    /// Load one word from global memory. Consecutive touches of the same
    /// 32-byte sector by this lane are recorded as L1 hits (no DRAM
    /// transaction), modelling the spatial locality of sequential scans.
    #[inline]
    pub fn ld_global(&mut self, buf: BufId, idx: usize) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Read);
        if self.poisoned() {
            return 0;
        }
        let (val, addr) = match self.global_buf(buf).try_load_addr(idx) {
            Ok(pair) => pair,
            Err(e) => {
                self.set_fault(e);
                return 0;
            }
        };
        let sector = addr / crate::SECTOR_BYTES;
        // The slice length is a power of two (see `run_block`); indexing
        // through `len - 1` lets the bounds check fold into the mask.
        let slot = (sector as usize) & (self.l1.len() - 1);
        if self.l1[slot] == sector {
            self.trace.push(Op::GLoadHit(addr));
        } else {
            self.l1[slot] = sector;
            self.trace.push(Op::GLoad(addr));
        }
        self.race_check_global(buf, idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        val
    }

    /// Store one word to global memory.
    #[inline]
    pub fn st_global(&mut self, buf: BufId, idx: usize, val: u32) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Write);
        if self.poisoned() {
            return;
        }
        if self.race.is_some() {
            // A store of the word's current value is a benign "silent
            // store"; anything else conflicts with concurrent accesses.
            if let Ok(cur) = self.mem.try_load(buf, idx) {
                self.race_check_global(
                    buf,
                    idx,
                    Access::Write {
                        changes_value: cur != val,
                    },
                );
                if self.poisoned() {
                    return;
                }
            }
            // On a bounds error, fall through: try_store reports it.
        }
        let b = self.global_buf(buf);
        match b.try_store(idx, val) {
            Ok(()) => self.trace.push(Op::GStore(b.addr_of(idx))),
            Err(e) => self.set_fault(e),
        }
    }

    /// `atomicAdd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_add_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        let b = self.global_buf(buf);
        match b.try_fetch_add(idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(b.addr_of(idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicOr` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_or_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        let b = self.global_buf(buf);
        match b.try_fetch_or(idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(b.addr_of(idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicAnd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_and_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        let b = self.global_buf(buf);
        match b.try_fetch_and(idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(b.addr_of(idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicCAS` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_cas_global(&mut self, buf: BufId, idx: usize, cur: u32, new: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        let b = self.global_buf(buf);
        match b.try_compare_exchange(idx, cur, new) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(b.addr_of(idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// Correctness-only global add with **no traffic recorded**. This is
    /// the backchannel for warp-reduction helpers: the hardware cost of a
    /// `__shfl_down`+single-atomic reduction is modeled explicitly by the
    /// helper (see `tc-algos::util::warp_reduce_add`), while every lane's
    /// contribution still lands in the counter for exactness.
    #[inline]
    pub fn add_global_untraced(&mut self, buf: BufId, idx: usize, val: u32) {
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return;
        }
        if let Err(e) = self.global_buf(buf).try_fetch_add(idx, val) {
            self.set_fault(e);
        }
    }

    #[inline]
    fn shared_slot(&mut self, idx: usize) -> &mut u32 {
        match self.shared.get_mut(idx) {
            Some(w) => w,
            None => panic!("shared memory fault: index {idx} out of bounds"),
        }
    }

    /// Load one word from shared memory. Under race detection, reading a
    /// slot another lane plain-stores in the same phase — in either
    /// order — poisons the block with [`SimError::DataRace`]: that is a
    /// data race in CUDA (lanes only appear ordered here because the
    /// simulator runs them sequentially). Under SimSan, reading a slot no
    /// lane of this block has stored is an uninit-read: the simulator
    /// zero-fills shared memory for determinism, but CUDA does not.
    #[inline]
    pub fn ld_shared(&mut self, idx: usize) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SLoad(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Read);
        self.race_check_shared(idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        *self.shared_slot(idx)
    }

    /// Store one word to shared memory.
    #[inline]
    pub fn st_shared(&mut self, idx: usize, val: u32) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        self.trace.push(Op::SStore(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Write);
        if self.race.is_some() {
            // Concurrent same-value stores (a common benign idiom, e.g.
            // several lanes raising an overflow flag) are silent; a
            // value-changing store conflicts with other lanes' accesses.
            let changes_value = self.shared.get(idx).is_none_or(|&cur| cur != val);
            self.race_check_shared(idx, Access::Write { changes_value });
            if self.poisoned() {
                return;
            }
        }
        *self.shared_slot(idx) = val;
    }

    /// `atomicAdd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_add_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old.wrapping_add(val);
        old
    }

    /// `atomicOr` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_or_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old | val;
        old
    }

    /// `atomicAnd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_and_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old & val;
        old
    }
}

/// Execute one block and return its (cycles, counters). The caller owns
/// the [`BlockScratch`] arena (one per rayon worker) so consecutive
/// blocks reuse every buffer.
pub(crate) fn run_block<F>(
    dev: &Device,
    mem: &DeviceMem,
    cfg: &KernelConfig,
    block_idx: u32,
    kernel: &F,
    scratch: &mut BlockScratch,
) -> Result<(u64, ProfileCounters, Option<LintObserver>), SimError>
where
    F: Fn(&mut BlockCtx<'_>) + Sync,
{
    // Each warp's proportional slice of the SM's L1, direct-mapped,
    // rounded to a power of two (V100: 4096 sectors / 64 warps = 64).
    let l1_slice = (dev.config().l1_sectors_per_sm as u64 * WARP_SIZE as u64
        / dev.config().max_threads_per_sm.max(1) as u64)
        .max(16)
        .next_power_of_two() as usize;
    let warps = (cfg.block_dim as usize).div_ceil(WARP_SIZE);
    let retained = cfg.retained_trace || dev.config().force_retained_trace;
    // The fused engine recycles one warp's worth of lane buffers; the
    // retained engine records the whole block before replaying.
    let trace_lanes = if retained {
        cfg.block_dim as usize
    } else {
        (cfg.block_dim as usize).min(WARP_SIZE)
    };
    scratch.reset(
        cfg.shared_words as usize,
        trace_lanes,
        warps * l1_slice,
        cfg.block_dim as usize,
    );
    let BlockScratch {
        shared,
        traces,
        l1,
        replay,
        retired,
    } = scratch;
    let cost = dev.config().cost;
    let lint_on = cfg.lint || dev.config().force_lints;
    let mut lint_obs = lint_on.then(LintObserver::new);
    let mut fused;
    let mut two_pass;
    let sink: &mut dyn PhaseSink = if retained {
        two_pass = RetainedSink::new(traces, replay, cost, lint_obs.as_mut());
        &mut two_pass
    } else {
        fused = FusedSink::new(traces, replay, cost, lint_obs.as_mut());
        &mut fused
    };
    let mut blk = BlockCtx {
        mem,
        block_idx,
        block_dim: cfg.block_dim,
        grid_dim: cfg.grid_dim,
        shared,
        sink,
        race: (cfg.race_detect || dev.config().force_race_detection)
            .then(|| RaceTracker::new(cfg.shared_words as usize)),
        san: (cfg.sanitize || dev.config().force_sanitizer)
            .then(|| SanTracker::new(cfg.shared_words as usize)),
        lint: lint_on.then(|| BarrierLint::new(cfg.block_dim)),
        retired,
        l1,
        l1_slice,
        fault: None,
    };
    kernel(&mut blk);
    // Flush any trailing un-barriered work (kernel end is a barrier).
    blk.barrier();
    let (cycles, mut counters) = blk.sink.finish();
    if let Some(t) = &blk.race {
        counters.race_checks += t.checks;
        counters.races_detected += t.races;
    }
    if let Some(t) = &blk.san {
        counters.sanitizer_checks += t.checks;
        counters.sanitizer_reports += t.reports;
    }
    if let Some(t) = &blk.lint {
        counters.lint_checks += t.checks;
    }
    let fault = blk.fault;
    if let Some(err) = fault {
        return Err(err);
    }
    if let Some(obs) = &lint_obs {
        counters.lint_checks += obs.checks;
    }
    Ok((cycles, counters, lint_obs))
}

/// A warp holds at most [`WARP_SIZE`] lanes and each lane contributes at
/// most one address per step, so per-kind address lists fit in fixed
/// stack arrays — no heap, and every distinct/conflict pass below runs
/// on 32-entry arrays that live in cache (and usually registers).
struct LaneAddrs {
    buf: [u64; WARP_SIZE],
    len: usize,
}

impl Default for LaneAddrs {
    fn default() -> Self {
        LaneAddrs {
            buf: [0; WARP_SIZE],
            len: 0,
        }
    }
}

impl LaneAddrs {
    #[inline]
    fn push(&mut self, a: u64) {
        debug_assert!(self.len < WARP_SIZE);
        // The ≤ 32 invariant above makes the masked index a plain store
        // with no panic path in the hottest loop of the replay.
        self.buf[self.len & (WARP_SIZE - 1)] = a;
        self.len += 1;
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.buf[..self.len]
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }
}

/// Number of memory-op kinds (= tags `TAG_GLOAD..=TAG_SATOMIC`, which
/// the trace encoding keeps contiguous from zero exactly so the replay
/// gather can index a list array by tag).
const MEM_KINDS: usize = TAG_SATOMIC as usize + 1;

/// `log2(SECTOR_BYTES)`: byte address → 32-byte sector id.
const SECTOR_SHIFT: u32 = crate::SECTOR_BYTES.trailing_zeros();

/// Per-tag payload shift applied on the way into the step lists: global
/// loads, load hits and stores coalesce at sector granularity, so their
/// byte addresses drop to sector ids during the gather and the distinct
/// passes never re-derive sectors per address. Global atomics keep byte
/// addresses (collision depth serializes on the exact word); shared
/// kinds carry word indices.
const GATHER_SHIFT: [u32; MEM_KINDS] = [SECTOR_SHIFT, SECTOR_SHIFT, SECTOR_SHIFT, 0, 0, 0, 0];

/// Scratch for one lockstep step of one warp: one address list per
/// memory-op kind, indexed directly by the op's tag bits.
#[derive(Default)]
struct StepScratch {
    kind: [LaneAddrs; MEM_KINDS],
}

/// Replay position of one live lane, carried *inline* in the compacted
/// lane array so the gather loop touches one cache line per lane instead
/// of bouncing between a live-index list, a cursor table and the trace
/// table. The position is the un-replayed *suffix* of the lane's
/// recorded trace: advancing is one slice shrink, the head peek is a
/// `split_first` with no separate cursor to bounds-check against, and
/// "exhausted" is `is_empty` — this loop runs once per recorded op of
/// the whole simulation, so every bookkeeping instruction counts.
#[derive(Clone, Copy, Default)]
struct LaneState<'a> {
    /// The lane's un-replayed ops (never empty while the state is live).
    rest: &'a [PackedOp],
    /// Consumed prefix of the compute run at the head, when the head is
    /// `Op::Compute(n)`.
    run_done: u32,
}

/// Reusable state for [`replay_warp`]; lives in the per-worker
/// [`BlockScratch`] so replay performs no allocation.
#[derive(Default)]
pub(crate) struct ReplayScratch {
    step: StepScratch,
}

/// Below this many addresses the quadratic seen-scan beats every other
/// distinct-counting strategy (it degenerates to a handful of compares
/// that the compiler keeps in registers). Above it, the slot passes
/// switch to an O(n) bitmap when the addresses are clustered and an
/// O(n log n) sort when they are scattered — the shape divergent hash
/// probing produces, where the scan's O(n²) compare storm was the PR 4
/// regression on Hu and GroupTC.
const SCAN_MAX: usize = 8;

/// Count distinct 32-byte sectors among the (byte) addresses of one warp
/// load/store slot (≤ 32 addresses).
fn count_sectors(addrs: &[u64]) -> u64 {
    count_sectors_split(addrs, &[]).1
}

/// Distinct values in a sorted slice.
#[inline]
fn sorted_distinct(v: &[u64]) -> u64 {
    let mut count = 0u64;
    for (i, &s) in v.iter().enumerate() {
        count += (i == 0 || v[i - 1] != s) as u64;
    }
    count
}

/// Distinct values across the union of two sorted slices (two-pointer
/// merge; duplicates within and across the slices count once).
fn sorted_union_distinct(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => unreachable!(),
        };
        count += 1;
        while i < a.len() && a[i] == v {
            i += 1;
        }
        while j < b.len() && b[j] == v {
            j += 1;
        }
    }
    count
}

/// Byte-address front end for [`distinct_split`]: copies the addresses
/// into stack arrays as sector ids first. Only the (rare) global-atomic
/// sector pass and tests come through here; the load/store slot passes
/// gather sector ids directly and skip the conversion.
fn count_sectors_split(misses: &[u64], hits: &[u64]) -> (u64, u64) {
    debug_assert!(misses.len() + hits.len() <= WARP_SIZE);
    let mut ms = [0u64; WARP_SIZE];
    let mut hs = [0u64; WARP_SIZE];
    for (slot, &addr) in ms.iter_mut().zip(misses) {
        *slot = addr >> SECTOR_SHIFT;
    }
    for (slot, &addr) in hs.iter_mut().zip(hits) {
        *slot = addr >> SECTOR_SHIFT;
    }
    distinct_split(&mut ms[..misses.len()], &mut hs[..hits.len()])
}

/// Distinct values over the two halves of one slot's list, without
/// materializing the union: returns `(distinct(a), distinct(a ∪ b))` —
/// for a load slot, distinct sectors among the misses alone, then
/// across the concatenation (the gather already reduced addresses to
/// sector ids). May reorder both slices.
///
/// Adaptive: small slots use a newest-first seen-scan (coalesced warps
/// revisit the sector they just recorded); larger slots whose values
/// cluster within a 64-wide window dedup through a pair of u64 bitmaps;
/// scattered slots (divergent hash probes, binary-search hops) sort in
/// place and merge. All three count the same distinct sets, so the
/// choice is invisible in the counters.
fn distinct_split(a: &mut [u64], b: &mut [u64]) -> (u64, u64) {
    let n = a.len() + b.len();
    debug_assert!(n <= WARP_SIZE);
    if n <= SCAN_MAX {
        let mut seen = [0u64; SCAN_MAX];
        let mut k = 0usize;
        'a: for &v in a.iter() {
            for &prev in seen[..k].iter().rev() {
                if prev == v {
                    continue 'a;
                }
            }
            seen[k] = v;
            k += 1;
        }
        let da = k as u64;
        'b: for &v in b.iter() {
            for &prev in seen[..k].iter().rev() {
                if prev == v {
                    continue 'b;
                }
            }
            seen[k] = v;
            k += 1;
        }
        return (da, k as u64);
    }
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for &v in a.iter().chain(b.iter()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi - lo < u64::BITS as u64 {
        let mut mask_a = 0u64;
        for &v in a.iter() {
            mask_a |= 1 << (v - lo);
        }
        let mut mask_all = mask_a;
        for &v in b.iter() {
            mask_all |= 1 << (v - lo);
        }
        return (mask_a.count_ones() as u64, mask_all.count_ones() as u64);
    }
    a.sort_unstable();
    b.sort_unstable();
    (sorted_distinct(a), sorted_union_distinct(a, b))
}

/// Worst-case same-address collision depth (atomics serialize on address).
fn max_same_addr_depth<T: PartialEq + Ord + Copy + Default>(addrs: &[T]) -> u64 {
    let n = addrs.len();
    debug_assert!(n <= WARP_SIZE);
    if n <= SCAN_MAX {
        let mut best = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            if addrs[..i].contains(&a) {
                continue; // depth already counted at its first occurrence
            }
            let depth = addrs[i..].iter().filter(|&&x| x == a).count() as u64;
            best = best.max(depth);
        }
        return best;
    }
    // Scattered atomics: sort, then the deepest collision is the longest
    // equal run.
    let mut buf = [T::default(); WARP_SIZE];
    buf[..n].copy_from_slice(addrs);
    let buf = &mut buf[..n];
    buf.sort_unstable();
    let mut best = 1u64;
    let mut run = 1u64;
    for i in 1..n {
        if buf[i] == buf[i - 1] {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best
}

/// Shared-memory bank-conflict ways: accesses to the same word broadcast,
/// accesses to distinct words in the same bank serialize. Adaptive like
/// [`count_sectors_split`]: seen-scan below [`SCAN_MAX`], bitmap dedup
/// for clustered indices, sort for scattered ones.
fn bank_conflict_ways(addrs: &mut [u64]) -> u64 {
    let n = addrs.len();
    debug_assert!(n <= WARP_SIZE);
    let mut per_bank = [0u8; SHARED_BANKS];
    let mut ways = 1u64;
    if n <= SCAN_MAX {
        for i in 0..n {
            let a = addrs[i];
            if addrs[..i].contains(&a) {
                continue; // duplicate word: broadcast, not a conflict
            }
            let bank = (a as usize) % SHARED_BANKS;
            per_bank[bank] += 1;
            ways = ways.max(per_bank[bank] as u64);
        }
        return ways;
    }
    let mut lo = addrs[0];
    let mut hi = addrs[0];
    for &a in &addrs[1..] {
        lo = lo.min(a);
        hi = hi.max(a);
    }
    if hi - lo < u64::BITS as u64 {
        let mut mask = 0u64;
        for &a in addrs.iter() {
            mask |= 1 << (a - lo);
        }
        while mask != 0 {
            let bit = mask.trailing_zeros() as u64;
            mask &= mask - 1;
            let bank = ((lo + bit) as usize) % SHARED_BANKS;
            per_bank[bank] += 1;
            ways = ways.max(per_bank[bank] as u64);
        }
        return ways;
    }
    addrs.sort_unstable();
    for i in 0..n {
        if i > 0 && addrs[i] == addrs[i - 1] {
            continue; // duplicate word: broadcast, not a conflict
        }
        let bank = (addrs[i] as usize) % SHARED_BANKS;
        per_bank[bank] += 1;
        ways = ways.max(per_bank[bank] as u64);
    }
    ways
}

/// Replay the lanes of one warp in lockstep and return (cycles, counters).
///
/// At each step, the next un-replayed op of every still-active lane is
/// gathered; lanes that diverged onto different op kinds serialize into
/// separate issue slots (SIMT branch divergence), and lanes whose traces
/// already ended count as inactive, which is what depresses
/// `warp_execution_efficiency` for imbalanced workloads.
///
/// Compute runs (`Op::Compute(n)`) are consumed in batches: when a step
/// issues *only* compute, every active lane is inside a run, and the set
/// of active lanes cannot change for the next `m = min(remaining run)`
/// steps — exhausted lanes stay exhausted and converge-marked lanes keep
/// waiting (compute is a real issue). So `m` identical one-instruction
/// steps collapse into one batch with counters scaled by `m`,
/// bit-identical to stepping. When the step also issues memory, the
/// active compute set can change next step, so `m = 1`.
///
/// [`Op::Converge`] markers re-align the lanes: a lane that reaches one
/// stalls (inactive) until every unfinished lane is also at a marker,
/// then all markers are consumed together — the branch re-join of real
/// SIMT hardware, without which lanes that skip a data-dependent inner
/// loop would stay shifted against their siblings forever.
fn replay_warp(
    traces: &[LaneTrace],
    cost: &CostModel,
    scratch: &mut ReplayScratch,
    mut lint: Option<&mut LintObserver>,
) -> (u64, ProfileCounters) {
    let mut counters = ProfileCounters::default();
    let mut cycles = 0u64;
    let step = &mut scratch.step;
    // Live lanes, compacted in place: an exhausted lane swaps with the
    // last live entry and drops out, so a tail-divergent warp — one long
    // merge while 31 lanes sit finished, the common shape in triangle
    // counting — costs one lane visit per step, not 32. Compaction
    // reorders lane visits, which is safe: every per-slot pass (distinct
    // sectors, bank ways, same-address depth, lane counts) is
    // order-independent.
    let mut lanes: [LaneState<'_>; WARP_SIZE] = [LaneState::default(); WARP_SIZE];
    let mut n_live = 0usize;
    for t in traces.iter() {
        if !t.is_empty() {
            lanes[n_live] = LaneState {
                rest: &t.ops,
                run_done: 0,
            };
            n_live += 1;
        }
    }
    if n_live == 0 {
        return (0, counters);
    }
    // Lanes stalled at a `Converge` marker are *parked* past `n_active`
    // (the array is split `[active.. | parked.. | dead]`), so a warp
    // whose 31 finished-early lanes wait out one long merge scans a
    // single lane per step instead of re-matching 32 marker heads — on
    // the full Wiki-Talk sweep roughly a sixth of all lane visits were
    // such re-matched waiters.
    let mut n_active = n_live;
    loop {
        // Single-active-lane drain: one long divergent tail (a lane
        // merging alone while its siblings sit finished or parked at a
        // marker — the dominant late-replay shape in triangle counting)
        // needs no gather, no slot lists and no distinct-count passes:
        // every slot carries exactly one address, so each pass is
        // trivially distinct=1 / ways=1 / depth=1 and the general
        // path's per-op cost is applied directly. Bit-identical by
        // construction — each arm below is the general path specialized
        // to one lane.
        while n_active == 1 {
            let st = &mut lanes[0];
            // Live-lane invariant: `rest` is non-empty.
            match st.rest[0].unpack() {
                Op::Converge => {
                    if n_live > 1 {
                        // Siblings are parked at markers: fall through
                        // to the general loop, which parks this lane
                        // and re-aligns them all.
                        break;
                    }
                    // A lone lane's marker re-aligns nothing: free.
                    st.rest = &st.rest[1..];
                }
                Op::Compute(n) => {
                    debug_assert!(n > st.run_done, "Compute(n) invariant: n >= 1");
                    let m = (n - st.run_done) as u64;
                    counters.issued_slots += m;
                    counters.active_thread_slots += m;
                    counters.compute_slots += m;
                    cycles += m * cost.compute;
                    st.run_done = 0;
                    st.rest = &st.rest[1..];
                }
                op => {
                    counters.issued_slots += 1;
                    counters.active_thread_slots += 1;
                    match op {
                        Op::GLoad(addr) => {
                            counters.global_load_requests += 1;
                            counters.gld_transactions += 1;
                            counters.dram_load_sectors += 1;
                            cycles += cost.global_load_slot(1, 1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.global_load(1, (addr >> SECTOR_SHIFT) << SECTOR_SHIFT);
                            }
                        }
                        Op::GLoadHit(addr) => {
                            counters.global_load_requests += 1;
                            counters.gld_transactions += 1;
                            cycles += cost.global_load_slot(1, 0);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.global_load(1, (addr >> SECTOR_SHIFT) << SECTOR_SHIFT);
                            }
                        }
                        Op::GStore(addr) => {
                            counters.global_store_requests += 1;
                            counters.gst_transactions += 1;
                            cycles += cost.global_slot(1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.global_store(1, (addr >> SECTOR_SHIFT) << SECTOR_SHIFT);
                            }
                        }
                        Op::GAtomic(addr) => {
                            counters.global_atomic_requests += 1;
                            counters.dram_atomic_sectors += 1;
                            cycles += cost.global_atomic_slot(1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.global_atomic(1, addr);
                            }
                        }
                        Op::SLoad(idx) => {
                            counters.shared_load_requests += 1;
                            cycles += cost.shared_slot(1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.shared_access(1, idx as u64);
                            }
                        }
                        Op::SStore(idx) => {
                            counters.shared_store_requests += 1;
                            cycles += cost.shared_slot(1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.shared_access(1, idx as u64);
                            }
                        }
                        Op::SAtomic(idx) => {
                            counters.shared_atomic_requests += 1;
                            cycles += cost.shared_atomic_slot(1);
                            if let Some(obs) = lint.as_deref_mut() {
                                obs.shared_atomic(1, idx as u64);
                            }
                        }
                        Op::Compute(_) | Op::Converge => unreachable!(),
                    }
                    st.rest = &st.rest[1..];
                }
            }
            if st.rest.is_empty() {
                // Retire exactly like the general path's swap dance.
                n_active -= 1;
                lanes.swap(0, n_active);
                n_live -= 1;
                lanes.swap(n_active, n_live);
                break;
            }
        }
        // One lockstep step. The gather dispatches on raw tag bits:
        // every memory kind funnels through a single push into its
        // tag-indexed list (one code path instead of seven), compute
        // heads are noted in a compact position list consumed after the
        // slot passes, and converge heads park their lane.
        let mut kinds: u32 = 0;
        // Positions (and remaining run lengths) of the lanes that were
        // *at* a compute head during this gather pass. The consume pass
        // below must not re-read heads: a lane whose memory op issued
        // this step already advanced onto its next op, and consuming
        // that op here would skip it without counting it. Gather-time
        // positions stay valid: compute positions are strictly
        // ascending and every swap in this loop touches only positions
        // at or past the cursor, which is already beyond them.
        let mut comp_pos = [0u8; WARP_SIZE];
        let mut comp_rem = [0u32; WARP_SIZE];
        let mut n_comp = 0usize;
        let mut min_run = u32::MAX;
        let mut i = 0;
        while i < n_active {
            let st = &mut lanes[i];
            // Live-array invariant: `rest` is non-empty.
            let w = st.rest[0].word();
            let tag = (w & 0xf) as usize;
            if tag < MEM_KINDS {
                step.kind[tag].push((w >> 4) >> GATHER_SHIFT[tag]);
                kinds |= 1 << tag;
                st.rest = &st.rest[1..];
                if st.rest.is_empty() {
                    // Retire: swap out of the active region, then out of
                    // the parked region, preserving both partitions.
                    n_active -= 1;
                    lanes.swap(i, n_active);
                    n_live -= 1;
                    lanes.swap(n_active, n_live);
                } else {
                    i += 1;
                }
            } else if tag as u64 == TAG_COMPUTE {
                let n = (w >> 4) as u32;
                debug_assert!(n > st.run_done, "Compute(n) invariant: n >= 1");
                let rem = n - st.run_done;
                comp_pos[n_comp] = i as u8;
                comp_rem[n_comp] = rem;
                n_comp += 1;
                min_run = min_run.min(rem);
                i += 1; // cursor advances after batching below
            } else {
                debug_assert_eq!(tag as u64, TAG_CONVERGE);
                // Stalls until every active lane reaches a marker; the
                // cursor advances at re-align.
                n_active -= 1;
                lanes.swap(i, n_active);
            }
        }
        let memory_issued = kinds != 0;
        if !memory_issued && n_comp == 0 {
            if n_live > 0 {
                // Every unfinished lane is parked at a marker: consume
                // them all and re-align.
                debug_assert_eq!(n_active, 0);
                let mut i = 0;
                while i < n_live {
                    let st = &mut lanes[i];
                    debug_assert!(matches!(st.rest[0].unpack(), Op::Converge));
                    st.rest = &st.rest[1..];
                    if st.rest.is_empty() {
                        n_live -= 1;
                        lanes.swap(i, n_live);
                    } else {
                        i += 1;
                    }
                }
                n_active = n_live;
                continue;
            }
            break; // all traces exhausted
        }
        let mut issue = |active: u64| {
            counters.issued_slots += 1;
            counters.active_thread_slots += active;
        };
        let [gl, gh, gs, ga, sl, ss, sa] = &mut step.kind;
        if !gl.is_empty() || !gh.is_empty() {
            issue((gl.len + gh.len) as u64);
            // The distinct pass below may reorder the lists, so the
            // lint's representative site (lane 0's sector) is captured
            // first. The lists hold sector ids; the site is the sector's
            // base byte address.
            let rep_site = if gl.is_empty() { gh.buf[0] } else { gl.buf[0] } << SECTOR_SHIFT;
            // nvprof's gld_transactions counts wavefronts (distinct
            // sectors addressed) regardless of cache hits; the DRAM floor
            // charges only the miss half. One fused scan yields both.
            let (miss_sectors, total_sectors) =
                distinct_split(gl.as_mut_slice(), gh.as_mut_slice());
            counters.global_load_requests += 1;
            counters.gld_transactions += total_sectors;
            counters.dram_load_sectors += miss_sectors;
            cycles += cost.global_load_slot(total_sectors, miss_sectors);
            if let Some(obs) = lint.as_deref_mut() {
                obs.global_load(total_sectors, rep_site);
            }
        }
        if !gs.is_empty() {
            issue(gs.len as u64);
            let rep_site = gs.buf[0] << SECTOR_SHIFT;
            let sectors = distinct_split(gs.as_mut_slice(), &mut []).1;
            counters.global_store_requests += 1;
            counters.gst_transactions += sectors;
            cycles += cost.global_slot(sectors);
            if let Some(obs) = lint.as_deref_mut() {
                obs.global_store(sectors, rep_site);
            }
        }
        if !ga.is_empty() {
            issue(ga.len as u64);
            let rep_site = ga.buf[0];
            let depth = max_same_addr_depth(ga.as_slice());
            counters.global_atomic_requests += 1;
            // Atomics are resolved in L2 but still move their sectors
            // over DRAM; distinct 32-byte sectors feed the launch-level
            // bandwidth floor alongside load and store traffic.
            counters.dram_atomic_sectors += count_sectors(ga.as_slice());
            cycles += cost.global_atomic_slot(depth);
            if let Some(obs) = lint.as_deref_mut() {
                obs.global_atomic(depth, rep_site);
            }
        }
        if !sl.is_empty() {
            issue(sl.len as u64);
            let rep_site = sl.buf[0];
            let ways = bank_conflict_ways(sl.as_mut_slice());
            counters.shared_load_requests += 1;
            cycles += cost.shared_slot(ways);
            if let Some(obs) = lint.as_deref_mut() {
                obs.shared_access(ways, rep_site);
            }
        }
        if !ss.is_empty() {
            issue(ss.len as u64);
            let rep_site = ss.buf[0];
            let ways = bank_conflict_ways(ss.as_mut_slice());
            counters.shared_store_requests += 1;
            cycles += cost.shared_slot(ways);
            if let Some(obs) = lint.as_deref_mut() {
                obs.shared_access(ways, rep_site);
            }
        }
        if !sa.is_empty() {
            issue(sa.len as u64);
            let rep_site = sa.buf[0];
            let depth = max_same_addr_depth(sa.as_slice());
            counters.shared_atomic_requests += 1;
            cycles += cost.shared_atomic_slot(depth);
            if let Some(obs) = lint.as_deref_mut() {
                obs.shared_atomic(depth, rep_site);
            }
        }
        // Reset only the lists this step touched.
        let mut used = kinds;
        while used != 0 {
            step.kind[used.trailing_zeros() as usize].clear();
            used &= used - 1;
        }
        if n_comp > 0 {
            let m = if memory_issued { 1 } else { min_run as u64 };
            counters.issued_slots += m;
            counters.active_thread_slots += m * n_comp as u64;
            counters.compute_slots += m;
            cycles += m * cost.compute;
            let m32 = m as u32;
            // Descending, so a retire's swaps (which touch positions at
            // or past the retiring one) never move a lane an earlier
            // list entry still points at.
            for j in (0..n_comp).rev() {
                let p = comp_pos[j] as usize;
                let st = &mut lanes[p];
                if comp_rem[j] == m32 {
                    // Batch consumed the rest of the run.
                    st.run_done = 0;
                    st.rest = &st.rest[1..];
                    if st.rest.is_empty() {
                        n_active -= 1;
                        lanes.swap(p, n_active);
                        n_live -= 1;
                        lanes.swap(n_active, n_live);
                    }
                } else {
                    debug_assert!(comp_rem[j] > m32);
                    st.run_done += m32;
                }
            }
        }
    }
    // The loop only breaks when no lane has an op left to issue.
    debug_assert_eq!(n_live, 0, "replay exited with unconsumed ops");
    (cycles, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LaneTrace;

    fn trace_of(ops: &[Op]) -> LaneTrace {
        LaneTrace::from_ops(ops)
    }

    fn replay(traces: &[LaneTrace]) -> (u64, ProfileCounters) {
        replay_warp(
            traces,
            &CostModel::v100(),
            &mut ReplayScratch::default(),
            None,
        )
    }

    #[test]
    fn global_thread_id_widens_before_multiplying() {
        // 8M blocks of 1024 threads: the last global tid is ~2^33, far
        // past u32. The u32 expression wrapped to a small alias.
        let blocks = 8 * 1024 * 1024u32;
        let tid = global_thread_id(blocks - 1, 1024, 1023);
        assert_eq!(tid, (blocks as u64) * 1024 - 1);
        assert!(tid > u32::MAX as u64);
        // And the in-range case is unchanged.
        assert_eq!(global_thread_id(3, 256, 17), 3 * 256 + 17);
    }

    #[test]
    fn sector_counting_coalesced_vs_scattered() {
        // 32 lanes reading consecutive words: 32 * 4B = 128B = 4 sectors.
        let coalesced: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(count_sectors(&coalesced), 4);
        // 32 lanes each in its own sector.
        let scattered: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
        assert_eq!(count_sectors(&scattered), 32);
        // All lanes on the same word: a single broadcastable sector.
        let broadcast: Vec<u64> = vec![100; 32];
        assert_eq!(count_sectors(&broadcast), 1);
    }

    #[test]
    fn chained_sector_counting_matches_union() {
        // Misses and hits overlapping in sector 0 plus a hit-only sector.
        let misses = [0u64, 4, 64];
        let hits = [8u64, 96, 100];
        assert_eq!(count_sectors_split(&misses, &hits), (2, 3));
        assert_eq!(count_sectors_split(&misses, &[]).1, count_sectors(&misses));
    }

    #[test]
    fn collision_depth() {
        let a = [1u64, 2, 2, 2, 3];
        assert_eq!(max_same_addr_depth(&a), 3);
        let b = [5u64];
        assert_eq!(max_same_addr_depth(&b), 1);
        // Unsorted duplicates must still count as one run.
        let c = [7u64, 1, 7, 2, 7];
        assert_eq!(max_same_addr_depth(&c), 3);
    }

    #[test]
    fn bank_conflicts() {
        // Stride-1: each lane its own bank.
        let mut s: Vec<u64> = (0..32).collect();
        assert_eq!(bank_conflict_ways(&mut s), 1);
        // Stride-32: all lanes in bank 0 -> 32-way conflict.
        let mut c: Vec<u64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_ways(&mut c), 32);
        // Same word everywhere: broadcast, no conflict.
        let mut b: Vec<u64> = vec![7; 32];
        assert_eq!(bank_conflict_ways(&mut b), 1);
    }

    #[test]
    fn replay_counts_divergence() {
        let cost = CostModel::v100();
        // Lane 0 does 4 computes, lane 1 does 1: 4 slots, 5 active-thread
        // slots => efficiency 5/(4*32).
        let traces = vec![trace_of(&[Op::Compute(4)]), trace_of(&[Op::Compute(1)])];
        let (cycles, c) = replay(&traces);
        assert_eq!(c.issued_slots, 4);
        assert_eq!(c.active_thread_slots, 5);
        assert_eq!(c.compute_slots, 4);
        assert_eq!(cycles, 4 * cost.compute);
    }

    #[test]
    fn replay_splits_divergent_kinds() {
        // Two lanes at step 0 doing different kinds: two issue slots.
        let traces = vec![trace_of(&[Op::Compute(1)]), trace_of(&[Op::GLoad(0)])];
        let (_, c) = replay(&traces);
        assert_eq!(c.issued_slots, 2);
        assert_eq!(c.active_thread_slots, 2);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.compute_slots, 1);
    }

    #[test]
    fn replay_groups_coalesced_loads() {
        let cost = CostModel::v100();
        // 8 lanes load 8 consecutive words (one sector): 1 request,
        // 1 transaction.
        let traces: Vec<LaneTrace> = (0..8u64).map(|i| trace_of(&[Op::GLoad(i * 4)])).collect();
        let (cycles, c) = replay(&traces);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1);
        assert_eq!(c.dram_load_sectors, 1);
        assert_eq!(cycles, cost.global_load_slot(1, 1));
    }

    #[test]
    fn replay_counts_hit_wavefronts_as_transactions() {
        let cost = CostModel::v100();
        // Two lanes in different sectors, both L1 hits: one request, two
        // wavefront transactions, zero DRAM sectors.
        let traces = vec![
            trace_of(&[Op::GLoadHit(0)]),
            trace_of(&[Op::GLoadHit(4096)]),
        ];
        let (cycles, c) = replay(&traces);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 2);
        assert_eq!(c.dram_load_sectors, 0);
        assert_eq!(cycles, cost.global_load_slot(2, 0));
        assert!(cycles < cost.global_load_slot(2, 2));
    }

    #[test]
    fn replay_counts_atomic_dram_sectors() {
        // 4 lanes hammer one word: one sector of DRAM atomic traffic.
        let same: Vec<LaneTrace> = (0..4).map(|_| trace_of(&[Op::GAtomic(256)])).collect();
        let (_, c) = replay(&same);
        assert_eq!(c.global_atomic_requests, 1);
        assert_eq!(c.dram_atomic_sectors, 1);
        // 4 lanes on 4 distant words: four sectors from the same slot.
        let scattered: Vec<LaneTrace> = (0..4u64)
            .map(|i| trace_of(&[Op::GAtomic(i * 4096)]))
            .collect();
        let (_, c) = replay(&scattered);
        assert_eq!(c.global_atomic_requests, 1);
        assert_eq!(c.dram_atomic_sectors, 4);
    }

    #[test]
    fn converge_realigns_shifted_lanes() {
        // Lane 0 does 3 computes then a load; lane 1 does 1 compute then
        // a load. Without markers the loads land on different steps (2
        // separate requests); with a marker before the load they align
        // into one coalesced request.
        let unaligned = vec![
            trace_of(&[Op::Compute(3), Op::GLoad(0)]),
            trace_of(&[Op::Compute(1), Op::GLoad(4)]),
        ];
        let (_, c) = replay(&unaligned);
        assert_eq!(c.global_load_requests, 2);

        let aligned = vec![
            trace_of(&[Op::Compute(3), Op::Converge, Op::GLoad(0)]),
            trace_of(&[Op::Compute(1), Op::Converge, Op::GLoad(4)]),
        ];
        let (_, c) = replay(&aligned);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1, "aligned loads share a sector");
    }

    #[test]
    fn converge_with_exhausted_lanes_does_not_deadlock() {
        let traces = vec![
            trace_of(&[Op::Compute(1), Op::Converge, Op::Compute(1)]),
            trace_of(&[Op::Compute(1)]), // finishes before the marker
            LaneTrace::default(),        // never does anything
        ];
        let (_, c) = replay(&traces);
        assert_eq!(c.compute_slots, 2);
    }

    #[test]
    fn trailing_converge_is_free() {
        let traces = vec![trace_of(&[Op::Converge]), trace_of(&[Op::Converge])];
        let (cycles, c) = replay(&traces);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }

    #[test]
    fn empty_traces_are_free() {
        let traces = vec![LaneTrace::default(); 32];
        let (cycles, c) = replay(&traces);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }

    /// Reference replayer: expand every `Compute(n)` into `n` unit runs,
    /// defeating the batch path (each step's `min_run` is 1). The
    /// batched replay must be bit-identical against it.
    fn replay_unbatched(traces: &[LaneTrace]) -> (u64, ProfileCounters) {
        let expanded: Vec<LaneTrace> = traces
            .iter()
            .map(|t| {
                let mut ops = Vec::new();
                for &op in &t.ops {
                    match op.unpack() {
                        Op::Compute(n) => {
                            ops.extend(std::iter::repeat_n(Op::Compute(1), n as usize))
                        }
                        other => ops.push(other),
                    }
                }
                LaneTrace::from_ops(&ops)
            })
            .collect();
        replay(&expanded)
    }

    #[test]
    fn compute_after_memory_op_is_counted_not_swallowed() {
        // Regression: a lane whose memory op issues in a step advances
        // onto its next op *during* the gather pass. The compute-consume
        // pass must not re-read that lane's head, or the fresh Compute
        // run is consumed without ever being counted — undercounting
        // active_thread_slots/compute_slots on every load->compute
        // transition (ubiquitous in merge loops).
        let traces = [
            trace_of(&[Op::Compute(1)]),
            trace_of(&[Op::GLoad(652), Op::Compute(1)]),
        ];
        let (_, c) = replay(&traces);
        // Step 1: lane 1's load (1 slot) + lane 0's compute (1 slot).
        // Step 2: lane 1's compute alone (1 slot).
        assert_eq!(c.active_thread_slots, 3);
        assert_eq!(c.compute_slots, 2);
        assert_eq!(c.issued_slots, 3);
        assert_eq!(c.global_load_requests, 1);
    }

    #[test]
    fn batched_compute_replay_is_bit_identical_to_stepping() {
        // A divergent mix: unequal runs, loads interleaved mid-run,
        // converge markers, an exhausted lane and an atomic.
        let cases: Vec<Vec<LaneTrace>> = vec![
            vec![trace_of(&[Op::Compute(7)]), trace_of(&[Op::Compute(3)])],
            vec![
                trace_of(&[Op::Compute(5), Op::GLoad(0), Op::Compute(2)]),
                trace_of(&[Op::Compute(2), Op::GLoad(64), Op::Compute(9)]),
                trace_of(&[Op::GStore(128), Op::Compute(4)]),
            ],
            vec![
                trace_of(&[Op::Compute(6), Op::Converge, Op::Compute(1)]),
                trace_of(&[Op::Compute(2), Op::Converge, Op::Compute(8)]),
                LaneTrace::default(),
            ],
            vec![
                trace_of(&[Op::Compute(3), Op::GAtomic(0), Op::SLoad(1), Op::Compute(2)]),
                trace_of(&[Op::Compute(1), Op::SStore(33), Op::Compute(5)]),
                trace_of(&[Op::Compute(4), Op::SAtomic(1)]),
            ],
        ];
        for traces in cases {
            let batched = replay(&traces);
            let stepped = replay_unbatched(&traces);
            assert_eq!(batched.0, stepped.0, "cycles diverged");
            assert_eq!(batched.1, stepped.1, "counters diverged");
        }
    }

    #[test]
    fn scratch_reuse_across_replays_is_clean() {
        // Replay two very different warps through one scratch; the second
        // must not see any state from the first.
        let mut scratch = ReplayScratch::default();
        let cost = CostModel::v100();
        let first = vec![trace_of(&[Op::Compute(9), Op::GLoad(0)]); 32];
        let _ = replay_warp(&first, &cost, &mut scratch, None);
        let second = vec![trace_of(&[Op::Compute(1)])];
        let (cycles, c) = replay_warp(&second, &cost, &mut scratch, None);
        assert_eq!(c.issued_slots, 1);
        assert_eq!(c.active_thread_slots, 1);
        assert_eq!(cycles, cost.compute);
    }
}

#[cfg(test)]
mod replay_microbench {
    use super::*;
    use crate::trace::LaneTrace;

    /// Not a correctness test: a timing probe for the replay hot loop.
    /// Run with `cargo test --release -p gpu-sim microbench -- --nocapture --ignored`.
    #[test]
    #[ignore]
    fn microbench_replay_polak_shape() {
        // Polak-like warp: 32 lanes alternating compute/scattered-load,
        // with a divergent tail on lane 0.
        let mut traces: Vec<LaneTrace> = Vec::new();
        for lane in 0..32u64 {
            let mut t = LaneTrace::default();
            let steps = 40 + (lane % 7) * 10 + if lane == 0 { 120 } else { 0 };
            for k in 0..steps {
                t.push_compute(1);
                t.push(Op::GLoad((lane * 2_654_435_761 + k * 4096) & 0xfff_ffff));
                if k % 3 == 0 {
                    t.push(Op::GLoadHit(((lane * 97 + k) * 4) & 0xfff));
                }
            }
            traces.push(t);
        }
        let cost = CostModel::v100();
        let mut scratch = ReplayScratch::default();
        let reps = 20_000u32;
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..reps {
            let (cycles, c) = replay_warp(&traces, &cost, &mut scratch, None);
            acc = acc.wrapping_add(cycles).wrapping_add(c.active_thread_slots);
        }
        let dt = t0.elapsed();
        let (_, c1) = replay_warp(&traces, &cost, &mut scratch, None);
        let steps = c1.issued_slots;
        println!(
            "replay: {reps} reps x {} ops ({} issued slots) in {:?} -> {:.1} ns/slot (acc {acc})",
            traces.iter().map(|t| t.ops.len()).sum::<usize>(),
            steps,
            dt,
            dt.as_nanos() as f64 / (reps as f64 * steps as f64),
        );
    }
}
