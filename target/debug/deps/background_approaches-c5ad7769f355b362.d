/root/repo/target/debug/deps/background_approaches-c5ad7769f355b362.d: crates/tc-bench/src/bin/background_approaches.rs Cargo.toml

/root/repo/target/debug/deps/libbackground_approaches-c5ad7769f355b362.rmeta: crates/tc-bench/src/bin/background_approaches.rs Cargo.toml

crates/tc-bench/src/bin/background_approaches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
