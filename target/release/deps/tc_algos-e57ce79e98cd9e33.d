/root/repo/target/release/deps/tc_algos-e57ce79e98cd9e33.d: crates/tc-algos/src/lib.rs crates/tc-algos/src/api.rs crates/tc-algos/src/bisson.rs crates/tc-algos/src/device_graph.rs crates/tc-algos/src/fox.rs crates/tc-algos/src/green.rs crates/tc-algos/src/hindex.rs crates/tc-algos/src/hu.rs crates/tc-algos/src/polak.rs crates/tc-algos/src/registry.rs crates/tc-algos/src/tricore.rs crates/tc-algos/src/trust.rs crates/tc-algos/src/util.rs crates/tc-algos/src/testutil.rs

/root/repo/target/release/deps/libtc_algos-e57ce79e98cd9e33.rlib: crates/tc-algos/src/lib.rs crates/tc-algos/src/api.rs crates/tc-algos/src/bisson.rs crates/tc-algos/src/device_graph.rs crates/tc-algos/src/fox.rs crates/tc-algos/src/green.rs crates/tc-algos/src/hindex.rs crates/tc-algos/src/hu.rs crates/tc-algos/src/polak.rs crates/tc-algos/src/registry.rs crates/tc-algos/src/tricore.rs crates/tc-algos/src/trust.rs crates/tc-algos/src/util.rs crates/tc-algos/src/testutil.rs

/root/repo/target/release/deps/libtc_algos-e57ce79e98cd9e33.rmeta: crates/tc-algos/src/lib.rs crates/tc-algos/src/api.rs crates/tc-algos/src/bisson.rs crates/tc-algos/src/device_graph.rs crates/tc-algos/src/fox.rs crates/tc-algos/src/green.rs crates/tc-algos/src/hindex.rs crates/tc-algos/src/hu.rs crates/tc-algos/src/polak.rs crates/tc-algos/src/registry.rs crates/tc-algos/src/tricore.rs crates/tc-algos/src/trust.rs crates/tc-algos/src/util.rs crates/tc-algos/src/testutil.rs

crates/tc-algos/src/lib.rs:
crates/tc-algos/src/api.rs:
crates/tc-algos/src/bisson.rs:
crates/tc-algos/src/device_graph.rs:
crates/tc-algos/src/fox.rs:
crates/tc-algos/src/green.rs:
crates/tc-algos/src/hindex.rs:
crates/tc-algos/src/hu.rs:
crates/tc-algos/src/polak.rs:
crates/tc-algos/src/registry.rs:
crates/tc-algos/src/tricore.rs:
crates/tc-algos/src/trust.rs:
crates/tc-algos/src/util.rs:
crates/tc-algos/src/testutil.rs:
