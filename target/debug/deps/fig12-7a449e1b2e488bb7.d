/root/repo/target/debug/deps/fig12-7a449e1b2e488bb7.d: crates/tc-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-7a449e1b2e488bb7: crates/tc-bench/src/bin/fig12.rs

crates/tc-bench/src/bin/fig12.rs:
