//! CSV emission of a run matrix — one row per (algorithm, dataset) cell
//! with all profiling counters, so the figures can be re-plotted with
//! external tooling.

use std::io::{self, Write};

use crate::framework::report::cycles_to_ms;
use crate::framework::runner::{RunOutcome, RunRecord};

/// Column header, aligned with [`write_records`]' rows.
pub const CSV_HEADER: &str = "algorithm,dataset,status,triangles,verified,kernel_cycles,\
time_ms,global_load_requests,gld_transactions,gld_transactions_per_request,\
dram_load_sectors,global_store_requests,global_atomic_requests,\
warp_execution_efficiency,shared_requests,issued_slots";

/// Header for [`write_records_timed`]: [`CSV_HEADER`] plus the measured
/// host wall-clock column.
pub const CSV_TIMED_HEADER: &str = "algorithm,dataset,status,triangles,verified,kernel_cycles,\
time_ms,global_load_requests,gld_transactions,gld_transactions_per_request,\
dram_load_sectors,global_store_requests,global_atomic_requests,\
warp_execution_efficiency,shared_requests,issued_slots,host_wall_ms";

/// [`CSV_HEADER`] with the `backend` column, emitted only when a record
/// set mixes backends (see [`is_multi_backend`]).
pub const CSV_BACKEND_HEADER: &str = "algorithm,dataset,backend,status,triangles,verified,\
kernel_cycles,time_ms,global_load_requests,gld_transactions,gld_transactions_per_request,\
dram_load_sectors,global_store_requests,global_atomic_requests,\
warp_execution_efficiency,shared_requests,issued_slots";

/// [`CSV_TIMED_HEADER`] with the `backend` column.
pub const CSV_BACKEND_TIMED_HEADER: &str = "algorithm,dataset,backend,status,triangles,verified,\
kernel_cycles,time_ms,global_load_requests,gld_transactions,gld_transactions_per_request,\
dram_load_sectors,global_store_requests,global_atomic_requests,\
warp_execution_efficiency,shared_requests,issued_slots,host_wall_ms";

/// Whether a record set needs the `backend` column: any non-`"sim"`
/// cell. Pure sim sweeps — everything written before backends existed —
/// keep their exact historical shape, byte for byte.
pub fn is_multi_backend(records: &[RunRecord]) -> bool {
    records.iter().any(|r| r.backend != "sim")
}

/// One record's modelled columns (everything after `algorithm,dataset`).
/// Shared by the deterministic and timed writers so the modelled part of
/// a row is always byte-identical between the two.
fn modelled_columns(r: &RunRecord) -> String {
    match &r.outcome {
        RunOutcome::Ok {
            triangles,
            kernel_cycles,
            counters: c,
            verified,
        } => format!(
            "ok,{},{},{},{:.6},{},{},{:.4},{},{},{},{:.4},{},{}",
            triangles,
            verified,
            kernel_cycles,
            cycles_to_ms(*kernel_cycles),
            c.global_load_requests,
            c.gld_transactions,
            c.gld_transactions_per_request(),
            c.dram_load_sectors,
            c.global_store_requests,
            c.global_atomic_requests,
            c.warp_execution_efficiency(),
            c.shared_load_requests + c.shared_store_requests + c.shared_atomic_requests,
            c.issued_slots,
        ),
        // Errors may contain commas; quote the field.
        RunOutcome::Failed(e) => format!(
            "\"failed: {}\",,,,,,,,,,,,,",
            e.to_string().replace('"', "'"),
        ),
    }
}

/// Write the matrix as CSV. Failed cells carry the error in `status` and
/// empty numeric fields. Only modelled quantities are emitted, so the
/// output is byte-identical between serial and parallel sweeps of the
/// same inputs.
pub fn write_records<W: Write>(mut w: W, records: &[RunRecord]) -> io::Result<()> {
    if is_multi_backend(records) {
        writeln!(w, "{CSV_BACKEND_HEADER}")?;
        for r in records {
            writeln!(
                w,
                "{},{},{},{}",
                r.algorithm,
                r.dataset,
                r.backend,
                modelled_columns(r)
            )?;
        }
    } else {
        writeln!(w, "{CSV_HEADER}")?;
        for r in records {
            writeln!(w, "{},{},{}", r.algorithm, r.dataset, modelled_columns(r))?;
        }
    }
    Ok(())
}

/// Like [`write_records`], with a trailing `host_wall_ms` column holding
/// the measured per-cell simulation wall time. This variant is NOT
/// deterministic across runs — use it for throughput reporting, and
/// [`write_records`] for comparable artifacts.
pub fn write_records_timed<W: Write>(mut w: W, records: &[RunRecord]) -> io::Result<()> {
    if is_multi_backend(records) {
        writeln!(w, "{CSV_BACKEND_TIMED_HEADER}")?;
        for r in records {
            writeln!(
                w,
                "{},{},{},{},{:.3}",
                r.algorithm,
                r.dataset,
                r.backend,
                modelled_columns(r),
                r.wall.as_secs_f64() * 1e3,
            )?;
        }
    } else {
        writeln!(w, "{CSV_TIMED_HEADER}")?;
        for r in records {
            writeln!(
                w,
                "{},{},{},{:.3}",
                r.algorithm,
                r.dataset,
                modelled_columns(r),
                r.wall.as_secs_f64() * 1e3,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::ProfileCounters;

    fn records() -> Vec<RunRecord> {
        vec![
            RunRecord {
                algorithm: "Polak".into(),
                dataset: "ds",
                backend: "sim",
                outcome: RunOutcome::Ok {
                    triangles: 42,
                    kernel_cycles: 1380,
                    counters: ProfileCounters {
                        global_load_requests: 10,
                        gld_transactions: 25,
                        issued_slots: 12,
                        active_thread_slots: 384,
                        ..Default::default()
                    },
                    verified: true,
                },
                partition: None,
                wall: std::time::Duration::from_millis(12),
            },
            RunRecord {
                algorithm: "H-INDEX".into(),
                dataset: "ds",
                backend: "sim",
                outcome: RunOutcome::Failed(gpu_sim::SimError::KernelFault(
                    "overflow, with comma".into(),
                )),
                partition: None,
                wall: std::time::Duration::from_millis(3),
            },
        ]
    }

    #[test]
    fn csv_shape_and_content() {
        let mut out = Vec::new();
        write_records(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        let ok_cells: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(ok_cells[0], "Polak");
        assert_eq!(ok_cells[2], "ok");
        assert_eq!(ok_cells[3], "42");
        assert_eq!(ok_cells[9], "2.5000"); // tpr
        assert!(lines[2].contains("\"failed:"));
        // Header column count matches data column count.
        assert_eq!(lines[0].split(',').count(), ok_cells.len());
    }

    #[test]
    fn failed_rows_have_full_column_count() {
        let mut out = Vec::new();
        write_records(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The quoted status field contains a comma, so count raw commas:
        // 15 separators + 1 inside the quoted error message.
        assert_eq!(lines[2].matches(',').count(), 16);
    }

    #[test]
    fn timed_csv_appends_wall_column() {
        let mut out = Vec::new();
        write_records_timed(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CSV_TIMED_HEADER);
        assert!(lines[0].ends_with(",host_wall_ms"));
        assert!(lines[1].ends_with(",12.000"), "line: {}", lines[1]);
        assert!(lines[2].ends_with(",3.000"), "line: {}", lines[2]);
        // The modelled prefix is byte-identical to the deterministic CSV.
        let mut plain = Vec::new();
        write_records(&mut plain, &records()).unwrap();
        let plain = String::from_utf8(plain).unwrap();
        for (timed, plain) in lines[1..].iter().zip(plain.lines().skip(1)) {
            assert!(timed.starts_with(plain));
        }
    }

    #[test]
    fn mixed_backends_gain_the_backend_column() {
        let mut recs = records();
        recs[0].backend = "cpu";
        let mut out = Vec::new();
        write_records(&mut out, &recs).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CSV_BACKEND_HEADER);
        assert!(
            lines[1].starts_with("Polak,ds,cpu,ok,"),
            "line: {}",
            lines[1]
        );
        assert!(
            lines[2].starts_with("H-INDEX,ds,sim,"),
            "line: {}",
            lines[2]
        );
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header arity matches rows"
        );
        let mut timed = Vec::new();
        write_records_timed(&mut timed, &recs).unwrap();
        let timed = String::from_utf8(timed).unwrap();
        assert!(timed.starts_with(CSV_BACKEND_TIMED_HEADER));
        assert!(timed.contains("Polak,ds,cpu,ok,"));
    }

    #[test]
    fn pure_sim_sweeps_stay_byte_identical() {
        // The legacy single-backend shape, pinned: no backend column, no
        // reordering — artifacts written before backends existed diff
        // clean against artifacts written now.
        let mut out = Vec::new();
        write_records(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.lines().next().unwrap(),
            "algorithm,dataset,status,triangles,verified,kernel_cycles,time_ms,\
global_load_requests,gld_transactions,gld_transactions_per_request,dram_load_sectors,\
global_store_requests,global_atomic_requests,warp_execution_efficiency,shared_requests,\
issued_slots"
        );
        assert!(
            text.contains("Polak,ds,ok,42,true,1380,0.001000,10,25,2.5000,0,0,0,1.0000,0,12"),
            "csv: {text}"
        );
        assert!(!text.contains("backend"));
    }

    #[test]
    fn time_ms_matches_clock() {
        let mut out = Vec::new();
        write_records(&mut out, &records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        // 1380 cycles at 1.38 GHz = exactly 1 microsecond = 0.001 ms.
        assert!(text.contains("0.001000"));
    }
}
