/root/repo/target/debug/deps/future_work-a47ba8b98ef8b4eb.d: crates/tc-bench/src/bin/future_work.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_work-a47ba8b98ef8b4eb.rmeta: crates/tc-bench/src/bin/future_work.rs Cargo.toml

crates/tc-bench/src/bin/future_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
