/root/repo/target/debug/deps/criterion-4d108d47eeda8ad2.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4d108d47eeda8ad2.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4d108d47eeda8ad2.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
