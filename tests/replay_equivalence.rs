//! Cross-engine equivalence: every registered algorithm, replayed on the
//! pinned conformance graphs, must produce **byte-identical**
//! `LaunchStats` to the pinned table in `replay_equivalence/pins.rs`.
//!
//! The pins were captured from the pre-arena, one-`Op`-per-instruction
//! execution engine and survived the streaming rewrite (run-length-encoded
//! compute runs, per-worker `BlockScratch` arenas, small-array sector and
//! bank passes) unchanged — that equivalence is exactly what this test
//! locks. Any drift means the replay rules or the memory system changed;
//! re-pin deliberately with:
//!
//! ```sh
//! cargo run --release -p tc-bench --bin pin_replay_snapshots \
//!     > tests/replay_equivalence/pins.rs
//! ```

use tc_compare::algos::conformance::generator_cases;
use tc_compare::algos::DeviceGraph;
use tc_compare::core::framework::registry::all_algorithms;
use tc_compare::graph::{clean_edges, orient};
use tc_compare::sim::{Device, DeviceMem, ProfileCounters};

/// One representative graph per generator family (kept in sync with the
/// pin tool's `PINNED_CASES`).
const PINNED_CASES: [&str; 3] = ["er-dense", "rmat-skewed", "road-grid"];

/// One pinned launch: the exact modelled outcome of `algorithm` on
/// `case`.
pub struct Pin {
    pub algorithm: &'static str,
    pub case: &'static str,
    pub triangles: u64,
    pub kernel_cycles: u64,
    pub total_block_cycles: u64,
    pub blocks: u64,
    pub counters: ProfileCounters,
}

include!("replay_equivalence/pins.rs");

#[test]
fn every_algorithm_replays_bit_identically_to_the_pinned_engine() {
    let dev = Device::v100();
    let algos = all_algorithms();
    let cases = generator_cases();
    let mut checked = 0;
    for case in cases.iter().filter(|c| PINNED_CASES.contains(&c.name)) {
        let (g, _) = clean_edges(&case.edges);
        for algo in &algos {
            let pin = PINS
                .iter()
                .find(|p| p.algorithm == algo.name() && p.case == case.name)
                .unwrap_or_else(|| panic!("no pin for {} on {}", algo.name(), case.name));
            let dag = orient(&g, algo.preferred_orientation());
            let mut mem = DeviceMem::new(&dev);
            let dg = DeviceGraph::upload(&dag, &mut mem).expect("upload");
            let out = algo
                .count(&dev, &mut mem, &dg)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", algo.name(), case.name));
            let ctx = format!("{} on {}", algo.name(), case.name);
            assert_eq!(out.triangles, pin.triangles, "triangles drifted: {ctx}");
            assert_eq!(
                out.stats.kernel_cycles, pin.kernel_cycles,
                "kernel_cycles drifted: {ctx}"
            );
            assert_eq!(
                out.stats.total_block_cycles, pin.total_block_cycles,
                "total_block_cycles drifted: {ctx}"
            );
            assert_eq!(out.stats.blocks, pin.blocks, "blocks drifted: {ctx}");
            assert_eq!(out.stats.counters, pin.counters, "counters drifted: {ctx}");
            checked += 1;
        }
    }
    // Every pin was exercised: 10 algorithms x 3 graphs.
    assert_eq!(checked, PINS.len());
    assert_eq!(checked, 30);
}
