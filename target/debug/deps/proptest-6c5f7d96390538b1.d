/root/repo/target/debug/deps/proptest-6c5f7d96390538b1.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6c5f7d96390538b1.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6c5f7d96390538b1.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
