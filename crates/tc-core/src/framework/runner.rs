//! The evaluation runner: prepares a dataset once, then runs any set of
//! algorithms on it — each on a fresh device memory image, under its own
//! preferred orientation — verifying every GPU count against the CPU
//! reference. This produces the raw matrix behind Figures 11, 12, 13
//! and 15.

use std::collections::HashMap;

use gpu_sim::{Device, ProfileCounters, SimError};
use graph_data::{cpu_ref, orient, DagGraph, DatasetSpec, GraphStats, Orientation, UndirGraph};
use tc_algos::api::TcAlgorithm;
use tc_algos::device_graph::DeviceGraph;

/// A dataset after the preparation pipeline: generated (or loaded),
/// cleaned, with statistics, ground truth, and oriented variants cached.
pub struct PreparedDataset {
    pub spec: DatasetSpec,
    pub graph: UndirGraph,
    pub stats: GraphStats,
    /// Exact triangle count from the parallel CPU reference.
    pub ground_truth: u64,
    oriented: HashMap<Orientation, DagGraph>,
}

impl PreparedDataset {
    /// Run the pipeline for one Table II dataset.
    pub fn prepare(spec: &DatasetSpec) -> Self {
        let graph = spec.build();
        Self::from_graph(*spec, graph)
    }

    /// Wrap an already-cleaned graph (used by the examples and tests).
    pub fn from_graph(spec: DatasetSpec, graph: UndirGraph) -> Self {
        let stats = GraphStats::compute(&graph);
        let reference = orient(&graph, Orientation::DegreeAsc);
        let ground_truth = cpu_ref::forward_merge_parallel(&reference);
        let mut oriented = HashMap::new();
        oriented.insert(Orientation::DegreeAsc, reference);
        PreparedDataset {
            spec,
            graph,
            stats,
            ground_truth,
            oriented,
        }
    }

    /// The DAG under `o`, orienting lazily on first use.
    pub fn dag(&mut self, o: Orientation) -> &DagGraph {
        self.oriented.entry(o).or_insert_with(|| orient(&self.graph, o))
    }
}

/// How one (algorithm, dataset) cell ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    Ok {
        triangles: u64,
        /// Modelled kernel time in device cycles (the Figure 11/15
        /// y-axis).
        kernel_cycles: u64,
        counters: ProfileCounters,
        /// Whether the count matched the CPU reference.
        verified: bool,
    },
    /// The implementation failed to run — a red cross in Figure 11.
    Failed(SimError),
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub algorithm: String,
    pub dataset: &'static str,
    pub outcome: RunOutcome,
}

impl RunRecord {
    pub fn kernel_cycles(&self) -> Option<u64> {
        match &self.outcome {
            RunOutcome::Ok { kernel_cycles, .. } => Some(*kernel_cycles),
            RunOutcome::Failed(_) => None,
        }
    }

    pub fn counters(&self) -> Option<&ProfileCounters> {
        match &self.outcome {
            RunOutcome::Ok { counters, .. } => Some(counters),
            RunOutcome::Failed(_) => None,
        }
    }

    pub fn is_verified(&self) -> bool {
        matches!(self.outcome, RunOutcome::Ok { verified: true, .. })
    }
}

/// Run one algorithm on one prepared dataset (fresh device memory, the
/// algorithm's preferred orientation) and verify the count.
pub fn run_on_dataset(
    dev: &Device,
    algo: &dyn TcAlgorithm,
    data: &mut PreparedDataset,
) -> RunRecord {
    let ground_truth = data.ground_truth;
    let dataset = data.spec.name;
    let dag = data.dag(algo.preferred_orientation());
    let mut mem = gpu_sim::DeviceMem::new(dev);
    let outcome = match DeviceGraph::upload(dag, &mut mem)
        .and_then(|dg| algo.count(dev, &mut mem, &dg))
    {
        Ok(out) => RunOutcome::Ok {
            triangles: out.triangles,
            kernel_cycles: out.stats.kernel_cycles,
            counters: out.stats.counters,
            verified: out.triangles == ground_truth,
        },
        Err(e) => RunOutcome::Failed(e),
    };
    RunRecord {
        algorithm: algo.name().to_string(),
        dataset,
        outcome,
    }
}

/// The full evaluation sweep: every algorithm on every dataset, in the
/// given orders. Returns one record per cell.
pub fn run_matrix(
    dev: &Device,
    algos: &[Box<dyn TcAlgorithm>],
    datasets: &[DatasetSpec],
) -> Vec<RunRecord> {
    let mut records = Vec::with_capacity(algos.len() * datasets.len());
    for spec in datasets {
        let mut data = PreparedDataset::prepare(spec);
        for algo in algos {
            records.push(run_on_dataset(dev, algo.as_ref(), &mut data));
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::registry::all_algorithms;
    use graph_data::datasets::{GenSpec, SizeClass};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny-rmat",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Rmat { scale: 10, raw_edges: 8000 },
            seed: 7,
        }
    }

    #[test]
    fn all_nine_algorithms_verify_on_tiny_dataset() {
        let dev = Device::v100();
        let algos = all_algorithms();
        let mut data = PreparedDataset::prepare(&tiny_spec());
        assert!(data.ground_truth > 0, "fixture should contain triangles");
        for algo in &algos {
            let rec = run_on_dataset(&dev, algo.as_ref(), &mut data);
            match &rec.outcome {
                RunOutcome::Ok { verified, triangles, .. } => {
                    assert!(
                        verified,
                        "{}: counted {} expected {}",
                        rec.algorithm, triangles, data.ground_truth
                    );
                }
                RunOutcome::Failed(e) => panic!("{} failed: {e}", rec.algorithm),
            }
        }
    }

    #[test]
    fn run_matrix_shape() {
        let dev = Device::v100();
        let algos = all_algorithms();
        let specs = [tiny_spec()];
        let records = run_matrix(&dev, &algos, &specs);
        assert_eq!(records.len(), algos.len());
        assert!(records.iter().all(|r| r.is_verified()));
        assert!(records.iter().all(|r| r.kernel_cycles().unwrap() > 0));
        assert!(records.iter().all(|r| r.counters().is_some()));
    }

    #[test]
    fn oriented_variants_cached() {
        let mut data = PreparedDataset::prepare(&tiny_spec());
        let e1 = data.dag(Orientation::ById).num_edges();
        let e2 = data.dag(Orientation::DegreeAsc).num_edges();
        assert_eq!(e1, e2);
    }
}
