/root/repo/target/debug/deps/diag-51f4bbc6054e4156.d: crates/tc-bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-51f4bbc6054e4156: crates/tc-bench/src/bin/diag.rs

crates/tc-bench/src/bin/diag.rs:
