/root/repo/target/debug/deps/fig15-350dbe8a7353afb2.d: crates/tc-bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-350dbe8a7353afb2.rmeta: crates/tc-bench/src/bin/fig15.rs Cargo.toml

crates/tc-bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
