/root/repo/target/debug/examples/ktruss-14a92b62028118b2.d: examples/ktruss.rs

/root/repo/target/debug/examples/ktruss-14a92b62028118b2: examples/ktruss.rs

examples/ktruss.rs:
