//! The differential wall for this PR's two new subsystems:
//!
//! 1. **Out-of-core CSR** — a [`ChunkedCsr`] spilled to disk must be
//!    indistinguishable from the in-memory [`Csr`] it came from: same
//!    accessors, same orientations, same downstream triangle counts
//!    (property-tested over Erdős–Rényi, Barabási–Albert and R-MAT
//!    families).
//! 2. **Partitioned multi-device execution** — for every registry entry
//!    and every conformance graph, the N-device count must equal the
//!    single-device count exactly at N ∈ {2, 4, 8}, with the race
//!    detector and SimSan forced on, and per-device stats must be an
//!    exact split (triangles sum, link charges only off-diagonal).

use proptest::prelude::*;

use tc_compare::algos::conformance::generator_cases;
use tc_compare::core::framework::partitioned::run_partitioned;
use tc_compare::core::framework::registry::all_algorithms;
use tc_compare::core::framework::runner::{run_on_dataset, PreparedDataset, RunOutcome};
use tc_compare::graph::datasets::{DatasetSpec, GenSpec, SizeClass};
use tc_compare::graph::{
    clean_edges, gen, orient_access, ChunkCacheConfig, ChunkedCsr, Orientation,
};
use tc_compare::sim::Device;

use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tc-partitioned-{tag}-{}-{n}.csr",
        std::process::id()
    ))
}

/// A cache so small that every multi-chunk graph evicts: the equivalence
/// holds regardless of residency.
fn tiny_cache() -> ChunkCacheConfig {
    ChunkCacheConfig {
        chunk_words: 8,
        max_resident: 3,
        pinned_chunks: 1,
    }
}

fn assert_chunked_equivalent(edges: tc_compare::graph::EdgeList, tag: &str) {
    let (g, _) = clean_edges(&edges);
    let csr = g.csr();
    let path = temp_path(tag);
    let chunked = ChunkedCsr::spill_with(csr, &path, tiny_cache()).expect("spill");

    // Accessor equivalence, vertex by vertex.
    assert_eq!(chunked.num_vertices(), csr.num_vertices());
    assert_eq!(chunked.num_entries(), csr.num_entries());
    for v in 0..csr.num_vertices() {
        assert_eq!(chunked.degree(v), csr.degree(v), "degree({v})");
        assert_eq!(chunked.neighbors(v), csr.neighbors(v), "neighbors({v})");
    }

    // Orientation equivalence — the PreparedDataset pipeline over the
    // chunked accessor must produce the same DAG, hence the same counts.
    for o in [
        Orientation::ById,
        Orientation::DegreeAsc,
        Orientation::DegreeDesc,
        Orientation::KCore,
        Orientation::Random(9),
    ] {
        let from_mem = orient_access(csr, o);
        let from_chunk = orient_access(&chunked, o);
        assert_eq!(
            from_mem.csr().offsets(),
            from_chunk.csr().offsets(),
            "{o:?} offsets diverge"
        );
        assert_eq!(
            from_mem.csr().targets(),
            from_chunk.csr().targets(),
            "{o:?} targets diverge"
        );
    }
    drop(chunked);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chunked_matches_in_memory_on_er(n in 2u32..120, m in 1usize..500, seed in 0u64..1000) {
        assert_chunked_equivalent(gen::erdos_renyi(n, m, seed), "er");
    }

    #[test]
    fn chunked_matches_in_memory_on_ba(n in 5u32..150, k in 1u32..6, seed in 0u64..1000) {
        assert_chunked_equivalent(gen::barabasi_albert(n, k, 0.4, seed), "ba");
    }

    #[test]
    fn chunked_matches_in_memory_on_rmat(scale in 4u32..8, m in 10usize..800, seed in 0u64..1000) {
        assert_chunked_equivalent(gen::rmat(scale, m, 0.45, 0.22, 0.22, 0.11, seed), "rmat");
    }
}

/// Conformance cases wrapped as prepared datasets (the partitioned
/// runner's input type).
fn prepared_cases() -> Vec<PreparedDataset> {
    generator_cases()
        .into_iter()
        .map(|case| {
            let (g, _) = clean_edges(&case.edges);
            let spec = DatasetSpec {
                name: case.name,
                paper_vertices: 0,
                paper_edges: 0,
                paper_avg_degree: 0.0,
                size_class: SizeClass::Small,
                gen: GenSpec::Rmat {
                    scale: 1,
                    raw_edges: 0,
                },
                seed: 0,
            };
            PreparedDataset::from_graph(spec, g)
        })
        .collect()
}

#[test]
fn n_device_counts_equal_single_device_for_every_registry_entry() {
    // Race detector and SimSan live on every launch of every device.
    let dev = Device::v100().with_race_detection().with_sanitizer();
    let algos = all_algorithms();
    assert_eq!(algos.len(), 10, "the registry should hold ten algorithms");
    for data in prepared_cases() {
        for algo in &algos {
            let single = run_on_dataset(&dev, algo.as_ref(), &data);
            let expected = match &single.outcome {
                RunOutcome::Ok { triangles, .. } => *triangles,
                RunOutcome::Failed(e) => {
                    panic!(
                        "{} single-device failed on {}: {e}",
                        single.algorithm, data.spec.name
                    )
                }
            };
            assert_eq!(expected, data.ground_truth, "{}", single.algorithm);
            for n in [2u32, 4, 8] {
                let multi = run_partitioned(&dev, algo.as_ref(), &data, n);
                match &multi.outcome {
                    RunOutcome::Ok {
                        triangles,
                        verified,
                        ..
                    } => {
                        assert_eq!(
                            *triangles, expected,
                            "{} x{n} on {} disagrees with single-device",
                            multi.algorithm, data.spec.name
                        );
                        assert!(verified);
                    }
                    RunOutcome::Failed(e) => panic!(
                        "{} x{n} failed on {}: {e}",
                        multi.algorithm,
                        data.spec.name,
                        e = e
                    ),
                }
                let p = multi.partition.as_ref().expect("partition stats at N>1");
                assert_eq!(p.num_devices, n);
                assert_eq!(p.per_device.len(), n as usize);
                let sum: u64 = p.per_device.iter().map(|d| d.triangles).sum();
                assert_eq!(
                    sum, expected,
                    "{} x{n}: split must be exact",
                    multi.algorithm
                );
                assert_eq!(
                    p.makespan_cycles,
                    p.per_device
                        .iter()
                        .map(|d| d.kernel_cycles + d.link_cycles)
                        .max()
                        .unwrap()
                );
            }
        }
    }
}

#[test]
fn one_device_partitioned_run_carries_no_partition_stats() {
    let dev = Device::v100();
    let algos = all_algorithms();
    let data = &prepared_cases()[0];
    let direct = run_on_dataset(&dev, algos[0].as_ref(), data);
    let via = run_partitioned(&dev, algos[0].as_ref(), data, 1);
    assert!(via.partition.is_none());
    assert_eq!(via.kernel_cycles(), direct.kernel_cycles());
}
