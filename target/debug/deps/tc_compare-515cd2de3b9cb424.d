/root/repo/target/debug/deps/tc_compare-515cd2de3b9cb424.d: src/lib.rs

/root/repo/target/debug/deps/tc_compare-515cd2de3b9cb424: src/lib.rs

src/lib.rs:
