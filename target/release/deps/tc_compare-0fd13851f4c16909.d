/root/repo/target/release/deps/tc_compare-0fd13851f4c16909.d: src/lib.rs

/root/repo/target/release/deps/libtc_compare-0fd13851f4c16909.rlib: src/lib.rs

/root/repo/target/release/deps/libtc_compare-0fd13851f4c16909.rmeta: src/lib.rs

src/lib.rs:
