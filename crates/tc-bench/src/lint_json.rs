//! `LINT_sim.json` — the per-algorithm diagnostic wall.
//!
//! The `lint_sweep` binary runs every registry algorithm over the
//! conformance corpus with SimLint forced on and serializes the merged
//! [`LintReport`](gpu_sim::LintReport) of each (algorithm × dataset)
//! cell. The committed file is a *golden snapshot* of the registry's
//! performance-lint findings: which algorithms are lint-clean, which
//! carry known findings, and exactly what those findings say.
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "device": "V100",
//!   "records": [
//!     {"algorithm": "GroupTC", "dataset": "er-dense", "outcome": "ok",
//!      "clean": false, "diags": [
//!       {"rule": "atomic-contention", "pc_hint": "phase 1, `sums`[0]",
//!        "detail": "..."}
//!     ]},
//!     ...
//!   ]
//! }
//! ```
//!
//! [`compare_snapshot`] is the CI gate: a **new rule** appearing for a
//! cell, a **per-rule count increase**, or a previously-ok cell failing
//! outright are hard failures; message drift at constant counts, rules
//! *disappearing* (an improvement — refresh the snapshot), and cells
//! with no baseline counterpart are advisory. Like `bench_json` this is
//! dependency-free: hand-rendered JSON, re-parsed by the same minimal
//! parser.

use gpu_sim::{LintReport, LintRule};

use crate::bench_json::{escape, parse, Json};

/// One serialized diagnostic (the stable triple of a
/// [`Diag`](gpu_sim::Diag); block/lane witnesses are launch-local and
/// stay out of the golden file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagRecord {
    pub rule: String,
    pub pc_hint: String,
    pub detail: String,
}

/// One (algorithm × dataset) cell of the diagnostic wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintCell {
    pub algorithm: String,
    pub dataset: String,
    /// `"ok"` or `"failed"` (a fatal diagnostic or any other
    /// `SimError` poisons the cell).
    pub outcome: &'static str,
    /// The failure message when `outcome == "failed"`, else empty.
    pub error: String,
    pub diags: Vec<LintDiagRecord>,
}

impl LintCell {
    /// A successful cell from the launch's merged report (the report's
    /// own ordering is already stable: rule, then site, then detail).
    pub fn from_report(algorithm: &str, dataset: &str, report: &LintReport) -> LintCell {
        LintCell {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            outcome: "ok",
            error: String::new(),
            diags: report
                .diags
                .iter()
                .map(|d| LintDiagRecord {
                    rule: d.rule.as_str().to_string(),
                    pc_hint: d.pc_hint.clone(),
                    detail: d.detail.clone(),
                })
                .collect(),
        }
    }

    /// A poisoned cell (fatal diagnostic or other simulator error).
    pub fn from_error(algorithm: &str, dataset: &str, error: &str) -> LintCell {
        LintCell {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            outcome: "failed",
            error: error.to_string(),
            diags: Vec::new(),
        }
    }

    pub fn is_clean(&self) -> bool {
        self.outcome == "ok" && self.diags.is_empty()
    }

    fn count(&self, rule: &str) -> usize {
        self.diags.iter().filter(|d| d.rule == rule).count()
    }
}

/// Render the full `LINT_sim.json` document. One diag per line, so a
/// plain `diff` of two snapshots shows exactly which findings moved.
pub fn render(device: &str, cells: &[LintCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"device\": \"{}\",\n", escape(device)));
    out.push_str("  \"records\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let error = if c.outcome == "failed" {
            format!(" \"error\": \"{}\",", escape(&c.error))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"dataset\": \"{}\", \"outcome\": \"{}\",{} \
             \"clean\": {}, \"diags\": [",
            escape(&c.algorithm),
            escape(&c.dataset),
            c.outcome,
            error,
            c.is_clean(),
        ));
        if c.diags.is_empty() {
            out.push_str(&format!("]}}{comma}\n"));
        } else {
            out.push('\n');
            for (j, d) in c.diags.iter().enumerate() {
                let dcomma = if j + 1 == c.diags.len() { "" } else { "," };
                out.push_str(&format!(
                    "      {{\"rule\": \"{}\", \"pc_hint\": \"{}\", \"detail\": \"{}\"}}{}\n",
                    escape(&d.rule),
                    escape(&d.pc_hint),
                    escape(&d.detail),
                    dcomma,
                ));
            }
            out.push_str(&format!("    ]}}{comma}\n"));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validate a `LINT_sim.json` document against schema version 1 and
/// return the parsed cells. The rule vocabulary is closed (the
/// [`LintRule::ALL`] names), and the redundant `clean` flag must agree
/// with the diags it summarizes.
pub fn validate(text: &str) -> Result<Vec<LintCell>, String> {
    let doc = parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `schema_version`")?;
    if version != 1.0 {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("device")
        .and_then(Json::as_str)
        .ok_or("missing string `device`")?;
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing array `records`")?;
    let mut cells = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let ctx = |what: &str| format!("record {i}: {what}");
        let algorithm = r
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `algorithm`"))?;
        let dataset = r
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `dataset`"))?;
        let outcome = match r.get("outcome").and_then(Json::as_str) {
            Some("ok") => "ok",
            Some("failed") => "failed",
            Some(other) => return Err(ctx(&format!("bad outcome `{other}`"))),
            None => return Err(ctx("missing string `outcome`")),
        };
        let error = r
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let diags = r
            .get("diags")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("missing array `diags`"))?;
        let mut parsed = Vec::with_capacity(diags.len());
        for (j, d) in diags.iter().enumerate() {
            let dctx = |what: &str| ctx(&format!("diag {j}: {what}"));
            let rule = d
                .get("rule")
                .and_then(Json::as_str)
                .ok_or_else(|| dctx("missing string `rule`"))?;
            if !LintRule::ALL.iter().any(|r| r.as_str() == rule) {
                return Err(dctx(&format!("unknown rule `{rule}`")));
            }
            let pc_hint = d
                .get("pc_hint")
                .and_then(Json::as_str)
                .ok_or_else(|| dctx("missing string `pc_hint`"))?;
            let detail = d
                .get("detail")
                .and_then(Json::as_str)
                .ok_or_else(|| dctx("missing string `detail`"))?;
            parsed.push(LintDiagRecord {
                rule: rule.to_string(),
                pc_hint: pc_hint.to_string(),
                detail: detail.to_string(),
            });
        }
        let cell = LintCell {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            outcome,
            error,
            diags: parsed,
        };
        match r.get("clean") {
            Some(Json::Bool(b)) if *b == cell.is_clean() => {}
            Some(Json::Bool(_)) => return Err(ctx("`clean` disagrees with `diags`/`outcome`")),
            _ => return Err(ctx("missing boolean `clean`")),
        }
        cells.push(cell);
    }
    Ok(cells)
}

/// Result of regressing a fresh lint sweep against the committed
/// snapshot. `failures` is what CI gates on; `advisories` print for a
/// human to triage.
#[derive(Debug, Default)]
pub struct SnapshotReport {
    /// Rule-level regressions: a rule newly firing for a cell, a
    /// per-rule finding count increasing, or a baseline-ok cell failing.
    pub failures: Vec<String>,
    /// Non-gating drift: message/site changes at constant counts, rules
    /// that stopped firing (refresh the snapshot), cells without a
    /// baseline counterpart on either side.
    pub advisories: Vec<String>,
    /// Number of (algorithm × dataset) cells present on both sides.
    pub compared: usize,
}

impl SnapshotReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a fresh sweep's cells against a committed `LINT_sim.json`.
pub fn compare_snapshot(baseline_text: &str, cells: &[LintCell]) -> Result<SnapshotReport, String> {
    let baseline = validate(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let mut report = SnapshotReport::default();
    for cell in cells {
        let label = format!("{} / {}", cell.algorithm, cell.dataset);
        let Some(base) = baseline
            .iter()
            .find(|b| b.algorithm == cell.algorithm && b.dataset == cell.dataset)
        else {
            report
                .advisories
                .push(format!("{label}: no baseline cell (new coverage?)"));
            continue;
        };
        report.compared += 1;
        if base.outcome == "ok" && cell.outcome != "ok" {
            report
                .failures
                .push(format!("{label}: was lint-ok, now fails: {}", cell.error));
            continue;
        }
        for rule in LintRule::ALL {
            let rule = rule.as_str();
            let (now, was) = (cell.count(rule), base.count(rule));
            if now > was {
                report.failures.push(format!(
                    "{label}: `{rule}` findings {was} -> {now} — a lint regression \
                     (or refresh LINT_sim.json if the new finding is understood)"
                ));
            } else if now < was {
                report.advisories.push(format!(
                    "{label}: `{rule}` findings {was} -> {now} — an improvement; \
                     refresh LINT_sim.json to pin it"
                ));
            }
        }
        if cell.count_map_matches(base) && cell.diags != base.diags {
            report.advisories.push(format!(
                "{label}: finding text/site drifted at constant counts — \
                 refresh LINT_sim.json if intentional"
            ));
        }
    }
    for base in &baseline {
        if !cells
            .iter()
            .any(|c| c.algorithm == base.algorithm && c.dataset == base.dataset)
        {
            report.advisories.push(format!(
                "{} / {}: baseline cell not exercised by this sweep",
                base.algorithm, base.dataset
            ));
        }
    }
    if report.compared == 0 {
        return Err(
            "no (algorithm × dataset) cell overlaps the snapshot — nothing to check".to_string(),
        );
    }
    Ok(report)
}

impl LintCell {
    fn count_map_matches(&self, other: &LintCell) -> bool {
        LintRule::ALL
            .iter()
            .all(|r| self.count(r.as_str()) == other.count(r.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, hint: &str) -> LintDiagRecord {
        LintDiagRecord {
            rule: rule.to_string(),
            pc_hint: hint.to_string(),
            detail: format!("detail for {rule} at {hint}"),
        }
    }

    fn cell(algo: &str, diags: Vec<LintDiagRecord>) -> LintCell {
        LintCell {
            algorithm: algo.to_string(),
            dataset: "er-dense".to_string(),
            outcome: "ok",
            error: String::new(),
            diags,
        }
    }

    #[test]
    fn render_roundtrips_through_validate() {
        let cells = vec![
            cell("Polak", vec![]),
            cell(
                "GroupTC",
                vec![
                    diag("atomic-contention", "phase 1, `sums`[0]"),
                    diag("low-occupancy", "phase 2"),
                ],
            ),
        ];
        let text = render("V100", &cells);
        let parsed = validate(&text).unwrap();
        assert_eq!(parsed, cells);
        assert!(parsed[0].is_clean());
        assert!(!parsed[1].is_clean());
    }

    #[test]
    fn failed_cells_carry_the_error_and_are_not_clean() {
        let c = LintCell::from_error("Hu", "road-grid", "barrier divergence in block 3");
        let text = render("V100", std::slice::from_ref(&c));
        assert!(text.contains("\"error\": \"barrier divergence in block 3\""));
        assert_eq!(validate(&text).unwrap(), vec![c]);
    }

    #[test]
    fn rule_vocabulary_is_closed() {
        let text = render("V100", &[cell("Polak", vec![diag("made-up-rule", "x")])]);
        assert!(validate(&text).unwrap_err().contains("unknown rule"));
    }

    #[test]
    fn clean_flag_must_agree_with_diags() {
        let text = render("V100", &[cell("Polak", vec![])]);
        let lying = text.replace("\"clean\": true", "\"clean\": false");
        assert!(validate(&lying).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn new_rule_and_count_increase_fail_the_gate() {
        let baseline = render("V100", &[cell("Polak", vec![diag("low-occupancy", "p2")])]);
        // A rule the baseline never saw for this cell: hard failure.
        let now = vec![cell(
            "Polak",
            vec![diag("low-occupancy", "p2"), diag("bank-conflict", "s0")],
        )];
        let report = compare_snapshot(&baseline, &now).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("bank-conflict"));
        // Same rule, one more finding: also a failure.
        let now = vec![cell(
            "Polak",
            vec![diag("low-occupancy", "p2"), diag("low-occupancy", "p3")],
        )];
        let report = compare_snapshot(&baseline, &now).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("1 -> 2"));
    }

    #[test]
    fn disappearing_rules_and_text_drift_are_advisory() {
        let baseline = render("V100", &[cell("Polak", vec![diag("low-occupancy", "p2")])]);
        // The finding went away: advisory (refresh the snapshot).
        let report = compare_snapshot(&baseline, &[cell("Polak", vec![])]).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.advisories.iter().any(|a| a.contains("improvement")));
        // Same counts, different site: advisory drift.
        let report = compare_snapshot(
            &baseline,
            &[cell("Polak", vec![diag("low-occupancy", "p9")])],
        )
        .unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.advisories.iter().any(|a| a.contains("drifted")));
    }

    #[test]
    fn ok_cell_turning_failed_fails_the_gate() {
        let baseline = render("V100", &[cell("Polak", vec![])]);
        let now = vec![LintCell::from_error("Polak", "er-dense", "boom")];
        let report = compare_snapshot(&baseline, &now).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("now fails"));
    }

    #[test]
    fn non_overlapping_sweeps_are_an_error() {
        let baseline = render("V100", &[cell("Polak", vec![])]);
        let err = compare_snapshot(&baseline, &[cell("TRUST", vec![])]).unwrap_err();
        assert!(err.contains("overlaps"), "err: {err}");
    }

    #[test]
    fn identical_sweeps_pass_with_no_advisories() {
        let cells = vec![
            cell("Polak", vec![]),
            cell("GroupTC", vec![diag("atomic-contention", "p1")]),
        ];
        let baseline = render("V100", &cells);
        let report = compare_snapshot(&baseline, &cells).unwrap();
        assert!(report.passed());
        assert!(report.advisories.is_empty(), "{:?}", report.advisories);
        assert_eq!(report.compared, 2);
    }
}
