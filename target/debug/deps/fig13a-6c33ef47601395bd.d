/root/repo/target/debug/deps/fig13a-6c33ef47601395bd.d: crates/tc-bench/src/bin/fig13a.rs

/root/repo/target/debug/deps/libfig13a-6c33ef47601395bd.rmeta: crates/tc-bench/src/bin/fig13a.rs

crates/tc-bench/src/bin/fig13a.rs:
