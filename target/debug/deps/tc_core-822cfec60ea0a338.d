/root/repo/target/debug/deps/tc_core-822cfec60ea0a338.d: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs

/root/repo/target/debug/deps/libtc_core-822cfec60ea0a338.rmeta: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs

crates/tc-core/src/lib.rs:
crates/tc-core/src/framework/mod.rs:
crates/tc-core/src/framework/claims.rs:
crates/tc-core/src/framework/csv.rs:
crates/tc-core/src/framework/registry.rs:
crates/tc-core/src/framework/report.rs:
crates/tc-core/src/framework/runner.rs:
crates/tc-core/src/grouptc.rs:
crates/tc-core/src/grouptc_hybrid.rs:
