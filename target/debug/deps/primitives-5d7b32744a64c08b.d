/root/repo/target/debug/deps/primitives-5d7b32744a64c08b.d: crates/tc-bench/benches/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libprimitives-5d7b32744a64c08b.rmeta: crates/tc-bench/benches/primitives.rs Cargo.toml

crates/tc-bench/benches/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
