/root/repo/target/debug/examples/clustering_coefficient-a432776eb725749e.d: examples/clustering_coefficient.rs

/root/repo/target/debug/examples/clustering_coefficient-a432776eb725749e: examples/clustering_coefficient.rs

examples/clustering_coefficient.rs:
