/root/repo/target/debug/deps/ablation_grouptc-0a7124d12b25fb06.d: crates/tc-bench/src/bin/ablation_grouptc.rs

/root/repo/target/debug/deps/libablation_grouptc-0a7124d12b25fb06.rmeta: crates/tc-bench/src/bin/ablation_grouptc.rs

crates/tc-bench/src/bin/ablation_grouptc.rs:
