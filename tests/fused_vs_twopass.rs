//! Differential pin: the fused streaming replay engine (the default —
//! each warp's phase trace is replayed the moment its 32 lanes finish)
//! and the retained two-pass engine (`Device::with_retained_trace` —
//! record the whole block, replay at the barrier) must produce
//! **byte-identical** outcomes: same triangle count, same
//! `kernel_cycles`, same `total_block_cycles`, and the same value in
//! every `ProfileCounters` field.
//!
//! The two engines share the replay rules but differ in when replay
//! runs and how lane buffers are recycled, so this test is the direct
//! guard against the fusion ever drifting — with and without the
//! data-race detector + SimSan + SimLint engaged, since the analyses
//! hook the record side (and, for lints, observe the replay stream) and
//! must not perturb either engine's accounting. The whole-`LaunchStats`
//! equality includes the attached `LintReport`, so the lint findings
//! themselves must be engine-identical too.
//!
//! Coverage: every registered algorithm (the list comes from the
//! framework registry, so new algorithms enroll automatically) on three
//! structurally distinct conformance graphs (dense Erdős–Rényi, skewed
//! R-MAT, sparse road grid).

use tc_compare::algos::conformance::generator_cases;
use tc_compare::algos::{DeviceGraph, TcAlgorithm};
use tc_compare::core::all_algorithms;
use tc_compare::graph::{clean_edges, orient, DagGraph};
use tc_compare::sim::{Device, DeviceMem, LaunchStats};

/// The three differential graphs: one per major structure class of the
/// conformance corpus.
const CASES: [&str; 3] = ["er-dense", "rmat-skewed", "road-grid"];

fn run_on(dev: &Device, algo: &dyn TcAlgorithm, dag: &DagGraph) -> (u64, LaunchStats) {
    let mut mem = DeviceMem::new(dev);
    let dg = DeviceGraph::upload(dag, &mut mem).expect("upload");
    let out = algo
        .count(dev, &mut mem, &dg)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    dg.free(&mut mem).expect("free");
    mem.leak_check().expect("leak");
    (out.triangles, out.stats)
}

fn assert_engines_agree(analyses_on: bool) {
    let cases = generator_cases();
    let (fused_dev, retained_dev) = if analyses_on {
        (
            Device::v100()
                .with_race_detection()
                .with_sanitizer()
                .with_lints(),
            Device::v100()
                .with_race_detection()
                .with_sanitizer()
                .with_lints()
                .with_retained_trace(),
        )
    } else {
        (Device::v100(), Device::v100().with_retained_trace())
    };
    for name in CASES {
        let case = cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("conformance case `{name}` disappeared"));
        let (g, _) = clean_edges(&case.edges);
        for algo in all_algorithms() {
            let dag = orient(&g, algo.preferred_orientation());
            let (fused_count, fused_stats) = run_on(&fused_dev, algo.as_ref(), &dag);
            let (retained_count, retained_stats) = run_on(&retained_dev, algo.as_ref(), &dag);
            assert_eq!(
                fused_count,
                retained_count,
                "{} on `{name}` (analyses {analyses_on}): triangle counts diverge",
                algo.name(),
            );
            assert_eq!(
                fused_stats,
                retained_stats,
                "{} on `{name}` (analyses {analyses_on}): fused and retained \
                 engines must be byte-identical across LaunchStats",
                algo.name(),
            );
            if analyses_on {
                assert!(
                    fused_stats.counters.race_checks > 0,
                    "{} on `{name}`: race detector never engaged",
                    algo.name(),
                );
                assert!(
                    fused_stats.counters.sanitizer_checks > 0,
                    "{} on `{name}`: SimSan never engaged",
                    algo.name(),
                );
                assert!(
                    fused_stats.counters.lint_checks > 0,
                    "{} on `{name}`: SimLint never engaged",
                    algo.name(),
                );
                assert!(
                    fused_stats.lint.is_some(),
                    "{} on `{name}`: lints on but no LintReport attached",
                    algo.name(),
                );
            }
        }
    }
}

#[test]
fn fused_and_retained_engines_are_byte_identical() {
    assert_engines_agree(false);
}

#[test]
fn fused_and_retained_engines_are_byte_identical_under_analyses() {
    assert_engines_agree(true);
}
