/root/repo/target/debug/deps/diag-e183ea2a304c7960.d: crates/tc-bench/src/bin/diag.rs

/root/repo/target/debug/deps/libdiag-e183ea2a304c7960.rmeta: crates/tc-bench/src/bin/diag.rs

crates/tc-bench/src/bin/diag.rs:
