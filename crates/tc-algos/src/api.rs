//! The framework-facing algorithm interface: every counter — the eight
//! published ones here and GroupTC in `tc-core` — implements
//! [`TcAlgorithm`].

use gpu_sim::{Device, DeviceMem, LaunchStats, SimError};
use graph_data::{DagGraph, Orientation};

use crate::device_graph::DeviceGraph;

/// How an implementation generates the neighbour lists (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IteratorKind {
    Vertex,
    Edge,
}

/// Which intersection primitive the implementation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intersection {
    Merge,
    BinSearch,
    Hash,
    BitMap,
    /// Fox switches between merge and binary search per edge.
    MergeOrBinSearch,
}

/// Whether one thread processes a whole edge/vertex (coarse) or several
/// threads cooperate on one (fine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    Coarse,
    Fine,
}

/// The Table I row describing an implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoMeta {
    pub name: &'static str,
    pub reference: &'static str,
    pub year: u16,
    pub iterator: IteratorKind,
    pub intersection: Intersection,
    pub granularity: Granularity,
}

/// Result of a full triangle-count run: the exact count plus the merged
/// launch statistics of every kernel the implementation issued.
#[derive(Debug, Clone)]
pub struct TcOutput {
    pub triangles: u64,
    pub stats: LaunchStats,
}

/// A GPU triangle-counting implementation under test.
pub trait TcAlgorithm: Sync {
    /// Short display name (Table I / figure legend).
    fn name(&self) -> &'static str {
        self.meta().name
    }

    /// Taxonomy row (Table I).
    fn meta(&self) -> AlgoMeta;

    /// The orientation this implementation preprocesses with. Defaults to
    /// degree-ascending relabeling (what the optimized codes use).
    fn preferred_orientation(&self) -> Orientation {
        Orientation::DegreeAsc
    }

    /// Count the triangles of an uploaded DAG. Implementations allocate
    /// their own auxiliary device structures from `mem` (and free them),
    /// so out-of-memory failures surface exactly like the red crosses in
    /// Figure 11.
    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError>;

    /// Count the triangles of the same oriented DAG natively on the
    /// host: a rayon-parallel CPU kernel mirroring the implementation's
    /// iterator/intersection strategy (see [`crate::cpu`]). This is the
    /// `Backend::Cpu` execution path — it models nothing (no cycles, no
    /// counters), it just produces the exact count at wall-clock speed.
    ///
    /// The default is the parallel Forward merge reference; every
    /// registered algorithm overrides it with its strategy-matched
    /// kernel. A panic here is isolated by the runner's CPU backend as
    /// `RunOutcome::Failed`, mirroring how device-side faults poison
    /// only their own sweep cell.
    fn count_cpu(&self, dag: &DagGraph) -> u64 {
        graph_data::cpu_ref::forward_merge_parallel(dag)
    }
}
