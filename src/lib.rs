//! # tc-compare — facade crate
//!
//! Re-exports the whole reproduction of *"A Comparative Study of
//! Intersection-Based Triangle Counting Algorithms on GPUs"* behind one
//! dependency:
//!
//! * [`sim`] — the deterministic SIMT GPU simulator substrate.
//! * [`graph`] — graph formats, cleaning, generators, dataset registry and
//!   CPU reference triangle counters.
//! * [`algos`] — the eight published GPU ITC algorithms (Polak, Green,
//!   Bisson, TriCore, Fox, Hu, H-INDEX, TRUST).
//! * [`core`] — the unified evaluation framework and the paper's new
//!   GroupTC algorithm.
//!
//! See `examples/quickstart.rs` for a five-line triangle count.
//!
//! ```
//! use tc_compare::algos::{DeviceGraph, TcAlgorithm};
//! use tc_compare::core::GroupTc;
//! use tc_compare::graph::{clean_edges, orient, EdgeList, Orientation};
//! use tc_compare::sim::{Device, DeviceMem};
//!
//! let raw = EdgeList::new(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
//! let (graph, _) = clean_edges(&raw);
//! let dag = orient(&graph, Orientation::DegreeAsc);
//!
//! let device = Device::v100();
//! let mut mem = DeviceMem::new(&device);
//! let on_device = DeviceGraph::upload(&dag, &mut mem)?;
//! let out = GroupTc::default().count(&device, &mut mem, &on_device)?;
//! assert_eq!(out.triangles, 1);
//! # Ok::<(), tc_compare::sim::SimError>(())
//! ```

pub use gpu_sim as sim;
pub use graph_data as graph;
pub use tc_algos as algos;
pub use tc_core as core;
