//! # tc-bench — benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index) plus Criterion benches. The binaries share [`sweep`] /
//! [`full_sweep`], which run the evaluation matrix and return the records
//! the figures are printed from.
//!
//! Dataset selection: every figure binary accepts dataset names as
//! arguments (default: all 19 of Table II). `--small` selects the
//! small class, `--medium` small+medium — handy for quick runs, since the
//! full sweep simulates ~170 kernel configurations.

pub mod bench_json;
pub mod lint_json;

use gpu_sim::Device;
use graph_data::{DatasetSpec, SizeClass, TABLE2_DATASETS};
use tc_algos::api::TcAlgorithm;
use tc_core::framework::registry::all_algorithms;
use tc_core::framework::runner::{run_matrix, run_matrix_parallel, RunRecord};

/// Run the given algorithms over the given datasets on a simulated V100.
///
/// Cells are fanned out across a rayon pool; the records come back in
/// the same deterministic (dataset-major) order as [`sweep_serial`], and
/// a faulting implementation records `Failed` for its own cell without
/// taking the rest of the sweep down. Honor `--serial` from a binary by
/// calling [`sweep_serial`] instead.
pub fn sweep(algos: &[Box<dyn TcAlgorithm>], datasets: &[DatasetSpec]) -> Vec<RunRecord> {
    let dev = Device::v100();
    run_matrix_parallel(&dev, algos, datasets)
}

/// [`sweep`] without the parallel fan-out — one cell at a time, for
/// debugging or for minimizing peak memory on huge sweeps.
pub fn sweep_serial(algos: &[Box<dyn TcAlgorithm>], datasets: &[DatasetSpec]) -> Vec<RunRecord> {
    let dev = Device::v100();
    run_matrix(&dev, algos, datasets)
}

/// The paper's full evaluation: all nine algorithms on the given
/// datasets.
pub fn full_sweep(datasets: &[DatasetSpec]) -> Vec<RunRecord> {
    sweep(&all_algorithms(), datasets)
}

/// Parse figure-binary CLI args into a dataset list.
///
/// * no args → all 19;
/// * `--small` → the small class; `--medium` → small + medium;
/// * otherwise each arg must be a Table II dataset name.
pub fn datasets_from_args(args: &[String]) -> Result<Vec<DatasetSpec>, String> {
    if args.is_empty() {
        return Ok(TABLE2_DATASETS.to_vec());
    }
    if args.len() == 1 && args[0] == "--small" {
        return Ok(TABLE2_DATASETS
            .iter()
            .filter(|d| d.size_class == SizeClass::Small)
            .copied()
            .collect());
    }
    if args.len() == 1 && args[0] == "--medium" {
        return Ok(TABLE2_DATASETS
            .iter()
            .filter(|d| d.size_class != SizeClass::Large)
            .copied()
            .collect());
    }
    args.iter()
        .map(|name| {
            DatasetSpec::by_name(name)
                .copied()
                .ok_or_else(|| format!("unknown dataset `{name}` (see Table II)"))
        })
        .collect()
}

/// Progress note to stderr so long sweeps show life.
pub fn eprint_progress(what: &str) {
    eprintln!("[tc-bench] {what}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_select_all_19() {
        assert_eq!(datasets_from_args(&[]).unwrap().len(), 19);
    }

    #[test]
    fn class_filters() {
        let small = datasets_from_args(&["--small".into()]).unwrap();
        assert!(small.iter().all(|d| d.size_class == SizeClass::Small));
        assert_eq!(small.len(), 6);
        let medium = datasets_from_args(&["--medium".into()]).unwrap();
        assert_eq!(medium.len(), 16);
    }

    #[test]
    fn names_resolve_case_insensitively() {
        let ds = datasets_from_args(&["as-caida".into(), "Twitter".into()]).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(datasets_from_args(&["bogus".into()]).is_err());
    }
}
