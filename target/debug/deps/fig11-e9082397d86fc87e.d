/root/repo/target/debug/deps/fig11-e9082397d86fc87e.d: crates/tc-bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-e9082397d86fc87e.rmeta: crates/tc-bench/src/bin/fig11.rs Cargo.toml

crates/tc-bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
