//! Fox et al. (2018) — "Fast and adaptive list intersections on the GPU".
//!
//! Edge-centric meta-algorithm (Section III-E / Figure 7): edges are
//! placed into **six bins** by estimated intersection workload; edges in
//! bin *n* get `2^n` cooperating threads (capped at a warp). Fox chooses
//! between merging and binary search per edge; following the paper's
//! program configuration, the *registry* benchmarks the binary-search
//! variant (it beats the merge variant on most datasets), but all three
//! strategies — [`FoxStrategy::BinSearch`], [`FoxStrategy::Merge`]
//! (Green-style merge path within the group) and the cost-model-driven
//! [`FoxStrategy::Adaptive`] the paper describes — are implemented and
//! tested.
//!
//! The binning equalizes work *within* a warp (workload variation under
//! 2x → high warp execution efficiency), but the edges of a bin are
//! scattered across the edge list, so the lists a warp's groups touch
//! share no locality — the low memory-access efficiency the paper's
//! Figure 13(b) shows.

use gpu_sim::{Device, DeviceMem, KernelConfig, LaneCtx, LaunchStats, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::{bsearch_global, diagonal_search, warp_reduce_add};

const BLOCK_DIM: u32 = 256;
const NUM_BINS: usize = 6;

/// Which intersection path the kernel takes per edge.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum FoxStrategy {
    /// Binary search for every edge (the configuration the paper
    /// benchmarks: "the intersection method based on Bin-Search is
    /// faster ... in most cases").
    #[default]
    BinSearch,
    /// Merge path for every edge (Fox degenerates to Green).
    Merge,
    /// Per-edge choice by the paper's workload estimates:
    /// merge costs `d(u) + d(v)`, binary search
    /// `min(d) * log2(max(d))` — take the cheaper.
    Adaptive,
}

/// The Fox algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fox {
    pub strategy: FoxStrategy,
}

impl Fox {
    pub fn merge() -> Self {
        Fox {
            strategy: FoxStrategy::Merge,
        }
    }

    pub fn adaptive() -> Self {
        Fox {
            strategy: FoxStrategy::Adaptive,
        }
    }
}

/// Estimated binary-search workload of an edge: each key of the shorter
/// list costs one descent of the longer one.
fn bsearch_workload(du: u32, dv: u32) -> u64 {
    let small = du.min(dv) as u64;
    let large = du.max(dv).max(1) as u64;
    small * (64 - large.leading_zeros() as u64)
}

/// Estimated merge workload: one linear pass over both lists.
fn merge_workload(du: u32, dv: u32) -> u64 {
    du as u64 + dv as u64
}

/// Bin index for a workload: exponentially increasing thresholds; bin n
/// gets 2^n threads per edge.
fn bin_of(workload: u64) -> usize {
    // Thresholds 8, 32, 128, 512, 2048: beyond that, a full warp.
    match workload {
        0..=8 => 0,
        9..=32 => 1,
        33..=128 => 2,
        129..=512 => 3,
        513..=2048 => 4,
        _ => 5,
    }
}

impl TcAlgorithm for Fox {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Fox",
            reference: "Fox et al., HPEC 2018",
            year: 2018,
            iterator: IteratorKind::Edge,
            intersection: Intersection::MergeOrBinSearch,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        // Host prepass: bin this device's edge range by estimated
        // workload under the chosen strategy. The bins carry global edge
        // ids, so the kernel itself is partition-agnostic.
        let mut bins: [Vec<u32>; NUM_BINS] = Default::default();
        for e in g.edge_lo..g.edge_hi {
            let du = g.host_out_degree(g.host_src[e as usize]);
            let dv = g.host_out_degree(g.host_dst[e as usize]);
            let work = match self.strategy {
                FoxStrategy::BinSearch => bsearch_workload(du, dv),
                FoxStrategy::Merge => merge_workload(du, dv),
                FoxStrategy::Adaptive => bsearch_workload(du, dv).min(merge_workload(du, dv)),
            };
            bins[bin_of(work)].push(e);
        }

        let counter = mem.alloc_zeroed(1, "fox.counter")?;
        let mut stats = LaunchStats::default();
        for (n, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let edge_ids = mem.alloc_from_slice(bin, "fox.bin_edges")?;
            stats += launch_bin(
                dev,
                mem,
                g,
                edge_ids,
                bin.len() as u32,
                1 << n,
                counter,
                self.strategy,
            )?;
            mem.free(edge_ids)?;
        }

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: the same per-edge merge-vs-binary-search workload
    /// estimate as the GPU binning prepass, minus the bins (rayon
    /// schedules; the bins only exist to match thread groups to work).
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_adaptive(dag)
    }
}

/// Merge-path intersection of one edge across `group_size` lanes (the
/// Green kernel structure at group granularity). Returns this lane's
/// match count for its merge-path segment.
#[allow(clippy::too_many_arguments)]
fn merge_path_count(
    lane: &mut LaneCtx,
    g: &DeviceGraph,
    a_base: u32,
    an: u32,
    b_base: u32,
    bn: u32,
    lane_in_group: u32,
    group_size: u32,
) -> u32 {
    let total = an + bn;
    if total == 0 {
        return 0;
    }
    let d0 = (total * lane_in_group) / group_size;
    let d1 = (total * (lane_in_group + 1)) / group_size;
    if d1 <= d0 {
        return 0;
    }
    let i0 = diagonal_search(lane, g.col_indices, a_base, an, b_base, bn, d0);
    let j0 = d0 - i0;
    let (mut i, mut j) = (i0, j0);
    let mut steps = d1 - d0;
    let mut local = 0u32;
    while steps > 0 && i < an && j < bn {
        let av = lane.ld_global(g.col_indices, (a_base + i) as usize);
        let bv = lane.ld_global(g.col_indices, (b_base + j) as usize);
        lane.compute(1);
        match av.cmp(&bv) {
            std::cmp::Ordering::Equal => {
                local += 1;
                i += 1;
                j += 1;
                steps = steps.saturating_sub(2);
            }
            std::cmp::Ordering::Less => {
                i += 1;
                steps -= 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                steps -= 1;
            }
        }
    }
    local
}

/// One kernel per bin: groups of `group_size` lanes, each processing one
/// (scattered) edge of the bin at a time.
#[allow(clippy::too_many_arguments)]
fn launch_bin(
    dev: &Device,
    mem: &DeviceMem,
    g: &DeviceGraph,
    edge_ids: gpu_sim::BufId,
    n_edges: u32,
    group_size: u32,
    counter: gpu_sim::BufId,
    strategy: FoxStrategy,
) -> Result<LaunchStats, SimError> {
    let groups_per_block = BLOCK_DIM / group_size;
    let grid = (4 * dev.config().num_sms).min(n_edges.div_ceil(groups_per_block).max(1));
    let groups_total = grid * groups_per_block;
    let cfg = KernelConfig::new(grid, BLOCK_DIM);
    dev.launch(mem, cfg, |blk| {
        blk.phase(|lane| {
            let group = lane.global_tid() / group_size as u64;
            let lane_in_group = lane.tid() % group_size;
            let mut local = 0u32;
            let mut i = group;
            while i < n_edges as u64 {
                let e = lane.ld_global(edge_ids, i as usize);
                let u = lane.ld_global(g.edge_src, e as usize);
                let v = lane.ld_global(g.edge_dst, e as usize);
                let u_base = lane.ld_global(g.row_offsets, u as usize);
                let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
                let v_base = lane.ld_global(g.row_offsets, v as usize);
                let v_end = lane.ld_global(g.row_offsets, v as usize + 1);
                let (un, vn) = (u_end - u_base, v_end - v_base);
                lane.compute(1);
                let use_merge = match strategy {
                    FoxStrategy::BinSearch => false,
                    FoxStrategy::Merge => true,
                    FoxStrategy::Adaptive => merge_workload(un, vn) < bsearch_workload(un, vn),
                };
                if use_merge {
                    local += merge_path_count(
                        lane,
                        g,
                        u_base,
                        un,
                        v_base,
                        vn,
                        lane_in_group,
                        group_size,
                    );
                } else {
                    // Keys from the shorter list, search the longer.
                    let (k_base, kn, t_base, t_end) = if un <= vn {
                        (u_base, un, v_base, v_end)
                    } else {
                        (v_base, vn, u_base, u_end)
                    };
                    let mut k = lane_in_group;
                    while k < kn {
                        let key = lane.ld_global(g.col_indices, (k_base + k) as usize);
                        if bsearch_global(lane, g.col_indices, t_base, t_end, key) {
                            local += 1;
                        }
                        k += group_size;
                    }
                }
                lane.converge();
                i += groups_total as u64;
            }
            warp_reduce_add(lane, counter, 0, local);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn binning_monotone_in_workload() {
        assert_eq!(bin_of(0), 0);
        assert!(bin_of(10) >= bin_of(5));
        assert_eq!(bin_of(1 << 20), 5);
        // Workload estimate grows with both degrees.
        assert!(bsearch_workload(10, 100) > bsearch_workload(2, 100));
        assert!(bsearch_workload(10, 1000) > bsearch_workload(10, 100));
        assert_eq!(bsearch_workload(0, 5), 0);
        assert_eq!(merge_workload(3, 4), 7);
    }

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &Fox::default(),
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs_binsearch() {
        testutil::exhaustive_small_graph_check(&Fox::default());
    }

    #[test]
    fn exhaustive_small_graphs_merge() {
        testutil::exhaustive_small_graph_check(&Fox::merge());
    }

    #[test]
    fn exhaustive_small_graphs_adaptive() {
        testutil::exhaustive_small_graph_check(&Fox::adaptive());
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&Fox::default(), &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn adaptive_never_does_more_estimated_work() {
        // The adaptive estimate is the min of the two pure estimates.
        for (du, dv) in [(3, 5), (2, 4000), (100, 100), (1, 1)] {
            let adaptive = bsearch_workload(du, dv).min(merge_workload(du, dv));
            assert!(adaptive <= bsearch_workload(du, dv));
            assert!(adaptive <= merge_workload(du, dv));
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Fox::default().meta();
        assert_eq!(m.year, 2018);
        assert_eq!(m.intersection, Intersection::MergeOrBinSearch);
        assert_eq!(m.granularity, Granularity::Fine);
    }
}
