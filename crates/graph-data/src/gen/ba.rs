//! Barabási–Albert preferential attachment with Holme–Kim triad
//! formation: every new vertex attaches `m` edges; after an attachment to
//! target `t`, the next edge closes a triangle through a random neighbour
//! of `t` with probability `p_triad`. High `p_triad` reproduces the
//! strong local clustering of web graphs (Web-NotreDame, Web-BerkStan)
//! and co-authorship/co-purchase networks (Com-Dblp, Amazon).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::EdgeList;

/// Generate a BA/Holme–Kim graph with `n` vertices and `m` attachments
/// per vertex. Runs in O(n * m) expected time (adjacency is kept
/// incrementally; targets are sampled from a degree-proportional pool).
pub fn barabasi_albert(n: u32, m: u32, p_triad: f64, seed: u64) -> EdgeList {
    assert!(m >= 1, "need at least one attachment per vertex");
    assert!((0.0..=1.0).contains(&p_triad), "p_triad is a probability");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * m as usize);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    // Degree-proportional sampling pool: one entry per edge endpoint.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n as usize * m as usize);

    let link = |edges: &mut Vec<(u32, u32)>,
                adj: &mut Vec<Vec<u32>>,
                pool: &mut Vec<u32>,
                a: u32,
                b: u32| {
        edges.push((a, b));
        adj[a as usize].push(b);
        adj[b as usize].push(a);
        pool.push(a);
        pool.push(b);
    };

    // Seed clique over the first m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            link(&mut edges, &mut adj, &mut pool, u, v);
        }
    }
    for new in (m + 1)..n {
        let mut last_target: Option<u32> = None;
        let mut added = 0u32;
        let mut guard = 0u32;
        while added < m && guard < 20 * m {
            guard += 1;
            let target = match last_target {
                // Triad step: pick a neighbour of the previous target.
                Some(t) if rng.gen_bool(p_triad) && !adj[t as usize].is_empty() => {
                    let nbrs = &adj[t as usize];
                    nbrs[rng.gen_range(0..nbrs.len())]
                }
                _ => pool[rng.gen_range(0..pool.len())],
            };
            if target == new || adj[new as usize].contains(&target) {
                last_target = None;
                continue;
            }
            link(&mut edges, &mut adj, &mut pool, new, target);
            last_target = Some(target);
            added += 1;
        }
    }
    EdgeList::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::cpu_ref::node_iterator;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(
            barabasi_albert(200, 3, 0.5, 9),
            barabasi_albert(200, 3, 0.5, 9)
        );
    }

    #[test]
    fn edge_count_near_nm() {
        let e = barabasi_albert(500, 4, 0.3, 1);
        let (g, _) = clean_edges(&e);
        let expected = 500u64 * 4;
        assert!(g.num_edges() > expected / 2 && g.num_edges() <= expected + 10);
    }

    #[test]
    fn triad_formation_increases_triangles() {
        let lo = {
            let (g, _) = clean_edges(&barabasi_albert(800, 3, 0.0, 5));
            node_iterator(&g)
        };
        let hi = {
            let (g, _) = clean_edges(&barabasi_albert(800, 3, 0.9, 5));
            node_iterator(&g)
        };
        assert!(hi > lo, "triads {hi} should exceed baseline {lo}");
    }

    #[test]
    fn heavy_tail() {
        let (g, _) = clean_edges(&barabasi_albert(2000, 3, 0.2, 3));
        assert!(GraphStats::compute(&g).skew() > 5.0);
    }

    #[test]
    fn no_self_loops_or_duplicates_generated() {
        let e = barabasi_albert(300, 2, 0.5, 11);
        let (_, report) = clean_edges(&e);
        assert_eq!(report.removed_self_loops, 0);
        assert_eq!(report.removed_duplicates, 0);
    }
}
