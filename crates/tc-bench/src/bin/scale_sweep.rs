//! Strong-scaling sweep: every registered algorithm partitioned over
//! 1..=8 simulated devices on one dataset, reporting per-cell makespan
//! cycles, speedup over the 1-device baseline and interconnect traffic.
//!
//! ```sh
//! cargo run --release -p tc-bench --bin scale_sweep -- \
//!     [dataset-name] [--devices-list 1,2,4,8] [--per-device]
//! ```
//!
//! Output is a GitHub-flavoured markdown table (ready to paste into
//! EXPERIMENTS.md). `--per-device` appends, for the largest device
//! count, a per-device breakdown of kernel vs link cycles — the view
//! that shows where the interconnect model starts to dominate.
//!
//! The counts are verified against the CPU reference at every device
//! count; a cell that fails to verify renders as `FAILED` and the run
//! exits non-zero.

use gpu_sim::Device;
use tc_bench::{datasets_from_args, eprint_progress};
use tc_core::framework::partitioned::run_partitioned;
use tc_core::framework::registry::all_algorithms;
use tc_core::framework::runner::{PreparedDataset, RunOutcome};

fn main() -> Result<(), String> {
    let mut devices_list: Vec<u32> = vec![1, 2, 4, 8];
    let mut per_device = false;
    let mut dataset_args: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--devices-list" => {
                let spec = args.next().ok_or("--devices-list needs e.g. 1,2,4,8")?;
                devices_list = spec
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<u32>()
                            .map_err(|e| format!("--devices-list: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if devices_list.is_empty() || devices_list.contains(&0) {
                    return Err("--devices-list needs positive device counts".to_string());
                }
            }
            "--per-device" => per_device = true,
            other => dataset_args.push(other.to_string()),
        }
    }
    if dataset_args.is_empty() {
        dataset_args.push("Wiki-Talk".to_string());
    }
    let datasets = datasets_from_args(&dataset_args)?;
    let spec = datasets
        .first()
        .ok_or("scale_sweep needs exactly one dataset")?;
    let algos = all_algorithms();
    let dev = Device::v100();
    eprint_progress(&format!(
        "scale_sweep: {} algorithms x devices {:?} on {}",
        algos.len(),
        devices_list,
        spec.name
    ));
    let data = PreparedDataset::prepare(spec);

    println!("### Strong scaling on {} (V100 link model)\n", spec.name);
    let header: Vec<String> = devices_list
        .iter()
        .map(|n| format!("{n} dev (cycles / speedup / link MB)"))
        .collect();
    println!("| algorithm | {} |", header.join(" | "));
    println!("|---|{}", "---|".repeat(devices_list.len()));

    let mut any_failed = false;
    let mut largest_breakdown: Vec<String> = Vec::new();
    for algo in &algos {
        let mut row = format!("| {} ", algo.name());
        let mut baseline: Option<u64> = None;
        for &n in &devices_list {
            let rec = run_partitioned(&dev, algo.as_ref(), &data, n);
            match &rec.outcome {
                RunOutcome::Ok {
                    verified: true,
                    kernel_cycles,
                    ..
                } => {
                    let cycles = *kernel_cycles;
                    let base = *baseline.get_or_insert(cycles);
                    let speedup = base as f64 / cycles.max(1) as f64;
                    let link_mb = rec
                        .partition
                        .as_ref()
                        .map(|p| p.total_link_bytes as f64 / 1e6)
                        .unwrap_or(0.0);
                    row.push_str(&format!("| {cycles} / {speedup:.2}x / {link_mb:.2} "));
                    if per_device && n == *devices_list.iter().max().unwrap() {
                        if let Some(p) = &rec.partition {
                            for d in &p.per_device {
                                largest_breakdown.push(format!(
                                    "| {} | {} | {} | {} | {} |",
                                    algo.name(),
                                    d.device,
                                    d.kernel_cycles,
                                    d.link_cycles,
                                    d.link_bytes
                                ));
                            }
                        }
                    }
                }
                RunOutcome::Ok { .. } => {
                    any_failed = true;
                    row.push_str("| MISCOUNT ");
                }
                RunOutcome::Failed(e) => {
                    any_failed = true;
                    eprint_progress(&format!("{} x{n}: {e}", algo.name()));
                    row.push_str("| FAILED ");
                }
            }
        }
        row.push('|');
        println!("{row}");
    }

    if per_device && !largest_breakdown.is_empty() {
        println!(
            "\n#### Per-device breakdown at {} devices\n",
            devices_list.iter().max().unwrap()
        );
        println!("| algorithm | device | kernel cycles | link cycles | link bytes |");
        println!("|---|---|---|---|---|");
        for line in &largest_breakdown {
            println!("{line}");
        }
    }

    if any_failed {
        return Err("one or more cells failed or miscounted".to_string());
    }
    Ok(())
}
