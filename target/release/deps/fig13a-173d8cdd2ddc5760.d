/root/repo/target/release/deps/fig13a-173d8cdd2ddc5760.d: crates/tc-bench/src/bin/fig13a.rs

/root/repo/target/release/deps/fig13a-173d8cdd2ddc5760: crates/tc-bench/src/bin/fig13a.rs

crates/tc-bench/src/bin/fig13a.rs:
