//! Quickstart: count the triangles of a graph in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart [path/to/edges.txt]
//! ```
//!
//! With a path, the file may be SNAP text, a tc-compare binary edge
//! list, or a binary CSR (auto-detected). Without one, a small synthetic
//! social network is generated.

use tc_compare::algos::{DeviceGraph, TcAlgorithm};
use tc_compare::core::GroupTc;
use tc_compare::graph::{clean_edges, gen, io, orient, Orientation};
use tc_compare::sim::{Device, DeviceMem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get an edge list: from a file, or generated.
    let raw = match std::env::args().nth(1) {
        Some(path) => io::read_edges_auto(std::fs::File::open(path)?)?,
        None => gen::barabasi_albert(10_000, 6, 0.4, 42),
    };

    // 2. Clean (drop self-loops, duplicates, isolated vertices) and
    //    orient into a DAG so each triangle is counted exactly once.
    let (graph, report) = clean_edges(&raw);
    let dag = orient(&graph, Orientation::DegreeAsc);
    println!(
        "graph: {} vertices, {} edges (cleaned: -{} self-loops, -{} duplicates)",
        graph.num_vertices(),
        graph.num_edges(),
        report.removed_self_loops,
        report.removed_duplicates
    );

    // 3. Upload to the simulated V100 and run GroupTC.
    let device = Device::v100();
    let mut mem = DeviceMem::new(&device);
    let dev_graph = DeviceGraph::upload(&dag, &mut mem)?;
    let result = GroupTc::default().count(&device, &mut mem, &dev_graph)?;

    println!("triangles: {}", result.triangles);
    println!(
        "modelled kernel time: {} cycles ({} global load requests, \
         warp efficiency {:.1}%)",
        result.stats.kernel_cycles,
        result.stats.counters.global_load_requests,
        result.stats.counters.warp_execution_efficiency() * 100.0
    );
    Ok(())
}
