//! SimLint seeded-bug wall: one deliberately broken kernel per lint
//! rule, each caught with the *right* rule, plus a clean twin for every
//! bug proving the thresholds do not flag idiomatic code. Also pins the
//! toggle semantics: lints are off by default, per-launch via
//! [`KernelConfig::with_lints`], per-device via [`Device::with_lints`],
//! and the barrier-divergence rule is fatal while the performance rules
//! are advisory findings on [`LaunchStats::lint`].

use gpu_sim::{Device, DeviceMem, KernelConfig, LintRule, SimError};

/// A linted launch on a fresh V100 with a scratch buffer of `words`.
fn device_and_buffer(words: usize) -> (Device, DeviceMem, gpu_sim::BufId) {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_zeroed(words, "scratch").unwrap();
    (dev, mem, buf)
}

// ---------------------------------------------------------------------
// Rule 1: barrier divergence (fatal)
// ---------------------------------------------------------------------

#[test]
fn divergent_barrier_is_a_fatal_barrier_divergence() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    // The classic bug: half the block takes a branch that skips the
    // barrier the other half arrives at. On hardware the arrived lanes
    // wait forever.
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                if lane.tid() < 16 {
                    lane.sync_threads();
                }
            });
        })
        .unwrap_err();
    match err {
        SimError::BarrierDivergence(d) => {
            assert_eq!(d.rule, LintRule::BarrierDivergence);
            assert_eq!(d.block, Some(0));
            assert!(d.pc_hint.contains("phase 1"), "pc_hint: {}", d.pc_hint);
            assert!(
                d.detail.contains("wait at the barrier forever"),
                "detail: {}",
                d.detail
            );
            let (arrived, strayed) = d.lanes.expect("witness lanes");
            assert!(arrived < 16, "witness {arrived} must have arrived");
            assert!(strayed >= 16, "stray {strayed} must have skipped");
        }
        other => panic!("expected BarrierDivergence, got {other:?}"),
    }
}

#[test]
fn uniform_barrier_arrivals_are_clean() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(2, 64).with_lints(true);
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.compute(1);
                lane.sync_threads();
                lane.compute(1);
                lane.sync_threads();
            });
        })
        .unwrap();
    let report = stats.lint.expect("lints on => report attached");
    assert_eq!(report.count(LintRule::BarrierDivergence), 0);
    assert!(stats.counters.lint_checks > 0, "verifier must have run");
}

#[test]
fn retire_while_siblings_wait_at_a_barrier_is_divergence() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                if lane.tid() == 0 {
                    // Exits the kernel while the other 31 lanes arrive
                    // at the barrier below and wait for it.
                    lane.retire();
                    return;
                }
                lane.sync_threads();
            });
        })
        .unwrap_err();
    match err {
        SimError::BarrierDivergence(d) => {
            assert!(d.detail.contains("retired"), "detail: {}", d.detail);
            assert_eq!(d.lanes.map(|(_, stray)| stray), Some(0));
        }
        other => panic!("expected BarrierDivergence, got {other:?}"),
    }
}

#[test]
fn clean_early_retire_skips_later_phases_without_divergence() {
    let (dev, mem, buf) = device_and_buffer(2);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    // Lanes 16.. retire in a phase that places no barrier after their
    // exit: legal, and the retired lanes must sit out phase 2 entirely.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(buf, 0, 1);
                if lane.tid() >= 16 {
                    lane.retire();
                }
            });
            blk.phase(|lane| {
                lane.sync_threads();
                lane.atomic_add_global(buf, 1, 1);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::BarrierDivergence), 0);
    assert_eq!(mem.read_back(buf)[0], 32, "phase 1 ran every lane");
    assert_eq!(mem.read_back(buf)[1], 16, "phase 2 skipped retired lanes");
}

// ---------------------------------------------------------------------
// Rule 2: uncoalesced global access
// ---------------------------------------------------------------------

/// 16 blocks so the per-site request floor (16) is met in one phase.
const STRIDE_BLOCKS: u32 = 16;

#[test]
fn strided_loads_are_flagged_uncoalesced_at_the_access_site() {
    let (dev, mem, buf) = device_and_buffer(32 * 32);
    let cfg = KernelConfig::new(STRIDE_BLOCKS, 32).with_lints(true);
    // Stride-32 words = one 32-byte sector per lane: 32 transactions per
    // request, the textbook uncoalesced scan.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize * 32);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::UncoalescedGlobal), 1);
    let diag = report
        .diags
        .iter()
        .find(|d| d.rule == LintRule::UncoalescedGlobal)
        .unwrap();
    assert!(
        diag.pc_hint.contains("`scratch`"),
        "site must name the buffer: {}",
        diag.pc_hint
    );
    assert!(
        diag.detail.contains("32.0 transactions/request"),
        "detail: {}",
        diag.detail
    );
}

#[test]
fn coalesced_loads_are_clean() {
    let (dev, mem, buf) = device_and_buffer(32);
    let cfg = KernelConfig::new(STRIDE_BLOCKS, 32).with_lints(true);
    // Consecutive words: 4 sectors per 32-lane request, well under the
    // 8.0 transactions/request threshold.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::UncoalescedGlobal), 0);
}

// ---------------------------------------------------------------------
// Rule 3: shared-memory bank conflicts
// ---------------------------------------------------------------------

#[test]
fn stride_32_shared_stencil_is_flagged_as_bank_conflict() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32)
        .with_shared_words(32 * 32)
        .with_lints(true);
    // Column-major access of a 32x32 shared tile: every lane lands in
    // bank 0, a 32-way serialization.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.st_shared(lane.tid() as usize * 32, 1);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::BankConflict), 1);
    let diag = report
        .diags
        .iter()
        .find(|d| d.rule == LintRule::BankConflict)
        .unwrap();
    assert!(
        diag.detail.contains("32-way"),
        "histogram must show the worst way: {}",
        diag.detail
    );
    assert!(
        diag.pc_hint.contains("shared["),
        "pc_hint: {}",
        diag.pc_hint
    );
}

#[test]
fn stride_1_shared_access_is_clean() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32)
        .with_shared_words(32)
        .with_lints(true);
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.st_shared(lane.tid() as usize, 1);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::BankConflict), 0);
}

// ---------------------------------------------------------------------
// Rule 4: atomic contention
// ---------------------------------------------------------------------

#[test]
fn single_address_atomic_storm_is_flagged() {
    let (dev, mem, buf) = device_and_buffer(32);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    // All 32 lanes hammer one counter word: 32-deep serialization.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(buf, 0, 1);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::AtomicContention), 1);
    let diag = report
        .diags
        .iter()
        .find(|d| d.rule == LintRule::AtomicContention)
        .unwrap();
    assert!(
        diag.pc_hint.contains("`scratch`"),
        "site must name the buffer: {}",
        diag.pc_hint
    );
    assert_eq!(mem.read_back(buf)[0], 32, "the adds still landed");
}

#[test]
fn spread_atomics_are_clean() {
    let (dev, mem, buf) = device_and_buffer(32);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(buf, lane.tid() as usize, 1);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::AtomicContention), 0);
}

// ---------------------------------------------------------------------
// Rule 5: low occupancy
// ---------------------------------------------------------------------

#[test]
fn single_lane_doing_all_the_work_is_flagged_low_occupancy() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    // One lane grinds through 300 instructions while 31 siblings idle:
    // 300 issued slots, 300 active-thread slots, efficiency ~0.03.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                if lane.tid() == 0 {
                    lane.compute(300);
                }
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::LowOccupancy), 1);
}

#[test]
fn balanced_compute_is_clean() {
    let (dev, mem, _) = device_and_buffer(1);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.compute(300);
            });
        })
        .unwrap();
    let report = stats.lint.expect("report attached");
    assert_eq!(report.count(LintRule::LowOccupancy), 0);
}

// ---------------------------------------------------------------------
// Toggle semantics
// ---------------------------------------------------------------------

#[test]
fn lints_are_off_by_default() {
    let (dev, mem, buf) = device_and_buffer(32 * 32);
    // The strided seeded bug again, but without the toggle: no report,
    // no checks, and the divergent-barrier kernel below even *passes*
    // (the verifier is not running).
    let stats = dev
        .launch(&mem, KernelConfig::new(STRIDE_BLOCKS, 32), |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize * 32);
            });
        })
        .unwrap();
    assert!(stats.lint.is_none());
    assert_eq!(stats.counters.lint_checks, 0);

    let divergent = dev.launch(&mem, KernelConfig::new(1, 32), |blk| {
        blk.phase(|lane| {
            if lane.tid() < 16 {
                lane.sync_threads();
            }
        });
    });
    assert!(divergent.is_ok(), "verifier off => no fatal diagnosis");
}

#[test]
fn device_level_force_lints_covers_internal_launches() {
    let dev = Device::v100().with_lints();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_zeroed(32 * 32, "scratch").unwrap();
    // Plain KernelConfig — the device flag alone must engage the pass,
    // exactly like force_race_detection / force_sanitizer.
    let stats = dev
        .launch(&mem, KernelConfig::new(STRIDE_BLOCKS, 32), |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize * 32);
            });
        })
        .unwrap();
    let report = stats.lint.expect("force_lints => report attached");
    assert_eq!(report.count(LintRule::UncoalescedGlobal), 1);
    assert!(stats.counters.lint_checks > 0);
}

#[test]
fn perf_lints_are_advisory_and_stable_across_accumulation() {
    let (dev, mem, buf) = device_and_buffer(32);
    let cfg = KernelConfig::new(1, 32).with_lints(true);
    let kernel = |blk: &mut gpu_sim::BlockCtx<'_>| {
        blk.phase(|lane| {
            lane.atomic_add_global(buf, 0, 1);
        });
    };
    // Advisory: the launch succeeds despite the finding.
    let mut a = dev.launch(&mem, cfg, kernel).unwrap();
    let b = dev.launch(&mem, cfg, kernel).unwrap();
    assert_eq!(a.lint, b.lint, "deterministic report");
    // Accumulating two identical launches dedups identical diagnostics
    // (stable ordering is part of the report contract).
    let report_before = a.lint.clone().unwrap();
    a += b;
    assert_eq!(a.lint.unwrap(), report_before);
}
