/root/repo/target/debug/deps/table2-19ec98198d619cd0.d: crates/tc-bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-19ec98198d619cd0.rmeta: crates/tc-bench/src/bin/table2.rs

crates/tc-bench/src/bin/table2.rs:
