//! Binary edge-list format: magic, little-endian `u64` edge count, then
//! `(u32, u32)` pairs. This is the fast interchange format the framework
//! feeds to implementations that want pre-parsed input.

use std::io::{self, Read, Write};

use crate::types::EdgeList;

/// File magic for binary edge lists.
pub const BINARY_MAGIC: &[u8; 8] = b"TCBEDGE1";

/// Write the binary format.
pub fn write_binary_edges<W: Write>(mut w: W, edges: &EdgeList) -> io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(edges.len() * 8);
    for &(u, v) in &edges.edges {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

/// Read the binary format, validating magic and length.
pub fn read_binary_edges<R: Read>(mut r: R) -> io::Result<EdgeList> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a tc-compare binary edge list (bad magic)",
        ));
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes) as usize;
    let mut payload = vec![0u8; count * 8];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 1];
    if r.read(&mut trailer)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after declared edge count",
        ));
    }
    let edges = payload
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            )
        })
        .collect();
    Ok(EdgeList::new(edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = EdgeList::new(vec![(0, u32::MAX), (7, 7), (123456, 654321)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        assert_eq!(read_binary_edges(&bytes[..]).unwrap(), e);
    }

    #[test]
    fn empty_roundtrip() {
        let e = EdgeList::default();
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        assert_eq!(read_binary_edges(&bytes[..]).unwrap(), e);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary_edges(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_rejected() {
        let e = EdgeList::new(vec![(1, 2), (3, 4)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(read_binary_edges(&bytes[..]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let e = EdgeList::new(vec![(1, 2)]);
        let mut bytes = Vec::new();
        write_binary_edges(&mut bytes, &e).unwrap();
        bytes.push(0);
        assert!(read_binary_edges(&bytes[..]).is_err());
    }
}
