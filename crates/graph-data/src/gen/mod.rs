//! Deterministic synthetic graph generators used to build the Table II
//! stand-ins. All take an explicit seed and return a *raw* edge list
//! (cleaning deduplicates and compacts).

mod ba;
mod er;
mod grid;
mod rmat;
mod ws;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use grid::road_grid;
pub use rmat::rmat;
pub use ws::watts_strogatz;
