/root/repo/target/debug/examples/device_comparison-4ec858d667b4824f.d: examples/device_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libdevice_comparison-4ec858d667b4824f.rmeta: examples/device_comparison.rs Cargo.toml

examples/device_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
