use crate::counters::ProfileCounters;
use crate::device::Device;
use crate::mem::{BufId, DeviceMem};
use crate::race::{Access, RaceTracker};
use crate::sanitize::{SanTracker, ShadowAccess};
use crate::trace::{LaneTrace, Op, PackedOp};
use crate::{CostModel, SimError, SHARED_BANKS, WARP_SIZE};

/// Launch geometry: `grid_dim` blocks of `block_dim` threads, each block
/// carrying `shared_words` words of shared memory — plus the per-launch
/// data-race-detection and sanitizer toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    pub grid_dim: u32,
    pub block_dim: u32,
    pub shared_words: u32,
    /// Run this launch under the phase-based data-race detector (see
    /// `gpu_sim::race`). Off by default so benchmark launches pay ~zero
    /// cost (a single predictable branch per access); the detector is
    /// also forced on for every launch on a
    /// [`Device::with_race_detection`] device.
    pub race_detect: bool,
    /// Run this launch under SimSan (see `gpu_sim::sanitize`): shadow
    /// tracking for uninit-read, use-after-free and redzone accesses.
    /// Off by default like `race_detect`; also forced on for every
    /// launch on a [`Device::with_sanitizer`] device.
    pub sanitize: bool,
}

impl KernelConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        KernelConfig {
            grid_dim,
            block_dim,
            shared_words: 0,
            race_detect: false,
            sanitize: false,
        }
    }

    pub fn with_shared_words(mut self, words: u32) -> Self {
        self.shared_words = words;
        self
    }

    /// Toggle the data-race detector for this launch.
    pub fn with_race_detection(mut self, on: bool) -> Self {
        self.race_detect = on;
        self
    }

    /// Toggle SimSan for this launch.
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }
}

/// `blockIdx.x * blockDim.x + threadIdx.x`, widened to `u64` *before* the
/// multiply. Launches of more than `u32::MAX / block_dim` blocks are
/// legal (CUDA grids go to 2^31-1 blocks), and edge-per-thread kernels on
/// billion-edge graphs index with exactly this product — in `u32` it
/// wraps and silently aliases distant threads onto the same edges.
#[inline]
pub fn global_thread_id(block_idx: u32, block_dim: u32, tid: u32) -> u64 {
    block_idx as u64 * block_dim as u64 + tid as u64
}

/// Reusable per-worker arena for block execution. One `BlockScratch`
/// lives per rayon worker (via `map_init`) and is recycled across every
/// block that worker simulates, so the steady-state replay loop performs
/// no heap allocation: lane traces keep their `Vec<Op>` capacity, and the
/// shared/L1/cursor buffers are `clear()`+`resize()`d in place.
#[derive(Default)]
pub struct BlockScratch {
    shared: Vec<u32>,
    traces: Vec<LaneTrace>,
    l1: Vec<u64>,
    replay: ReplayScratch,
}

impl BlockScratch {
    fn reset(&mut self, shared_words: usize, block_dim: usize, l1_len: usize) {
        self.shared.clear();
        self.shared.resize(shared_words, 0);
        // Keep the per-lane op buffers (the hot allocation) alive across
        // blocks; only their lengths reset.
        self.traces.truncate(block_dim);
        for t in &mut self.traces {
            t.clear();
        }
        self.traces.resize_with(block_dim, LaneTrace::default);
        self.l1.clear();
        self.l1.resize(l1_len, u64::MAX);
    }
}

/// Per-block execution context handed to the kernel closure.
///
/// A kernel structures its work as a sequence of [`BlockCtx::phase`]
/// calls; each phase runs every lane of the block to completion (in lane
/// order) and ends with an implicit block-wide barrier, after which the
/// lane traces are replayed warp-by-warp for profiling and timing. All
/// growable state lives in the borrowed [`BlockScratch`] arena.
pub struct BlockCtx<'a> {
    mem: &'a DeviceMem,
    cost: CostModel,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    shared: &'a mut Vec<u32>,
    traces: &'a mut Vec<LaneTrace>,
    /// Phase-based data-race detector (`Some` when the launch enabled
    /// detection): records this block's shared and plain-global accesses
    /// between barriers and poisons the block on a cross-lane conflict.
    race: Option<RaceTracker>,
    /// SimSan (`Some` when the launch enabled the sanitizer): vets every
    /// access against the shadow state and poisons the block on a report.
    san: Option<SanTracker>,
    /// Each warp's slice of the SM's L1 cache, direct-mapped by sector
    /// (concatenated per warp). Captures both the spatial reuse of
    /// sequential scans (a merge re-reads each 32-byte sector ~8 times)
    /// and the cross-lane reuse of hot search-table tops — while keeping
    /// the slice small enough that many concurrent per-lane streams
    /// conflict, as they do in the real 128 KB/SM cache shared by 2048
    /// threads.
    l1: &'a mut Vec<u64>,
    l1_slice: usize,
    replay: &'a mut ReplayScratch,
    counters: ProfileCounters,
    cycles: u64,
    fault: Option<SimError>,
}

impl<'a> BlockCtx<'a> {
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Words of shared memory available to this block.
    pub fn shared_words(&self) -> u32 {
        self.shared.len() as u32
    }

    /// Run one barrier-delimited phase: the closure is invoked once per
    /// lane, in lane order. Values written to shared memory in this phase
    /// are visible to *all* lanes from the next phase on (and to later
    /// lanes of this phase, matching any CUDA schedule of a race-free
    /// kernel that separates producers and consumers with barriers).
    pub fn phase<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut LaneCtx<'_, '_>),
    {
        // A faulted block is poisoned: later phases are skipped entirely,
        // like a CUDA grid after a sticky device-side error.
        if self.fault.is_some() {
            return;
        }
        for tid in 0..self.block_dim {
            if self.fault.is_some() {
                break;
            }
            let warp = (tid as usize / WARP_SIZE) * self.l1_slice;
            let mut lane = LaneCtx {
                mem: self.mem,
                shared: self.shared,
                trace: &mut self.traces[tid as usize],
                race: &mut self.race,
                san: &mut self.san,
                l1: &mut self.l1[warp..warp + self.l1_slice],
                l1_mask: self.l1_slice as u64 - 1,
                tid,
                block_idx: self.block_idx,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
                fault: &mut self.fault,
                pending_compute: 0,
            };
            f(&mut lane);
            lane.flush_compute();
        }
        self.barrier();
    }

    /// Replay the traces accumulated since the previous barrier.
    fn barrier(&mut self) {
        if let Some(t) = self.race.as_mut() {
            t.end_phase();
        }
        if let Some(t) = self.san.as_mut() {
            t.end_phase();
        }
        let mut phase_cycles = 0u64;
        for warp in self.traces.chunks(WARP_SIZE) {
            let (cycles, counters) = replay_warp(warp, &self.cost, self.replay);
            // Warps of a block run concurrently; the barrier waits for
            // the slowest one.
            phase_cycles = phase_cycles.max(cycles);
            self.counters += counters;
        }
        self.cycles += phase_cycles;
        for t in self.traces.iter_mut() {
            t.clear();
        }
    }
}

/// Per-lane context: the kernel-facing instruction set. Every method both
/// performs the real operation (against device/shared memory) and records
/// it in the lane's trace for lockstep replay.
pub struct LaneCtx<'a, 'b> {
    mem: &'a DeviceMem,
    shared: &'b mut Vec<u32>,
    trace: &'b mut LaneTrace,
    race: &'b mut Option<RaceTracker>,
    san: &'b mut Option<SanTracker>,
    l1: &'b mut [u64],
    l1_mask: u64,
    tid: u32,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    fault: &'b mut Option<SimError>,
    /// Arithmetic instructions recorded since the last non-compute op:
    /// [`LaneCtx::compute`] only bumps this counter, and the run is
    /// flushed into the trace as one `Op::Compute` word when the next
    /// memory op / converge marker / end of the lane's phase needs the
    /// ordering — the inner-loop `compute(1)` call is then a register
    /// add instead of a trace access.
    pending_compute: u32,
}

impl LaneCtx<'_, '_> {
    /// Thread index within the block (`threadIdx.x`).
    #[inline]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Block index within the grid (`blockIdx.x`).
    #[inline]
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Threads per block (`blockDim.x`).
    #[inline]
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// Blocks per grid (`gridDim.x`).
    #[inline]
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`), as a
    /// `u64`: see [`global_thread_id`] for why the product must widen.
    #[inline]
    pub fn global_tid(&self) -> u64 {
        global_thread_id(self.block_idx, self.block_dim, self.tid)
    }

    /// Lane index within the warp.
    #[inline]
    pub fn lane_id(&self) -> u32 {
        self.tid % WARP_SIZE as u32
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp_id(&self) -> u32 {
        self.tid / WARP_SIZE as u32
    }

    /// Report a kernel-level failure (e.g. a fixed-capacity structure
    /// overflowed); the launch returns [`SimError::KernelFault`].
    pub fn fault(&mut self, msg: impl Into<String>) {
        self.set_fault(SimError::KernelFault(msg.into()));
    }

    /// Record the block's first fault; later faults (often cascades from
    /// the poisoned value 0 the first one returned) are dropped.
    #[inline]
    fn set_fault(&mut self, err: SimError) {
        if self.fault.is_none() {
            *self.fault = Some(err);
        }
    }

    /// Whether this block already faulted. Poisoned lanes stop touching
    /// memory: loads return 0, stores and atomics are dropped, so a bad
    /// index can't cascade into a host-visible panic before `run_block`
    /// turns the fault into an error.
    #[inline]
    fn poisoned(&self) -> bool {
        self.fault.is_some()
    }

    /// Run one shared-memory access through the race detector (if the
    /// launch enabled it); a conflict poisons the block. Out-of-range
    /// indices are skipped so the subsequent data access reports the
    /// bounds fault with its usual message.
    #[inline]
    fn race_check_shared(&mut self, idx: usize, access: Access) {
        let tid = self.tid;
        if let Some(t) = self.race.as_mut() {
            if idx < self.shared.len() {
                if let Some(err) = t.check_shared(tid, idx, access) {
                    self.set_fault(err);
                }
            }
        }
    }

    /// Run one *plain* global access through the race detector. Atomics
    /// never come through here: they synchronize with each other and are
    /// exempt by design.
    #[inline]
    fn race_check_global(&mut self, buf: BufId, idx: usize, access: Access) {
        let tid = self.tid;
        if self.race.is_some() {
            let addr = self.mem.addr_of(buf, idx);
            let name = self.mem.name(buf);
            if let Some(err) = self
                .race
                .as_mut()
                .and_then(|t| t.check_global(tid, addr, name, idx, access))
            {
                self.set_fault(err);
            }
        }
    }

    /// Vet one shared-memory access against the SimSan shadow (if the
    /// launch enabled the sanitizer); a report poisons the block. Checks
    /// never touch the lane trace or the cost model, so a clean kernel's
    /// counters and cycles are identical sanitizer-on and -off.
    #[inline]
    fn san_check_shared(&mut self, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        if let Some(t) = self.san.as_mut() {
            if let Some(err) = t.check_shared(tid, idx, access) {
                self.set_fault(err);
            }
        }
    }

    /// Vet one global-memory access against the SimSan shadow. Runs
    /// *before* the data access so that freed-handle and redzone hits
    /// carry the sanitizer diagnostic rather than a bare `MemoryFault`.
    #[inline]
    fn san_check_global(&mut self, buf: BufId, idx: usize, access: ShadowAccess) {
        let tid = self.tid;
        if self.san.is_some() {
            let state = self.mem.shadow_state(buf, idx);
            let name = self.mem.name(buf);
            if let Some(err) = self
                .san
                .as_mut()
                .and_then(|t| t.check_global(tid, state, name, idx, access))
            {
                self.set_fault(err);
            }
        }
    }

    /// Record `n` arithmetic instructions (comparisons, address math...).
    /// Run-length encoded: adjacent calls merge into one trace word (see
    /// [`LaneTrace::push_compute`] and [`LaneCtx::pending_compute`]).
    #[inline]
    pub fn compute(&mut self, n: u32) {
        self.pending_compute += n;
    }

    /// Flush the pending compute run into the trace. Must run before any
    /// other op is recorded (and at the end of the lane's phase) so the
    /// trace keeps the true program order.
    #[inline]
    fn flush_compute(&mut self) {
        if self.pending_compute > 0 {
            self.trace.push_compute(self.pending_compute);
            self.pending_compute = 0;
        }
    }

    /// Warp-reconvergence point (`__syncwarp` / the implicit re-join at
    /// the bottom of a divergent loop). Call it at the end of each outer
    /// loop iteration whose body contains data-dependent inner loops, so
    /// the replay re-aligns the lanes like real SIMT hardware does.
    #[inline]
    pub fn converge(&mut self) {
        self.flush_compute();
        self.trace.push(Op::Converge);
    }

    /// Load one word from global memory. Consecutive touches of the same
    /// 32-byte sector by this lane are recorded as L1 hits (no DRAM
    /// transaction), modelling the spatial locality of sequential scans.
    #[inline]
    pub fn ld_global(&mut self, buf: BufId, idx: usize) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Read);
        if self.poisoned() {
            return 0;
        }
        let (val, addr) = match self.mem.try_load_addr(buf, idx) {
            Ok(pair) => pair,
            Err(e) => {
                self.set_fault(e);
                return 0;
            }
        };
        let sector = addr / crate::SECTOR_BYTES;
        let slot = (sector & self.l1_mask) as usize;
        if self.l1[slot] == sector {
            self.trace.push(Op::GLoadHit(addr));
        } else {
            self.l1[slot] = sector;
            self.trace.push(Op::GLoad(addr));
        }
        self.race_check_global(buf, idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        val
    }

    /// Store one word to global memory.
    #[inline]
    pub fn st_global(&mut self, buf: BufId, idx: usize, val: u32) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Write);
        if self.poisoned() {
            return;
        }
        if self.race.is_some() {
            // A store of the word's current value is a benign "silent
            // store"; anything else conflicts with concurrent accesses.
            if let Ok(cur) = self.mem.try_load(buf, idx) {
                self.race_check_global(
                    buf,
                    idx,
                    Access::Write {
                        changes_value: cur != val,
                    },
                );
                if self.poisoned() {
                    return;
                }
            }
            // On a bounds error, fall through: try_store reports it.
        }
        match self.mem.try_store(buf, idx, val) {
            Ok(()) => self.trace.push(Op::GStore(self.mem.addr_of(buf, idx))),
            Err(e) => self.set_fault(e),
        }
    }

    /// `atomicAdd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_add_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_add(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicOr` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_or_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_or(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicAnd` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_and_global(&mut self, buf: BufId, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_fetch_and(buf, idx, val) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// `atomicCAS` on global memory; returns the previous value.
    #[inline]
    pub fn atomic_cas_global(&mut self, buf: BufId, idx: usize, cur: u32, new: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return 0;
        }
        match self.mem.try_compare_exchange(buf, idx, cur, new) {
            Ok(old) => {
                self.trace.push(Op::GAtomic(self.mem.addr_of(buf, idx)));
                old
            }
            Err(e) => {
                self.set_fault(e);
                0
            }
        }
    }

    /// Correctness-only global add with **no traffic recorded**. This is
    /// the backchannel for warp-reduction helpers: the hardware cost of a
    /// `__shfl_down`+single-atomic reduction is modeled explicitly by the
    /// helper (see `tc-algos::util::warp_reduce_add`), while every lane's
    /// contribution still lands in the counter for exactness.
    #[inline]
    pub fn add_global_untraced(&mut self, buf: BufId, idx: usize, val: u32) {
        if self.poisoned() {
            return;
        }
        self.san_check_global(buf, idx, ShadowAccess::Atomic);
        if self.poisoned() {
            return;
        }
        if let Err(e) = self.mem.try_fetch_add(buf, idx, val) {
            self.set_fault(e);
        }
    }

    #[inline]
    fn shared_slot(&mut self, idx: usize) -> &mut u32 {
        match self.shared.get_mut(idx) {
            Some(w) => w,
            None => panic!("shared memory fault: index {idx} out of bounds"),
        }
    }

    /// Load one word from shared memory. Under race detection, reading a
    /// slot another lane plain-stores in the same phase — in either
    /// order — poisons the block with [`SimError::DataRace`]: that is a
    /// data race in CUDA (lanes only appear ordered here because the
    /// simulator runs them sequentially). Under SimSan, reading a slot no
    /// lane of this block has stored is an uninit-read: the simulator
    /// zero-fills shared memory for determinism, but CUDA does not.
    #[inline]
    pub fn ld_shared(&mut self, idx: usize) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SLoad(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Read);
        self.race_check_shared(idx, Access::Read);
        if self.poisoned() {
            return 0;
        }
        *self.shared_slot(idx)
    }

    /// Store one word to shared memory.
    #[inline]
    pub fn st_shared(&mut self, idx: usize, val: u32) {
        self.flush_compute();
        if self.poisoned() {
            return;
        }
        self.trace.push(Op::SStore(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Write);
        if self.race.is_some() {
            // Concurrent same-value stores (a common benign idiom, e.g.
            // several lanes raising an overflow flag) are silent; a
            // value-changing store conflicts with other lanes' accesses.
            let changes_value = self.shared.get(idx).is_none_or(|&cur| cur != val);
            self.race_check_shared(idx, Access::Write { changes_value });
            if self.poisoned() {
                return;
            }
        }
        *self.shared_slot(idx) = val;
    }

    /// `atomicAdd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_add_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old.wrapping_add(val);
        old
    }

    /// `atomicOr` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_or_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old | val;
        old
    }

    /// `atomicAnd` on shared memory; returns the previous value.
    #[inline]
    pub fn atomic_and_shared(&mut self, idx: usize, val: u32) -> u32 {
        self.flush_compute();
        if self.poisoned() {
            return 0;
        }
        self.trace.push(Op::SAtomic(idx as u32));
        self.san_check_shared(idx, ShadowAccess::Atomic);
        self.race_check_shared(idx, Access::Atomic);
        if self.poisoned() {
            return 0;
        }
        let w = self.shared_slot(idx);
        let old = *w;
        *w = old & val;
        old
    }
}

/// Execute one block and return its (cycles, counters). The caller owns
/// the [`BlockScratch`] arena (one per rayon worker) so consecutive
/// blocks reuse every buffer.
pub(crate) fn run_block<F>(
    dev: &Device,
    mem: &DeviceMem,
    cfg: &KernelConfig,
    block_idx: u32,
    kernel: &F,
    scratch: &mut BlockScratch,
) -> Result<(u64, ProfileCounters), SimError>
where
    F: Fn(&mut BlockCtx<'_>) + Sync,
{
    // Each warp's proportional slice of the SM's L1, direct-mapped,
    // rounded to a power of two (V100: 4096 sectors / 64 warps = 64).
    let l1_slice = (dev.config().l1_sectors_per_sm as u64 * WARP_SIZE as u64
        / dev.config().max_threads_per_sm.max(1) as u64)
        .max(16)
        .next_power_of_two() as usize;
    let warps = (cfg.block_dim as usize).div_ceil(WARP_SIZE);
    scratch.reset(
        cfg.shared_words as usize,
        cfg.block_dim as usize,
        warps * l1_slice,
    );
    let BlockScratch {
        shared,
        traces,
        l1,
        replay,
    } = scratch;
    let mut blk = BlockCtx {
        mem,
        cost: dev.config().cost,
        block_idx,
        block_dim: cfg.block_dim,
        grid_dim: cfg.grid_dim,
        shared,
        traces,
        race: (cfg.race_detect || dev.config().force_race_detection)
            .then(|| RaceTracker::new(cfg.shared_words as usize)),
        san: (cfg.sanitize || dev.config().force_sanitizer)
            .then(|| SanTracker::new(cfg.shared_words as usize)),
        l1,
        l1_slice,
        replay,
        counters: ProfileCounters::default(),
        cycles: 0,
        fault: None,
    };
    kernel(&mut blk);
    // Flush any trailing un-barriered work (kernel end is a barrier).
    blk.barrier();
    if let Some(t) = &blk.race {
        blk.counters.race_checks += t.checks;
        blk.counters.races_detected += t.races;
    }
    if let Some(t) = &blk.san {
        blk.counters.sanitizer_checks += t.checks;
        blk.counters.sanitizer_reports += t.reports;
    }
    if let Some(err) = blk.fault {
        return Err(err);
    }
    Ok((blk.cycles, blk.counters))
}

/// A warp holds at most [`WARP_SIZE`] lanes and each lane contributes at
/// most one address per step, so per-kind address lists fit in fixed
/// stack arrays — no heap, no sorting, and the O(n²) dedup scans below
/// stay on 32-entry arrays that live in cache (and usually registers).
struct LaneAddrs64 {
    buf: [u64; WARP_SIZE],
    len: usize,
}

impl Default for LaneAddrs64 {
    fn default() -> Self {
        LaneAddrs64 {
            buf: [0; WARP_SIZE],
            len: 0,
        }
    }
}

impl LaneAddrs64 {
    #[inline]
    fn push(&mut self, a: u64) {
        debug_assert!(self.len < WARP_SIZE);
        self.buf[self.len] = a;
        self.len += 1;
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }
}

struct LaneAddrs32 {
    buf: [u32; WARP_SIZE],
    len: usize,
}

impl Default for LaneAddrs32 {
    fn default() -> Self {
        LaneAddrs32 {
            buf: [0; WARP_SIZE],
            len: 0,
        }
    }
}

impl LaneAddrs32 {
    #[inline]
    fn push(&mut self, a: u32) {
        debug_assert!(self.len < WARP_SIZE);
        self.buf[self.len] = a;
        self.len += 1;
    }

    #[inline]
    fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len]
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }
}

/// Scratch for one lockstep step of one warp.
#[derive(Default)]
struct StepScratch {
    /// Global-load misses (addresses that cost DRAM sectors).
    gload: LaneAddrs64,
    /// Global-load L1 hits (wavefronts in the request, no DRAM traffic).
    gload_hits: LaneAddrs64,
    gstore: LaneAddrs64,
    gatomic: LaneAddrs64,
    sload: LaneAddrs32,
    sstore: LaneAddrs32,
    satomic: LaneAddrs32,
}

impl StepScratch {
    fn clear(&mut self) {
        self.gload.clear();
        self.gload_hits.clear();
        self.gstore.clear();
        self.gatomic.clear();
        self.sload.clear();
        self.sstore.clear();
        self.satomic.clear();
    }
}

/// Replay position of one live lane, carried *inline* in the compacted
/// lane array so the gather loop touches one cache line per lane instead
/// of bouncing between a live-index list, a cursor table and the trace
/// table. `ops` borrows the lane's recorded trace for the duration of one
/// [`replay_warp`] call.
#[derive(Clone, Copy, Default)]
struct LaneState<'a> {
    /// The lane's recorded ops (never empty while the state is live).
    ops: &'a [PackedOp],
    /// Next op to replay.
    idx: u32,
    /// Consumed prefix of the compute run at `idx`, when that op is
    /// `Op::Compute(n)`.
    run_done: u32,
    /// Original lane number (compaction reorders the array).
    lane: u32,
}

/// Reusable state for [`replay_warp`]; lives in the per-worker
/// [`BlockScratch`] so replay performs no allocation.
#[derive(Default)]
pub(crate) struct ReplayScratch {
    step: StepScratch,
}

/// Count distinct 32-byte sectors among the (word) addresses of one warp
/// load/store slot. ≤ 32 addresses, so a linear seen-scan beats sorting.
fn count_sectors(addrs: &[u64]) -> u64 {
    count_sectors_split(addrs, &[]).1
}

/// Seen-scan over the miss and hit halves of one load slot, without
/// materializing the union: returns `(miss_sectors, total_sectors)` —
/// distinct sectors among `misses` alone, then distinct sectors across
/// the concatenation — in a single pass. The scan runs newest-first
/// because coalesced warps revisit the sector they just recorded.
fn count_sectors_split(misses: &[u64], hits: &[u64]) -> (u64, u64) {
    debug_assert!(misses.len() + hits.len() <= WARP_SIZE);
    let mut seen = [0u64; WARP_SIZE];
    let mut n = 0usize;
    'miss: for &addr in misses {
        let s = addr / crate::SECTOR_BYTES;
        for &prev in seen[..n].iter().rev() {
            if prev == s {
                continue 'miss;
            }
        }
        seen[n] = s;
        n += 1;
    }
    let miss_sectors = n as u64;
    'hit: for &addr in hits {
        let s = addr / crate::SECTOR_BYTES;
        for &prev in seen[..n].iter().rev() {
            if prev == s {
                continue 'hit;
            }
        }
        seen[n] = s;
        n += 1;
    }
    (miss_sectors, n as u64)
}

/// Worst-case same-address collision depth (atomics serialize on address).
fn max_same_addr_depth<T: PartialEq + Copy>(addrs: &[T]) -> u64 {
    let mut best = 0u64;
    for (i, &a) in addrs.iter().enumerate() {
        if addrs[..i].contains(&a) {
            continue; // depth already counted at its first occurrence
        }
        let depth = addrs[i..].iter().filter(|&&x| x == a).count() as u64;
        best = best.max(depth);
    }
    best
}

/// Shared-memory bank-conflict ways: accesses to the same word broadcast,
/// accesses to distinct words in the same bank serialize.
fn bank_conflict_ways(addrs: &[u32]) -> u64 {
    let mut per_bank = [0u8; SHARED_BANKS];
    let mut ways = 1u64;
    for (i, &a) in addrs.iter().enumerate() {
        if addrs[..i].contains(&a) {
            continue; // duplicate word: broadcast, not a conflict
        }
        let bank = (a as usize) % SHARED_BANKS;
        per_bank[bank] += 1;
        ways = ways.max(per_bank[bank] as u64);
    }
    ways
}

/// Replay the lanes of one warp in lockstep and return (cycles, counters).
///
/// At each step, the next un-replayed op of every still-active lane is
/// gathered; lanes that diverged onto different op kinds serialize into
/// separate issue slots (SIMT branch divergence), and lanes whose traces
/// already ended count as inactive, which is what depresses
/// `warp_execution_efficiency` for imbalanced workloads.
///
/// Compute runs (`Op::Compute(n)`) are consumed in batches: when a step
/// issues *only* compute, every active lane is inside a run, and the set
/// of active lanes cannot change for the next `m = min(remaining run)`
/// steps — exhausted lanes stay exhausted and converge-marked lanes keep
/// waiting (compute is a real issue). So `m` identical one-instruction
/// steps collapse into one batch with counters scaled by `m`,
/// bit-identical to stepping. When the step also issues memory, the
/// active compute set can change next step, so `m = 1`.
///
/// [`Op::Converge`] markers re-align the lanes: a lane that reaches one
/// stalls (inactive) until every unfinished lane is also at a marker,
/// then all markers are consumed together — the branch re-join of real
/// SIMT hardware, without which lanes that skip a data-dependent inner
/// loop would stay shifted against their siblings forever.
fn replay_warp(
    traces: &[LaneTrace],
    cost: &CostModel,
    scratch: &mut ReplayScratch,
) -> (u64, ProfileCounters) {
    let mut counters = ProfileCounters::default();
    let mut cycles = 0u64;
    let step = &mut scratch.step;
    // Live lanes, compacted in place: an exhausted lane swaps with the
    // last live entry and drops out, so a tail-divergent warp — one long
    // merge while 31 lanes sit finished, the common shape in triangle
    // counting — costs one lane visit per step, not 32. Compaction
    // reorders lane visits, which is safe: every per-slot pass (distinct
    // sectors, bank ways, same-address depth, lane counts) is
    // order-independent.
    let mut lanes: [LaneState<'_>; WARP_SIZE] = [LaneState::default(); WARP_SIZE];
    let mut n_live = 0usize;
    for (lane, t) in traces.iter().enumerate() {
        if !t.is_empty() {
            lanes[n_live] = LaneState {
                ops: &t.ops,
                idx: 0,
                run_done: 0,
                lane: lane as u32,
            };
            n_live += 1;
        }
    }
    if n_live == 0 {
        return (0, counters);
    }
    // Lanes stalled at a `Converge` marker are *parked* past `n_active`
    // (the array is split `[active.. | parked.. | dead]`), so a warp
    // whose 31 finished-early lanes wait out one long merge scans a
    // single lane per step instead of re-matching 32 marker heads — on
    // the full Wiki-Talk sweep roughly a sixth of all lane visits were
    // such re-matched waiters.
    let mut n_active = n_live;
    loop {
        step.clear();
        let mut compute_lanes = 0u64;
        // Which lanes were *at* a compute head during this gather pass.
        // The consume pass below must not re-read heads: a lane whose
        // memory op issued this step already advanced onto its next op,
        // and consuming that op here would skip it without counting it.
        let mut compute_mask = 0u32;
        let mut min_run = u32::MAX;
        let mut i = 0;
        while i < n_active {
            let st = &mut lanes[i];
            // Live-array invariant: `st.idx` is in bounds.
            let op = st.ops[st.idx as usize].unpack();
            match op {
                Op::Converge => {
                    // Stalls until every active lane reaches a marker;
                    // the cursor advances at re-align.
                    n_active -= 1;
                    lanes.swap(i, n_active);
                    continue;
                }
                Op::Compute(n) => {
                    debug_assert!(n > st.run_done, "Compute(n) invariant: n >= 1");
                    compute_lanes += 1;
                    compute_mask |= 1 << st.lane;
                    min_run = min_run.min(n - st.run_done);
                    i += 1; // cursor advances after batching below
                    continue;
                }
                Op::GLoad(a) => step.gload.push(a),
                Op::GLoadHit(a) => step.gload_hits.push(a),
                Op::GStore(a) => step.gstore.push(a),
                Op::GAtomic(a) => step.gatomic.push(a),
                Op::SLoad(a) => step.sload.push(a),
                Op::SStore(a) => step.sstore.push(a),
                Op::SAtomic(a) => step.satomic.push(a),
            }
            st.idx += 1;
            let exhausted = st.idx as usize == st.ops.len();
            if exhausted {
                // Retire: swap out of the active region, then out of the
                // parked region, preserving both partitions.
                n_active -= 1;
                lanes.swap(i, n_active);
                n_live -= 1;
                lanes.swap(n_active, n_live);
            } else {
                i += 1;
            }
        }
        let memory_issued = !step.gload.is_empty()
            || !step.gload_hits.is_empty()
            || !step.gstore.is_empty()
            || !step.gatomic.is_empty()
            || !step.sload.is_empty()
            || !step.sstore.is_empty()
            || !step.satomic.is_empty();
        if !memory_issued && compute_lanes == 0 {
            if n_live > 0 {
                // Every unfinished lane is parked at a marker: consume
                // them all and re-align.
                debug_assert_eq!(n_active, 0);
                let mut i = 0;
                while i < n_live {
                    let st = &mut lanes[i];
                    debug_assert!(matches!(st.ops[st.idx as usize].unpack(), Op::Converge));
                    st.idx += 1;
                    if st.idx as usize == st.ops.len() {
                        n_live -= 1;
                        lanes.swap(i, n_live);
                    } else {
                        i += 1;
                    }
                }
                n_active = n_live;
                continue;
            }
            break; // all traces exhausted
        }
        let mut issue = |active: u64| {
            counters.issued_slots += 1;
            counters.active_thread_slots += active;
        };
        if !step.gload.is_empty() || !step.gload_hits.is_empty() {
            issue((step.gload.len + step.gload_hits.len) as u64);
            // nvprof's gld_transactions counts wavefronts (distinct
            // sectors addressed) regardless of cache hits; the DRAM floor
            // charges only the miss half. One fused scan yields both.
            let (miss_sectors, total_sectors) =
                count_sectors_split(step.gload.as_slice(), step.gload_hits.as_slice());
            counters.global_load_requests += 1;
            counters.gld_transactions += total_sectors;
            counters.dram_load_sectors += miss_sectors;
            cycles += cost.global_load_slot(total_sectors, miss_sectors);
        }
        if !step.gstore.is_empty() {
            issue(step.gstore.len as u64);
            let sectors = count_sectors(step.gstore.as_slice());
            counters.global_store_requests += 1;
            counters.gst_transactions += sectors;
            cycles += cost.global_slot(sectors);
        }
        if !step.gatomic.is_empty() {
            issue(step.gatomic.len as u64);
            let depth = max_same_addr_depth(step.gatomic.as_slice());
            counters.global_atomic_requests += 1;
            // Atomics are resolved in L2 but still move their sectors
            // over DRAM; distinct 32-byte sectors feed the launch-level
            // bandwidth floor alongside load and store traffic.
            counters.dram_atomic_sectors += count_sectors(step.gatomic.as_slice());
            cycles += cost.global_atomic_slot(depth);
        }
        if !step.sload.is_empty() {
            issue(step.sload.len as u64);
            let ways = bank_conflict_ways(step.sload.as_slice());
            counters.shared_load_requests += 1;
            cycles += cost.shared_slot(ways);
        }
        if !step.sstore.is_empty() {
            issue(step.sstore.len as u64);
            let ways = bank_conflict_ways(step.sstore.as_slice());
            counters.shared_store_requests += 1;
            cycles += cost.shared_slot(ways);
        }
        if !step.satomic.is_empty() {
            issue(step.satomic.len as u64);
            let depth = max_same_addr_depth(step.satomic.as_slice());
            counters.shared_atomic_requests += 1;
            cycles += cost.shared_atomic_slot(depth);
        }
        if compute_lanes > 0 {
            let m = if memory_issued { 1 } else { min_run as u64 };
            counters.issued_slots += m;
            counters.active_thread_slots += m * compute_lanes;
            counters.compute_slots += m;
            cycles += m * cost.compute;
            let m32 = m as u32;
            let mut i = 0;
            while i < n_active {
                let st = &mut lanes[i];
                if compute_mask & (1 << st.lane) == 0 {
                    i += 1;
                    continue;
                }
                let Op::Compute(n) = st.ops[st.idx as usize].unpack() else {
                    unreachable!("compute_mask lane must still head a Compute run");
                };
                st.run_done += m32;
                debug_assert!(st.run_done <= n);
                if st.run_done == n {
                    st.idx += 1;
                    st.run_done = 0;
                    let exhausted = st.idx as usize == st.ops.len();
                    if exhausted {
                        n_active -= 1;
                        lanes.swap(i, n_active);
                        n_live -= 1;
                        lanes.swap(n_active, n_live);
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    // The loop only breaks when no lane has an op left to issue.
    debug_assert_eq!(n_live, 0, "replay exited with unconsumed ops");
    (cycles, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LaneTrace;

    fn trace_of(ops: &[Op]) -> LaneTrace {
        LaneTrace::from_ops(ops)
    }

    fn replay(traces: &[LaneTrace]) -> (u64, ProfileCounters) {
        replay_warp(traces, &CostModel::v100(), &mut ReplayScratch::default())
    }

    #[test]
    fn global_thread_id_widens_before_multiplying() {
        // 8M blocks of 1024 threads: the last global tid is ~2^33, far
        // past u32. The u32 expression wrapped to a small alias.
        let blocks = 8 * 1024 * 1024u32;
        let tid = global_thread_id(blocks - 1, 1024, 1023);
        assert_eq!(tid, (blocks as u64) * 1024 - 1);
        assert!(tid > u32::MAX as u64);
        // And the in-range case is unchanged.
        assert_eq!(global_thread_id(3, 256, 17), 3 * 256 + 17);
    }

    #[test]
    fn sector_counting_coalesced_vs_scattered() {
        // 32 lanes reading consecutive words: 32 * 4B = 128B = 4 sectors.
        let coalesced: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(count_sectors(&coalesced), 4);
        // 32 lanes each in its own sector.
        let scattered: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
        assert_eq!(count_sectors(&scattered), 32);
        // All lanes on the same word: a single broadcastable sector.
        let broadcast: Vec<u64> = vec![100; 32];
        assert_eq!(count_sectors(&broadcast), 1);
    }

    #[test]
    fn chained_sector_counting_matches_union() {
        // Misses and hits overlapping in sector 0 plus a hit-only sector.
        let misses = [0u64, 4, 64];
        let hits = [8u64, 96, 100];
        assert_eq!(count_sectors_split(&misses, &hits), (2, 3));
        assert_eq!(count_sectors_split(&misses, &[]).1, count_sectors(&misses));
    }

    #[test]
    fn collision_depth() {
        let a = [1u64, 2, 2, 2, 3];
        assert_eq!(max_same_addr_depth(&a), 3);
        let b = [5u64];
        assert_eq!(max_same_addr_depth(&b), 1);
        // Unsorted duplicates must still count as one run.
        let c = [7u64, 1, 7, 2, 7];
        assert_eq!(max_same_addr_depth(&c), 3);
    }

    #[test]
    fn bank_conflicts() {
        // Stride-1: each lane its own bank.
        let s: Vec<u32> = (0..32).collect();
        assert_eq!(bank_conflict_ways(&s), 1);
        // Stride-32: all lanes in bank 0 -> 32-way conflict.
        let c: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_ways(&c), 32);
        // Same word everywhere: broadcast, no conflict.
        let b: Vec<u32> = vec![7; 32];
        assert_eq!(bank_conflict_ways(&b), 1);
    }

    #[test]
    fn replay_counts_divergence() {
        let cost = CostModel::v100();
        // Lane 0 does 4 computes, lane 1 does 1: 4 slots, 5 active-thread
        // slots => efficiency 5/(4*32).
        let traces = vec![trace_of(&[Op::Compute(4)]), trace_of(&[Op::Compute(1)])];
        let (cycles, c) = replay(&traces);
        assert_eq!(c.issued_slots, 4);
        assert_eq!(c.active_thread_slots, 5);
        assert_eq!(c.compute_slots, 4);
        assert_eq!(cycles, 4 * cost.compute);
    }

    #[test]
    fn replay_splits_divergent_kinds() {
        // Two lanes at step 0 doing different kinds: two issue slots.
        let traces = vec![trace_of(&[Op::Compute(1)]), trace_of(&[Op::GLoad(0)])];
        let (_, c) = replay(&traces);
        assert_eq!(c.issued_slots, 2);
        assert_eq!(c.active_thread_slots, 2);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.compute_slots, 1);
    }

    #[test]
    fn replay_groups_coalesced_loads() {
        let cost = CostModel::v100();
        // 8 lanes load 8 consecutive words (one sector): 1 request,
        // 1 transaction.
        let traces: Vec<LaneTrace> = (0..8u64).map(|i| trace_of(&[Op::GLoad(i * 4)])).collect();
        let (cycles, c) = replay(&traces);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1);
        assert_eq!(c.dram_load_sectors, 1);
        assert_eq!(cycles, cost.global_load_slot(1, 1));
    }

    #[test]
    fn replay_counts_hit_wavefronts_as_transactions() {
        let cost = CostModel::v100();
        // Two lanes in different sectors, both L1 hits: one request, two
        // wavefront transactions, zero DRAM sectors.
        let traces = vec![
            trace_of(&[Op::GLoadHit(0)]),
            trace_of(&[Op::GLoadHit(4096)]),
        ];
        let (cycles, c) = replay(&traces);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 2);
        assert_eq!(c.dram_load_sectors, 0);
        assert_eq!(cycles, cost.global_load_slot(2, 0));
        assert!(cycles < cost.global_load_slot(2, 2));
    }

    #[test]
    fn replay_counts_atomic_dram_sectors() {
        // 4 lanes hammer one word: one sector of DRAM atomic traffic.
        let same: Vec<LaneTrace> = (0..4).map(|_| trace_of(&[Op::GAtomic(256)])).collect();
        let (_, c) = replay(&same);
        assert_eq!(c.global_atomic_requests, 1);
        assert_eq!(c.dram_atomic_sectors, 1);
        // 4 lanes on 4 distant words: four sectors from the same slot.
        let scattered: Vec<LaneTrace> = (0..4u64)
            .map(|i| trace_of(&[Op::GAtomic(i * 4096)]))
            .collect();
        let (_, c) = replay(&scattered);
        assert_eq!(c.global_atomic_requests, 1);
        assert_eq!(c.dram_atomic_sectors, 4);
    }

    #[test]
    fn converge_realigns_shifted_lanes() {
        // Lane 0 does 3 computes then a load; lane 1 does 1 compute then
        // a load. Without markers the loads land on different steps (2
        // separate requests); with a marker before the load they align
        // into one coalesced request.
        let unaligned = vec![
            trace_of(&[Op::Compute(3), Op::GLoad(0)]),
            trace_of(&[Op::Compute(1), Op::GLoad(4)]),
        ];
        let (_, c) = replay(&unaligned);
        assert_eq!(c.global_load_requests, 2);

        let aligned = vec![
            trace_of(&[Op::Compute(3), Op::Converge, Op::GLoad(0)]),
            trace_of(&[Op::Compute(1), Op::Converge, Op::GLoad(4)]),
        ];
        let (_, c) = replay(&aligned);
        assert_eq!(c.global_load_requests, 1);
        assert_eq!(c.gld_transactions, 1, "aligned loads share a sector");
    }

    #[test]
    fn converge_with_exhausted_lanes_does_not_deadlock() {
        let traces = vec![
            trace_of(&[Op::Compute(1), Op::Converge, Op::Compute(1)]),
            trace_of(&[Op::Compute(1)]), // finishes before the marker
            LaneTrace::default(),        // never does anything
        ];
        let (_, c) = replay(&traces);
        assert_eq!(c.compute_slots, 2);
    }

    #[test]
    fn trailing_converge_is_free() {
        let traces = vec![trace_of(&[Op::Converge]), trace_of(&[Op::Converge])];
        let (cycles, c) = replay(&traces);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }

    #[test]
    fn empty_traces_are_free() {
        let traces = vec![LaneTrace::default(); 32];
        let (cycles, c) = replay(&traces);
        assert_eq!(cycles, 0);
        assert_eq!(c.issued_slots, 0);
    }

    /// Reference replayer: expand every `Compute(n)` into `n` unit runs,
    /// defeating the batch path (each step's `min_run` is 1). The
    /// batched replay must be bit-identical against it.
    fn replay_unbatched(traces: &[LaneTrace]) -> (u64, ProfileCounters) {
        let expanded: Vec<LaneTrace> = traces
            .iter()
            .map(|t| {
                let mut ops = Vec::new();
                for &op in &t.ops {
                    match op.unpack() {
                        Op::Compute(n) => {
                            ops.extend(std::iter::repeat_n(Op::Compute(1), n as usize))
                        }
                        other => ops.push(other),
                    }
                }
                LaneTrace::from_ops(&ops)
            })
            .collect();
        replay(&expanded)
    }

    #[test]
    fn compute_after_memory_op_is_counted_not_swallowed() {
        // Regression: a lane whose memory op issues in a step advances
        // onto its next op *during* the gather pass. The compute-consume
        // pass must not re-read that lane's head, or the fresh Compute
        // run is consumed without ever being counted — undercounting
        // active_thread_slots/compute_slots on every load->compute
        // transition (ubiquitous in merge loops).
        let traces = [
            trace_of(&[Op::Compute(1)]),
            trace_of(&[Op::GLoad(652), Op::Compute(1)]),
        ];
        let (_, c) = replay(&traces);
        // Step 1: lane 1's load (1 slot) + lane 0's compute (1 slot).
        // Step 2: lane 1's compute alone (1 slot).
        assert_eq!(c.active_thread_slots, 3);
        assert_eq!(c.compute_slots, 2);
        assert_eq!(c.issued_slots, 3);
        assert_eq!(c.global_load_requests, 1);
    }

    #[test]
    fn batched_compute_replay_is_bit_identical_to_stepping() {
        // A divergent mix: unequal runs, loads interleaved mid-run,
        // converge markers, an exhausted lane and an atomic.
        let cases: Vec<Vec<LaneTrace>> = vec![
            vec![trace_of(&[Op::Compute(7)]), trace_of(&[Op::Compute(3)])],
            vec![
                trace_of(&[Op::Compute(5), Op::GLoad(0), Op::Compute(2)]),
                trace_of(&[Op::Compute(2), Op::GLoad(64), Op::Compute(9)]),
                trace_of(&[Op::GStore(128), Op::Compute(4)]),
            ],
            vec![
                trace_of(&[Op::Compute(6), Op::Converge, Op::Compute(1)]),
                trace_of(&[Op::Compute(2), Op::Converge, Op::Compute(8)]),
                LaneTrace::default(),
            ],
            vec![
                trace_of(&[Op::Compute(3), Op::GAtomic(0), Op::SLoad(1), Op::Compute(2)]),
                trace_of(&[Op::Compute(1), Op::SStore(33), Op::Compute(5)]),
                trace_of(&[Op::Compute(4), Op::SAtomic(1)]),
            ],
        ];
        for traces in cases {
            let batched = replay(&traces);
            let stepped = replay_unbatched(&traces);
            assert_eq!(batched.0, stepped.0, "cycles diverged");
            assert_eq!(batched.1, stepped.1, "counters diverged");
        }
    }

    #[test]
    fn scratch_reuse_across_replays_is_clean() {
        // Replay two very different warps through one scratch; the second
        // must not see any state from the first.
        let mut scratch = ReplayScratch::default();
        let cost = CostModel::v100();
        let first = vec![trace_of(&[Op::Compute(9), Op::GLoad(0)]); 32];
        let _ = replay_warp(&first, &cost, &mut scratch);
        let second = vec![trace_of(&[Op::Compute(1)])];
        let (cycles, c) = replay_warp(&second, &cost, &mut scratch);
        assert_eq!(c.issued_slots, 1);
        assert_eq!(c.active_thread_slots, 1);
        assert_eq!(cycles, cost.compute);
    }
}

#[cfg(test)]
mod replay_microbench {
    use super::*;
    use crate::trace::LaneTrace;

    /// Not a correctness test: a timing probe for the replay hot loop.
    /// Run with `cargo test --release -p gpu-sim microbench -- --nocapture --ignored`.
    #[test]
    #[ignore]
    fn microbench_replay_polak_shape() {
        // Polak-like warp: 32 lanes alternating compute/scattered-load,
        // with a divergent tail on lane 0.
        let mut traces: Vec<LaneTrace> = Vec::new();
        for lane in 0..32u64 {
            let mut t = LaneTrace::default();
            let steps = 40 + (lane % 7) * 10 + if lane == 0 { 120 } else { 0 };
            for k in 0..steps {
                t.push_compute(1);
                t.push(Op::GLoad((lane * 2_654_435_761 + k * 4096) & 0xfff_ffff));
                if k % 3 == 0 {
                    t.push(Op::GLoadHit(((lane * 97 + k) * 4) & 0xfff));
                }
            }
            traces.push(t);
        }
        let cost = CostModel::v100();
        let mut scratch = ReplayScratch::default();
        let reps = 20_000u32;
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..reps {
            let (cycles, c) = replay_warp(&traces, &cost, &mut scratch);
            acc = acc.wrapping_add(cycles).wrapping_add(c.active_thread_slots);
        }
        let dt = t0.elapsed();
        let (_, c1) = replay_warp(&traces, &cost, &mut scratch);
        let steps = c1.issued_slots;
        println!(
            "replay: {reps} reps x {} ops ({} issued slots) in {:?} -> {:.1} ns/slot (acc {acc})",
            traces.iter().map(|t| t.ops.len()).sum::<usize>(),
            steps,
            dt,
            dt.as_nanos() as f64 / (reps as f64 * steps as f64),
        );
    }
}
