/root/repo/target/debug/deps/proptest-54193a15353f0175.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-54193a15353f0175.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
