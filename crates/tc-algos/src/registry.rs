//! Registry of the eight published implementations, in Table I order
//! (chronological).

use crate::api::TcAlgorithm;
use crate::{
    bisson::Bisson, fox::Fox, green::Green, hindex::HIndex, hu::Hu, polak::Polak, tricore::TriCore,
    trust::Trust,
};

/// All eight published implementations the paper evaluates,
/// chronologically as in Table I. (GroupTC, the paper's own algorithm,
/// is added by `tc-core`'s registry.)
pub fn published_algorithms() -> Vec<Box<dyn TcAlgorithm>> {
    vec![
        Box::new(Green),
        Box::new(Polak),
        Box::new(Bisson),
        Box::new(TriCore),
        Box::new(Fox::default()),
        Box::new(Hu),
        Box::new(HIndex),
        Box::new(Trust),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let algos = published_algorithms();
        assert_eq!(algos.len(), 8);
        let years: Vec<u16> = algos.iter().map(|a| a.meta().year).collect();
        assert_eq!(years, vec![2014, 2016, 2017, 2018, 2018, 2019, 2019, 2021]);
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Green", "Polak", "Bisson", "TriCore", "Fox", "Hu", "H-INDEX", "TRUST"]
        );
    }

    #[test]
    fn names_are_unique() {
        let algos = published_algorithms();
        let mut names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
