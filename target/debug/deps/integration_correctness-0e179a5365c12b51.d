/root/repo/target/debug/deps/integration_correctness-0e179a5365c12b51.d: tests/integration_correctness.rs

/root/repo/target/debug/deps/integration_correctness-0e179a5365c12b51: tests/integration_correctness.rs

tests/integration_correctness.rs:
