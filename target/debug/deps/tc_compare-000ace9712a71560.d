/root/repo/target/debug/deps/tc_compare-000ace9712a71560.d: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-000ace9712a71560.rlib: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-000ace9712a71560.rmeta: src/lib.rs

src/lib.rs:
