/root/repo/target/debug/deps/proptest-ce4985edae0b28b2.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ce4985edae0b28b2.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
