/root/repo/target/debug/deps/table2-761e8716e340d4bb.d: crates/tc-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-761e8716e340d4bb.rmeta: crates/tc-bench/src/bin/table2.rs Cargo.toml

crates/tc-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
