//! Erdős–Rényi G(n, m): uniform random pairs. Low clustering and a
//! near-uniform degree distribution — the stand-in texture for the P2P
//! overlay (P2p-Gnutella31), which is famously triangle-poor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::EdgeList;

/// Generate `num_edges` raw uniform pairs over `n` vertices.
pub fn erdos_renyi(n: u32, num_edges: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    EdgeList::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 500, 3), erdos_renyi(100, 500, 3));
        assert_ne!(erdos_renyi(100, 500, 3), erdos_renyi(100, 500, 4));
    }

    #[test]
    fn ids_in_range() {
        let e = erdos_renyi(50, 1000, 0);
        assert!(e.edges.iter().all(|&(u, v)| u < 50 && v < 50));
    }

    #[test]
    fn near_uniform_degrees() {
        let (g, _) = clean_edges(&erdos_renyi(2000, 14_000, 5));
        // ER skew stays small compared to power-law graphs.
        assert!(GraphStats::compute(&g).skew() < 6.0);
    }
}
