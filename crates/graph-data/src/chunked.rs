//! Out-of-core CSR storage.
//!
//! A [`ChunkedCsr`] keeps the `row_ptr` / `col_idx` arrays of a CSR in a
//! spill file on disk (the same versioned `TCCSRv01` format
//! [`crate::io::write_csr`] produces) and serves reads through a bounded
//! chunk cache: fixed-size chunks of `u32` words are fetched with
//! positioned reads (`pread`) on demand and evicted least-recently-used
//! once the resident budget is reached. A pinned budget keeps the hottest
//! prefix of the offsets array resident permanently, since every degree
//! lookup touches it.
//!
//! `ChunkedCsr` implements [`CsrAccess`], the accessor trait the
//! orientation and preparation pipeline is generic over, so datasets too
//! large to hold in memory stream through `orient_access` / `dag()`
//! unchanged.
//!
//! The file is fully validated at open time (header, exact file length,
//! offsets monotonicity) so later chunk fetches can only fail on
//! environmental I/O errors; those panic with context rather than
//! threading `Result` through every accessor. The cache uses `RefCell`
//! interior mutability and is therefore `!Sync`; clone-per-thread (each
//! clone reopens the file with a cold cache) for parallel use.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

use crate::io::{read_csr_header, write_csr, CsrHeader};
use crate::types::{Csr, CsrAccess, VertexId};

/// Tuning knobs for the chunk cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCacheConfig {
    /// `u32` words per cached chunk (chunk size in bytes is 4x this).
    pub chunk_words: usize,
    /// Maximum number of unpinned resident chunks before LRU eviction.
    pub max_resident: usize,
    /// The first `pinned_chunks` chunks of the offsets region are pinned:
    /// fetched on first touch and never evicted. Degree lookups hit the
    /// offsets array twice per vertex, so pinning its prefix removes the
    /// most repetitive I/O.
    pub pinned_chunks: usize,
}

impl Default for ChunkCacheConfig {
    fn default() -> Self {
        ChunkCacheConfig {
            // 16 Ki words = 64 KiB per chunk, ~4 MiB unpinned budget.
            chunk_words: 1 << 14,
            max_resident: 64,
            pinned_chunks: 4,
        }
    }
}

/// Which on-disk array a chunk belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Region {
    Offsets,
    Targets,
}

#[derive(Debug)]
struct CachedChunk {
    words: Vec<u32>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct ChunkCache {
    resident: HashMap<(Region, u64), CachedChunk>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Cache behaviour counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Chunks currently resident (pinned included).
    pub resident: usize,
}

/// A CSR whose arrays live in a spill file and are served through a
/// bounded chunk cache. See the module docs for the contract.
#[derive(Debug)]
pub struct ChunkedCsr {
    file: File,
    path: PathBuf,
    header: CsrHeader,
    cfg: ChunkCacheConfig,
    cache: RefCell<ChunkCache>,
}

#[cfg(unix)]
fn pread(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(windows)]
fn pread(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    use std::os::windows::fs::FileExt;
    let mut filled = 0usize;
    while filled < buf.len() {
        match file.seek_read(&mut buf[filled..], off + filled as u64)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "spill file truncated under reader",
                ))
            }
            n => filled += n,
        }
    }
    Ok(())
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ChunkedCsr {
    /// Open a `TCCSRv01` spill file with the default cache configuration.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, ChunkCacheConfig::default())
    }

    /// Open a `TCCSRv01` spill file. The header is read and validated,
    /// the file length checked against the declared sizes, and the
    /// offsets array stream-verified (monotone, starts at zero, ends at
    /// the target count) — without materializing either array.
    pub fn open_with(path: impl AsRef<Path>, cfg: ChunkCacheConfig) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let header = read_csr_header(&mut &file)?;
        let actual = file.metadata()?.len();
        if actual != header.file_len {
            return Err(invalid(format!(
                "spill file is {actual} byte(s) but the header declares {} \
                 (truncated or trailing bytes)",
                header.file_len
            )));
        }
        validate_offsets_streamed(&file, &header)?;
        let cfg = ChunkCacheConfig {
            chunk_words: cfg.chunk_words.max(1),
            max_resident: cfg.max_resident.max(1),
            pinned_chunks: cfg.pinned_chunks,
        };
        Ok(ChunkedCsr {
            file,
            path,
            header,
            cfg,
            cache: RefCell::new(ChunkCache::default()),
        })
    }

    /// Write `csr` to `path` in the spill format and open it chunked.
    pub fn spill(csr: &Csr, path: impl AsRef<Path>) -> io::Result<Self> {
        Self::spill_with(csr, path, ChunkCacheConfig::default())
    }

    /// [`ChunkedCsr::spill`] with an explicit cache configuration.
    pub fn spill_with(
        csr: &Csr,
        path: impl AsRef<Path>,
        cfg: ChunkCacheConfig,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        write_csr(BufWriter::new(File::create(path)?), csr)?;
        Self::open_with(path, cfg)
    }

    /// The spill file backing this CSR.
    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn config(&self) -> ChunkCacheConfig {
        self.cfg
    }

    pub fn num_vertices(&self) -> u32 {
        self.header.num_vertices
    }

    pub fn num_entries(&self) -> u64 {
        self.header.num_targets
    }

    /// Start index of `v`'s list in the flat target array.
    pub fn offset(&self, v: VertexId) -> u32 {
        assert!(v <= self.header.num_vertices, "vertex {v} out of range");
        self.word(Region::Offsets, v as u64)
    }

    pub fn degree(&self, v: VertexId) -> u32 {
        assert!(v < self.header.num_vertices, "vertex {v} out of range");
        self.word(Region::Offsets, v as u64 + 1) - self.word(Region::Offsets, v as u64)
    }

    /// `v`'s neighbour list, gathered from the cache into a fresh `Vec`.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v) as usize);
        self.for_each_neighbor_impl(v, &mut |w| out.push(w));
        out
    }

    pub fn cache_stats(&self) -> ChunkCacheStats {
        let c = self.cache.borrow();
        ChunkCacheStats {
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
            resident: c.resident.len(),
        }
    }

    fn for_each_neighbor_impl(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let lo = self.offset(v) as u64;
        let hi = self.word(Region::Offsets, v as u64 + 1) as u64;
        let cw = self.cfg.chunk_words as u64;
        let mut idx = lo;
        while idx < hi {
            let chunk = idx / cw;
            let within = (idx % cw) as usize;
            let take = (((chunk + 1) * cw).min(hi) - idx) as usize;
            self.with_chunk(Region::Targets, chunk, |words| {
                for &w in &words[within..within + take] {
                    f(w);
                }
            });
            idx += take as u64;
        }
    }

    fn word(&self, region: Region, idx: u64) -> u32 {
        let cw = self.cfg.chunk_words as u64;
        self.with_chunk(region, idx / cw, |words| words[(idx % cw) as usize])
    }

    fn with_chunk<T>(&self, region: Region, chunk: u64, f: impl FnOnce(&[u32]) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if cache.resident.contains_key(&(region, chunk)) {
            cache.hits += 1;
            let c = cache.resident.get_mut(&(region, chunk)).unwrap();
            c.stamp = stamp;
            return f(&c.words);
        }
        cache.misses += 1;
        let words = self.fetch(region, chunk).unwrap_or_else(|e| {
            panic!(
                "I/O error reading spill file {} (validated at open): {e}",
                self.path.display()
            )
        });
        // Evict LRU unpinned chunks down to the budget before inserting.
        let pinned =
            |&(r, c): &(Region, u64)| r == Region::Offsets && c < self.cfg.pinned_chunks as u64;
        while cache.resident.keys().filter(|k| !pinned(k)).count() >= self.cfg.max_resident {
            let victim = cache
                .resident
                .iter()
                .filter(|(k, _)| !pinned(k))
                .min_by_key(|(_, c)| c.stamp)
                .map(|(&k, _)| k)
                .expect("unpinned chunk to evict");
            cache.resident.remove(&victim);
            cache.evictions += 1;
        }
        let entry = cache
            .resident
            .entry((region, chunk))
            .or_insert(CachedChunk { words, stamp });
        f(&entry.words)
    }

    fn fetch(&self, region: Region, chunk: u64) -> io::Result<Vec<u32>> {
        let (base, total_words) = match region {
            Region::Offsets => (
                self.header.offsets_base,
                self.header.num_vertices as u64 + 1,
            ),
            Region::Targets => (self.header.targets_base, self.header.num_targets),
        };
        let cw = self.cfg.chunk_words as u64;
        let start = chunk * cw;
        debug_assert!(
            start < total_words,
            "chunk {chunk} beyond {region:?} region"
        );
        let want = (total_words - start).min(cw) as usize;
        let mut buf = vec![0u8; want * 4];
        pread(&self.file, &mut buf, base + start * 4)?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

impl CsrAccess for ChunkedCsr {
    fn num_vertices(&self) -> u32 {
        ChunkedCsr::num_vertices(self)
    }

    fn num_entries(&self) -> u64 {
        ChunkedCsr::num_entries(self)
    }

    fn degree(&self, v: VertexId) -> u32 {
        ChunkedCsr::degree(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.for_each_neighbor_impl(v, f)
    }
}

/// Verify the offsets array in bounded slabs: starts at zero,
/// non-decreasing, last entry equals the target count. Runs once at open
/// so per-chunk fetches need no structural checks.
fn validate_offsets_streamed(file: &File, header: &CsrHeader) -> io::Result<()> {
    const SLAB_WORDS: usize = 1 << 15;
    let total = header.num_vertices as u64 + 1;
    let mut buf = vec![0u8; (SLAB_WORDS as u64).min(total) as usize * 4];
    let mut prev: Option<u32> = None;
    let mut read_words = 0u64;
    while read_words < total {
        let want = (total - read_words).min(SLAB_WORDS as u64) as usize;
        pread(
            file,
            &mut buf[..want * 4],
            header.offsets_base + read_words * 4,
        )?;
        for c in buf[..want * 4].chunks_exact(4) {
            let w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            if read_words == 0 && prev.is_none() && w != 0 {
                return Err(invalid(
                    "inconsistent CSR offsets: first entry nonzero".into(),
                ));
            }
            if let Some(p) = prev {
                if p > w {
                    return Err(invalid(format!(
                        "inconsistent CSR offsets: decreasing near word {read_words}"
                    )));
                }
            }
            prev = Some(w);
        }
        read_words += want as u64;
    }
    if prev.map(|p| p as u64) != Some(header.num_targets) {
        return Err(invalid(format!(
            "inconsistent CSR offsets: last entry does not equal target count {}",
            header.num_targets
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::materialize_csr;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_spill(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tc-compare-chunked-{}-{tag}-{seq}.csr",
            std::process::id()
        ))
    }

    fn sample_csr() -> Csr {
        // 12 vertices with irregular degrees so lists straddle chunks.
        let adj: Vec<Vec<u32>> = (0..12u32)
            .map(|v| (0..12u32).filter(|&w| w != v && (v + w) % 3 != 0).collect())
            .collect();
        Csr::from_adjacency(&adj)
    }

    fn tiny_cache() -> ChunkCacheConfig {
        ChunkCacheConfig {
            chunk_words: 4,
            max_resident: 2,
            pinned_chunks: 1,
        }
    }

    #[test]
    fn spill_and_materialize_roundtrip() {
        let csr = sample_csr();
        let path = temp_spill("roundtrip");
        let chunked = ChunkedCsr::spill_with(&csr, &path, tiny_cache()).unwrap();
        assert_eq!(materialize_csr(&chunked), csr);
        // A 4-word cache over a ~100-word file must have evicted.
        assert!(chunked.cache_stats().evictions > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn accessors_match_in_memory_csr() {
        let csr = sample_csr();
        let path = temp_spill("accessors");
        let chunked = ChunkedCsr::spill_with(&csr, &path, tiny_cache()).unwrap();
        assert_eq!(chunked.num_vertices(), csr.num_vertices());
        assert_eq!(chunked.num_entries(), csr.num_entries());
        for v in 0..csr.num_vertices() {
            assert_eq!(chunked.degree(v), csr.degree(v), "degree({v})");
            assert_eq!(chunked.offset(v), csr.offset(v), "offset({v})");
            assert_eq!(chunked.neighbors(v), csr.neighbors(v), "neighbors({v})");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repeated_access_hits_cache() {
        let csr = sample_csr();
        let path = temp_spill("hits");
        let chunked = ChunkedCsr::spill_with(&csr, &path, ChunkCacheConfig::default()).unwrap();
        chunked.neighbors(3);
        let cold = chunked.cache_stats();
        chunked.neighbors(3);
        let warm = chunked.cache_stats();
        assert_eq!(warm.misses, cold.misses, "second read must not fetch");
        assert!(warm.hits > cold.hits);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pinned_offsets_chunk_survives_eviction_pressure() {
        let csr = sample_csr();
        let path = temp_spill("pinned");
        let chunked = ChunkedCsr::spill_with(&csr, &path, tiny_cache()).unwrap();
        // Touch everything twice; the pinned first offsets chunk must
        // never be refetched after its initial miss.
        for _ in 0..2 {
            for v in 0..csr.num_vertices() {
                chunked.neighbors(v);
            }
        }
        let misses_after_warmup = chunked.cache_stats().misses;
        for v in 0..3u32.min(csr.num_vertices()) {
            chunked.degree(v);
        }
        let stats = chunked.cache_stats();
        assert_eq!(
            stats.misses, misses_after_warmup,
            "pinned offsets prefix was evicted"
        );
        assert!(stats.evictions > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resident_budget_is_respected() {
        let csr = sample_csr();
        let path = temp_spill("budget");
        let cfg = tiny_cache();
        let chunked = ChunkedCsr::spill_with(&csr, &path, cfg).unwrap();
        for v in 0..csr.num_vertices() {
            chunked.neighbors(v);
        }
        // pinned prefix + at most max_resident unpinned.
        assert!(chunked.cache_stats().resident <= cfg.pinned_chunks + cfg.max_resident);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_spill_rejected_at_open() {
        let csr = sample_csr();
        let path = temp_spill("truncated");
        ChunkedCsr::spill(&csr, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = ChunkedCsr::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trailing_bytes_rejected_at_open() {
        let csr = sample_csr();
        let path = temp_spill("trailing");
        ChunkedCsr::spill(&csr, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(ChunkedCsr::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_offsets_rejected_at_open() {
        let csr = sample_csr();
        let path = temp_spill("corrupt");
        ChunkedCsr::spill(&csr, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Second offsets word (byte 24) made huge: offsets decrease after.
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ChunkedCsr::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("inconsistent CSR offsets"),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn orientation_over_chunked_matches_in_memory() {
        let raw = crate::gen::barabasi_albert(300, 3, 0.4, 9);
        let (g, _) = crate::clean::clean_edges(&raw);
        let path = temp_spill("orient");
        let chunked = ChunkedCsr::spill_with(&g.csr().clone(), &path, tiny_cache()).unwrap();
        for o in [
            crate::orient::Orientation::ById,
            crate::orient::Orientation::DegreeAsc,
            crate::orient::Orientation::DegreeDesc,
            crate::orient::Orientation::KCore,
            crate::orient::Orientation::Random(5),
        ] {
            let from_disk = crate::orient::orient_access(&chunked, o);
            let from_mem = crate::orient::orient(&g, o);
            assert_eq!(from_disk.csr(), from_mem.csr(), "{o:?}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stats_over_chunked_match_in_memory() {
        let raw = crate::gen::barabasi_albert(200, 4, 0.3, 3);
        let (g, _) = crate::clean::clean_edges(&raw);
        let path = temp_spill("stats");
        let chunked = ChunkedCsr::spill(g.csr(), &path).unwrap();
        assert_eq!(
            crate::stats::GraphStats::compute_access(&chunked),
            crate::stats::GraphStats::compute(&g)
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_spills_and_opens() {
        let csr = Csr::from_adjacency(&[]);
        let path = temp_spill("empty");
        let chunked = ChunkedCsr::spill(&csr, &path).unwrap();
        assert_eq!(chunked.num_vertices(), 0);
        assert_eq!(chunked.num_entries(), 0);
        assert_eq!(materialize_csr(&chunked), csr);
        std::fs::remove_file(path).ok();
    }
}
