//! Core graph storage types.

/// Vertex identifier. `u32` throughout: the simulated device is a 32-bit
/// word machine and all datasets in the registry are far below 4 B
/// vertices.
pub type VertexId = u32;

/// A raw (possibly dirty) edge list straight out of a parser or
/// generator: may contain self-loops, duplicates, both directions of the
/// same edge, and gaps in the vertex ID space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    pub edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    pub fn new(edges: Vec<(VertexId, VertexId)>) -> Self {
        EdgeList { edges }
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Largest vertex ID + 1, i.e. the size of the raw ID space.
    pub fn id_space(&self) -> u32 {
        self.edges
            .iter()
            .map(|&(u, v)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Compressed sparse row adjacency: `offsets` has `num_vertices + 1`
/// entries and `targets[offsets[v]..offsets[v+1]]` are `v`'s neighbours,
/// sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build a CSR from per-vertex sorted adjacency lists.
    pub fn from_adjacency(adj: &[Vec<VertexId>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in adj {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "adjacency sorted");
            targets.extend_from_slice(list);
            let total: u32 = targets
                .len()
                .try_into()
                .expect("graph exceeds u32 edge-offset space");
            offsets.push(total);
        }
        Csr { offsets, targets }
    }

    /// Build directly from raw parts (used by parsers of CSR files).
    /// Panics if the parts are inconsistent.
    pub fn from_parts(offsets: Vec<u32>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            targets.len(),
            "last offset must equal target count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        Csr { offsets, targets }
    }

    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of stored (directed) adjacency entries.
    pub fn num_entries(&self) -> u64 {
        self.targets.len() as u64
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Start index of `v`'s list in the flat target array.
    #[inline]
    pub fn offset(&self, v: VertexId) -> u32 {
        self.offsets[v as usize]
    }

    /// The flat offsets array (for device upload).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat targets array (for device upload).
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// All (source, target) pairs in CSR order.
    pub fn edge_iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Membership test via binary search (lists are sorted).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

/// Read access to a CSR adjacency structure, whether fully resident in
/// memory ([`Csr`]) or served out-of-core from a spill file through a
/// bounded chunk cache ([`crate::chunked::ChunkedCsr`]). The orientation
/// and preparation pipeline is generic over this trait, so datasets too
/// large to hold in memory stream through the same code path.
pub trait CsrAccess {
    fn num_vertices(&self) -> u32;

    /// Number of stored (directed) adjacency entries.
    fn num_entries(&self) -> u64;

    fn degree(&self, v: VertexId) -> u32;

    /// Visit `v`'s neighbours in ascending order.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));
}

impl CsrAccess for Csr {
    fn num_vertices(&self) -> u32 {
        Csr::num_vertices(self)
    }

    fn num_entries(&self) -> u64 {
        Csr::num_entries(self)
    }

    fn degree(&self, v: VertexId) -> u32 {
        Csr::degree(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &w in self.neighbors(v) {
            f(w);
        }
    }
}

/// Materialize any [`CsrAccess`] into a fully resident [`Csr`] — the
/// escape hatch for consumers that need random slice access (e.g. the
/// k-core decomposition behind [`crate::orient::Orientation::KCore`]).
pub fn materialize_csr<A: CsrAccess + ?Sized>(g: &A) -> Csr {
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n as usize + 1);
    let mut targets = Vec::with_capacity(g.num_entries() as usize);
    offsets.push(0u32);
    for v in 0..n {
        g.for_each_neighbor(v, &mut |w| targets.push(w));
        let total: u32 = targets
            .len()
            .try_into()
            .expect("graph exceeds u32 edge-offset space");
        offsets.push(total);
    }
    Csr::from_parts(offsets, targets)
}

/// A cleaned simple undirected graph: symmetric CSR (every edge stored in
/// both directions), no self-loops, no duplicates, no isolated vertices.
/// Produced by [`crate::clean::clean_edges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirGraph {
    csr: Csr,
}

impl UndirGraph {
    /// Wrap a CSR asserted (in debug builds) to be symmetric and simple.
    pub fn from_csr(csr: Csr) -> Self {
        #[cfg(debug_assertions)]
        {
            for u in 0..csr.num_vertices() {
                for &v in csr.neighbors(u) {
                    debug_assert_ne!(u, v, "self-loop in UndirGraph");
                    debug_assert!(csr.has_edge(v, u), "asymmetric edge ({u},{v})");
                }
            }
        }
        UndirGraph { csr }
    }

    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Number of undirected edges (half the stored entries).
    pub fn num_edges(&self) -> u64 {
        self.csr.num_entries() / 2
    }

    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.csr.num_entries() as f64 / self.num_vertices() as f64
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.csr.degree(v)
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Undirected edges with `u < v`, in lexicographic order.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.csr.edge_iter().filter(|&(u, v)| u < v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_csr() -> Csr {
        // 0-1, 0-2, 1-2 symmetric.
        Csr::from_adjacency(&[vec![1, 2], vec![0, 2], vec![0, 1]])
    }

    #[test]
    fn csr_shape() {
        let c = triangle_csr();
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_entries(), 6);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.neighbors(1), &[0, 2]);
        assert_eq!(c.offset(2), 4);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn csr_edge_iter_and_membership() {
        let c = triangle_csr();
        let edges: Vec<_> = c.edge_iter().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1)));
        assert!(c.has_edge(2, 0));
        assert!(!c.has_edge(0, 0));
    }

    #[test]
    fn csr_from_parts_roundtrip() {
        let c = triangle_csr();
        let c2 = Csr::from_parts(c.offsets().to_vec(), c.targets().to_vec());
        assert_eq!(c, c2);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn csr_from_parts_validates() {
        Csr::from_parts(vec![0, 5], vec![1, 2]);
    }

    #[test]
    fn undirected_graph_counts() {
        let g = UndirGraph::from_csr(triangle_csr());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        let ue: Vec<_> = g.undirected_edges().collect();
        assert_eq!(ue, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn edge_list_id_space() {
        let e = EdgeList::new(vec![(0, 5), (2, 1)]);
        assert_eq!(e.id_space(), 6);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(EdgeList::default().id_space(), 0);
    }
}
