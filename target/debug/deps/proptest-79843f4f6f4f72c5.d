/root/repo/target/debug/deps/proptest-79843f4f6f4f72c5.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-79843f4f6f4f72c5.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-79843f4f6f4f72c5.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
