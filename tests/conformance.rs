//! The cross-algorithm conformance suite: every *registered* algorithm —
//! the list comes from the framework registry, so new algorithms enroll
//! automatically — must agree with the CPU reference on every generator
//! family and satisfy the metamorphic invariants (orientation and
//! vertex-relabeling invariance), all with the simulator's data-race
//! detector and SimSan forced on, and an end-of-run leak check per run.
//!
//! A failure anywhere in here panics with a paste-able generator
//! one-liner (e.g. `let edges = gen::rmat(9, 3000, 0.57, 0.19, 0.19,
//! 0.05, 104);`) identifying the exact failing graph.

use tc_compare::algos::conformance::{
    check_cleaning_idempotence, check_differential, generator_cases,
};
use tc_compare::core::framework::conformance::run_conformance;
use tc_compare::core::{all_algorithms, run_conformance_suite};

#[test]
fn every_registered_algorithm_passes_differential_and_metamorphic_checks() {
    let reports = run_conformance_suite();
    assert_eq!(
        reports.len(),
        all_algorithms().len(),
        "the suite must cover the whole registry"
    );
    for r in &reports {
        assert!(r.stats.runs > 0, "{}: no conformance runs", r.algorithm);
        assert_eq!(
            r.stats.cpu_runs, r.stats.runs,
            "{}: every sim run must have a native host-kernel twin",
            r.algorithm
        );
        assert!(
            r.stats.race_checks > 0,
            "{}: race detector never engaged — the suite is not actually \
             checking for races",
            r.algorithm
        );
        assert!(
            r.stats.sanitizer_checks > 0,
            "{}: SimSan never engaged — the suite is not actually \
             checking memory state",
            r.algorithm
        );
        assert!(
            r.stats.lint_checks > 0,
            "{}: SimLint never engaged — the suite is not actually \
             running the diagnostics engine",
            r.algorithm
        );
    }
}

#[test]
fn cleaning_is_invariant_and_idempotent_on_the_conformance_corpus() {
    for case in generator_cases() {
        check_cleaning_idempotence(&case);
    }
}

#[test]
fn differential_failures_carry_a_reproduction_one_liner() {
    // A deliberately wrong "algorithm": reports one triangle too many.
    struct OffByOne;
    impl tc_compare::algos::TcAlgorithm for OffByOne {
        fn meta(&self) -> tc_compare::algos::AlgoMeta {
            tc_compare::algos::AlgoMeta {
                name: "off-by-one",
                reference: "synthetic",
                year: 2024,
                iterator: tc_compare::algos::IteratorKind::Vertex,
                intersection: tc_compare::algos::Intersection::Merge,
                granularity: tc_compare::algos::Granularity::Coarse,
            }
        }
        fn count(
            &self,
            dev: &tc_compare::sim::Device,
            mem: &mut tc_compare::sim::DeviceMem,
            dg: &tc_compare::algos::DeviceGraph,
        ) -> Result<tc_compare::algos::TcOutput, tc_compare::sim::SimError> {
            let inner = tc_compare::core::GroupTc::default();
            let mut out = tc_compare::algos::TcAlgorithm::count(&inner, dev, mem, dg)?;
            out.triangles += 1;
            Ok(out)
        }
    }

    let case = &generator_cases()[0];
    let err = std::panic::catch_unwind(|| check_differential(&OffByOne, case))
        .expect_err("a wrong count must fail the differential check");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload should be a formatted message");
    assert!(
        msg.contains("reproduce with: let edges = gen::"),
        "failure message lacks a repro one-liner: {msg}"
    );
    assert!(msg.contains(case.repro), "repro call missing: {msg}");
}

#[test]
fn conformance_report_shape_is_stable_for_one_algorithm() {
    let algos = all_algorithms();
    let report = run_conformance(algos[0].as_ref());
    assert_eq!(report.algorithm, algos[0].name());
    // 7 differential cases + 4 metamorphic cases x 4 extra runs each.
    assert_eq!(report.stats.runs, 7 + 4 * 4);
    // Every sim run is mirrored by the algorithm's native host kernel.
    assert_eq!(report.stats.cpu_runs, 7 + 4 * 4);
}
