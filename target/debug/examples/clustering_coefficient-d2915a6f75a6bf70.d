/root/repo/target/debug/examples/clustering_coefficient-d2915a6f75a6bf70.d: examples/clustering_coefficient.rs Cargo.toml

/root/repo/target/debug/examples/libclustering_coefficient-d2915a6f75a6bf70.rmeta: examples/clustering_coefficient.rs Cargo.toml

examples/clustering_coefficient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
