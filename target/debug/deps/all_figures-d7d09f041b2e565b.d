/root/repo/target/debug/deps/all_figures-d7d09f041b2e565b.d: crates/tc-bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-d7d09f041b2e565b.rmeta: crates/tc-bench/src/bin/all_figures.rs Cargo.toml

crates/tc-bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
