/root/repo/target/debug/deps/rayon-e71501e3f274757a.d: crates/shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-e71501e3f274757a.rmeta: crates/shims/rayon/src/lib.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
