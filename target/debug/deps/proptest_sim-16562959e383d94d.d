/root/repo/target/debug/deps/proptest_sim-16562959e383d94d.d: crates/gpu-sim/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-16562959e383d94d.rmeta: crates/gpu-sim/tests/proptest_sim.rs Cargo.toml

crates/gpu-sim/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
