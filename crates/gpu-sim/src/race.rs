//! Phase-based data-race detection.
//!
//! The simulator runs the lanes of a block *sequentially* within each
//! barrier-delimited phase, so kernels that would be nondeterministic on
//! real SIMT hardware (two lanes touching the same word between two
//! `__syncthreads()`, at least one of them writing) still produce one
//! deterministic answer here — silently masking a real CUDA bug. This
//! module records every shared-memory access (and every *plain*, i.e.
//! non-atomic, global access) a block performs within the current phase
//! and flags conflicting accesses by different lanes, regardless of the
//! order the simulator happened to execute them in:
//!
//! * **write/write** — two lanes plain-store different values to the same
//!   word in one phase (last-writer-wins would be schedule-dependent on
//!   hardware);
//! * **read/write** — one lane plain-stores a word another lane reads in
//!   the same phase (the reader could observe either value). Detection is
//!   symmetric: a read executed *before* the conflicting write is still
//!   reported, because hardware could have ordered the write first.
//!
//! Two exemptions keep common, genuinely benign GPU idioms quiet:
//!
//! * **Atomics synchronize with each other.** Any number of lanes may RMW
//!   the same word atomically; mixing an atomic with a plain access from
//!   another lane is still a race.
//! * **Silent stores are benign.** A store whose value equals the word's
//!   current content (e.g. many lanes raising the same overflow flag to
//!   `1`) cannot change what any racing reader observes and is ignored,
//!   matching the "multiple same-value writers" idiom the kernels in this
//!   workspace were written against.
//!
//! Scope: conflicts are detected *within one block*. Cross-block global
//! races cannot be ordered by `__syncthreads()` at all and are outside
//! the phase model (blocks execute on independent rayon workers); the
//! kernels under test only communicate across blocks through atomics,
//! which are exempt by design.
//!
//! Detection is off by default (a launch pays ~zero cost: one branch per
//! access) and is enabled per launch via
//! [`KernelConfig::with_race_detection`](crate::KernelConfig::with_race_detection)
//! or for every launch on a device via
//! [`Device::with_race_detection`](crate::Device::with_race_detection).
//! A detected race poisons the block like a memory fault and surfaces as
//! [`SimError::DataRace`].

use std::collections::HashMap;
use std::fmt;

use crate::lint::SourceLoc;
use crate::SimError;

/// Classification of a detected conflict: which address space, and
/// whether the conflicting pair was write/write or read/write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two lanes plain-stored different values to one shared word.
    SharedWriteWrite,
    /// One lane plain-stored a shared word another lane read (or
    /// atomically updated) in the same phase.
    SharedReadWrite,
    /// Two lanes of one block plain-stored different values to one
    /// global word without an atomic.
    GlobalWriteWrite,
    /// One lane of a block plain-stored a global word another lane of
    /// the same block read in the same phase.
    GlobalReadWrite,
}

impl RaceKind {
    /// Whether the conflicting address is a shared-memory word index
    /// (true) or a global byte address (false).
    pub fn is_shared(self) -> bool {
        matches!(self, RaceKind::SharedWriteWrite | RaceKind::SharedReadWrite)
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::SharedWriteWrite => "shared-memory write/write",
            RaceKind::SharedReadWrite => "shared-memory read/write",
            RaceKind::GlobalWriteWrite => "global-memory write/write",
            RaceKind::GlobalReadWrite => "global-memory read/write",
        };
        f.write_str(s)
    }
}

/// One lane access, as seen by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    Read,
    /// A plain store; `changes_value` is false for silent stores (the
    /// stored value equals the word's current content), which are benign.
    Write {
        changes_value: bool,
    },
    /// An atomic RMW: synchronizes with other atomics, conflicts with
    /// plain accesses from other lanes.
    Atomic,
}

/// Sentinel: no lane recorded.
const NO_LANE: u32 = u32::MAX;

/// Per-word access record for the current phase. `epoch` stamps which
/// phase the record belongs to, so per-phase reset is O(1) instead of
/// O(shared words).
#[derive(Debug, Clone, Copy)]
struct SlotState {
    epoch: u64,
    /// Up to two distinct lanes that plain-read the word this phase
    /// (two suffice: any write conflicts with a reader other than the
    /// writing lane, and with two distinct readers recorded one of them
    /// always qualifies).
    readers: [u32; 2],
    /// The lane that exclusively plain-stored the word this phase.
    writer: u32,
    /// The first lane that atomically updated the word this phase.
    atomic: u32,
}

impl SlotState {
    const FRESH: SlotState = SlotState {
        epoch: 0,
        readers: [NO_LANE; 2],
        writer: NO_LANE,
        atomic: NO_LANE,
    };

    fn reset(&mut self, epoch: u64) {
        *self = SlotState::FRESH;
        self.epoch = epoch;
    }

    /// Record `access` by `lane` and return the conflicting lane plus
    /// whether the conflict is read/write (`true`) or write/write
    /// (`false`), if any.
    fn check(&mut self, lane: u32, access: Access) -> Option<(u32, bool)> {
        match access {
            Access::Read => {
                if self.writer != NO_LANE && self.writer != lane {
                    return Some((self.writer, true));
                }
                if self.readers[0] == NO_LANE {
                    self.readers[0] = lane;
                } else if self.readers[0] != lane && self.readers[1] == NO_LANE {
                    self.readers[1] = lane;
                }
                None
            }
            Access::Write { changes_value } => {
                if !changes_value {
                    // Silent store: cannot be observed by any racing
                    // reader or writer.
                    return None;
                }
                if self.writer != NO_LANE && self.writer != lane {
                    return Some((self.writer, false));
                }
                if self.atomic != NO_LANE && self.atomic != lane {
                    return Some((self.atomic, false));
                }
                if let Some(&r) = self.readers.iter().find(|&&r| r != NO_LANE && r != lane) {
                    return Some((r, true));
                }
                self.writer = lane;
                None
            }
            Access::Atomic => {
                if self.writer != NO_LANE && self.writer != lane {
                    return Some((self.writer, false));
                }
                if let Some(&r) = self.readers.iter().find(|&&r| r != NO_LANE && r != lane) {
                    return Some((r, true));
                }
                if self.atomic == NO_LANE {
                    self.atomic = lane;
                }
                None
            }
        }
    }
}

/// The per-block race detector: shared-word and global-word access
/// tables for the current barrier phase, plus running statistics.
#[derive(Debug)]
pub(crate) struct RaceTracker {
    /// Current phase number (1-based; 0 marks untouched slots).
    phase: u64,
    /// Dense table over the block's shared words, epoch-stamped.
    shared: Vec<SlotState>,
    /// Sparse table over the global byte addresses the block touched
    /// with plain accesses this phase.
    global: HashMap<u64, SlotState>,
    /// Conflict checks performed (one per tracked access).
    pub checks: u64,
    /// Races found (the block poisons on the first, so 0 or 1).
    pub races: u64,
}

impl RaceTracker {
    pub fn new(shared_words: usize) -> Self {
        RaceTracker {
            phase: 1,
            shared: vec![SlotState::FRESH; shared_words],
            global: HashMap::new(),
            checks: 0,
            races: 0,
        }
    }

    /// Advance past a barrier: all access records of the finished phase
    /// become irrelevant.
    pub fn end_phase(&mut self) {
        self.phase += 1;
        self.global.clear();
    }

    /// Check one shared-memory access. Returns the error to poison the
    /// block with on conflict.
    pub fn check_shared(&mut self, lane: u32, idx: usize, access: Access) -> Option<SimError> {
        self.checks += 1;
        let phase = self.phase;
        let slot = &mut self.shared[idx];
        if slot.epoch != phase {
            slot.reset(phase);
        }
        let (other, read_write) = slot.check(lane, access)?;
        self.races += 1;
        let kind = if read_write {
            RaceKind::SharedReadWrite
        } else {
            RaceKind::SharedWriteWrite
        };
        Some(SimError::DataRace {
            addr: idx as u64,
            kind,
            lanes: (other, lane),
            pc_hint: SourceLoc::Shared { phase, idx }.to_string(),
        })
    }

    /// Check one plain global-memory access (`addr` is the flat byte
    /// address; `buffer`/`idx` only feed the diagnostic).
    pub fn check_global(
        &mut self,
        lane: u32,
        addr: u64,
        buffer: &str,
        idx: usize,
        access: Access,
    ) -> Option<SimError> {
        self.checks += 1;
        let phase = self.phase;
        let slot = self.global.entry(addr).or_insert(SlotState::FRESH);
        if slot.epoch != phase {
            slot.reset(phase);
        }
        let (other, read_write) = slot.check(lane, access)?;
        self.races += 1;
        let kind = if read_write {
            RaceKind::GlobalReadWrite
        } else {
            RaceKind::GlobalWriteWrite
        };
        Some(SimError::DataRace {
            addr,
            kind,
            lanes: (other, lane),
            pc_hint: SourceLoc::Global { phase, buffer, idx }.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Access = Access::Write {
        changes_value: true,
    };
    const SILENT: Access = Access::Write {
        changes_value: false,
    };

    #[test]
    fn same_lane_never_conflicts() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(3, 0, W).is_none());
        assert!(t.check_shared(3, 0, Access::Read).is_none());
        assert!(t.check_shared(3, 0, W).is_none());
        assert!(t.check_shared(3, 0, Access::Atomic).is_none());
        assert_eq!(t.races, 0);
        assert_eq!(t.checks, 4);
    }

    #[test]
    fn foreign_read_after_write_is_a_race() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(0, 2, W).is_none());
        let err = t.check_shared(1, 2, Access::Read).unwrap();
        match err {
            SimError::DataRace {
                addr, kind, lanes, ..
            } => {
                assert_eq!(addr, 2);
                assert_eq!(kind, RaceKind::SharedReadWrite);
                assert_eq!(lanes, (0, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn foreign_write_after_read_is_a_race_too() {
        // The symmetric case the eager writer-table approach missed: the
        // read executes first, the conflicting write later.
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(5, 1, Access::Read).is_none());
        let err = t.check_shared(9, 1, W).unwrap();
        assert!(matches!(
            err,
            SimError::DataRace {
                kind: RaceKind::SharedReadWrite,
                lanes: (5, 9),
                ..
            }
        ));
    }

    #[test]
    fn conflicting_writes_race_but_silent_stores_do_not() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(0, 0, W).is_none());
        assert!(t.check_shared(1, 0, SILENT).is_none(), "same-value store");
        assert!(matches!(
            t.check_shared(2, 0, W),
            Some(SimError::DataRace {
                kind: RaceKind::SharedWriteWrite,
                ..
            })
        ));
    }

    #[test]
    fn atomics_synchronize_with_each_other_but_not_with_plain_ops() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(0, 3, Access::Atomic).is_none());
        assert!(t.check_shared(1, 3, Access::Atomic).is_none());
        // Plain write racing the atomics.
        assert!(matches!(
            t.check_shared(2, 3, W),
            Some(SimError::DataRace {
                kind: RaceKind::SharedWriteWrite,
                ..
            })
        ));
    }

    #[test]
    fn read_of_atomically_updated_word_is_a_race() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(7, 0, Access::Atomic).is_none());
        // Another lane's atomic after a foreign plain read conflicts.
        let mut t2 = RaceTracker::new(4);
        assert!(t2.check_shared(0, 0, Access::Read).is_none());
        assert!(matches!(
            t2.check_shared(1, 0, Access::Atomic),
            Some(SimError::DataRace {
                kind: RaceKind::SharedReadWrite,
                ..
            })
        ));
        drop(t);
    }

    #[test]
    fn barrier_clears_conflicts() {
        let mut t = RaceTracker::new(4);
        assert!(t.check_shared(0, 2, W).is_none());
        t.end_phase();
        // Lane 1 may read what lane 0 wrote before the barrier...
        assert!(t.check_shared(1, 2, Access::Read).is_none());
        // ...but a conflicting write in the *new* phase races with that
        // new read, proving the fresh phase tracks its own accesses.
        assert!(t.check_shared(2, 2, W).is_some());
        assert_eq!(t.races, 1);
    }

    #[test]
    fn global_addresses_tracked_sparsely() {
        let mut t = RaceTracker::new(0);
        assert!(t.check_global(0, 4096, "buf", 0, W).is_none());
        let err = t.check_global(1, 4096, "buf", 0, W).unwrap();
        match err {
            SimError::DataRace {
                addr,
                kind,
                lanes,
                pc_hint,
            } => {
                assert_eq!(addr, 4096);
                assert_eq!(kind, RaceKind::GlobalWriteWrite);
                assert_eq!(lanes, (0, 1));
                assert!(pc_hint.contains("`buf`[0]"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
