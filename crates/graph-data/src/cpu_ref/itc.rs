//! Intersection-based CPU counters over the oriented DAG. `forward_merge`
//! is the gold standard every GPU kernel is verified against.

use rayon::prelude::*;

use super::intersect::{intersect_binsearch, intersect_bitmap, intersect_hash, intersect_merge};
use crate::orient::DagGraph;

/// The CPU Forward algorithm (Schank & Wagner; the basis of Polak):
/// for every DAG edge (u,v), merge-intersect the out-lists of u and v.
pub fn forward_merge(g: &DagGraph) -> u64 {
    let csr = g.csr();
    csr.edge_iter()
        .map(|(u, v)| intersect_merge(csr.neighbors(u), csr.neighbors(v)))
        .sum()
}

/// Rayon-parallel Forward (one task per vertex).
pub fn forward_merge_parallel(g: &DagGraph) -> u64 {
    let csr = g.csr();
    (0..csr.num_vertices())
        .into_par_iter()
        .map(|u| {
            csr.neighbors(u)
                .iter()
                .map(|&v| intersect_merge(csr.neighbors(u), csr.neighbors(v)))
                .sum::<u64>()
        })
        .sum()
}

/// Forward with the binary-search primitive.
pub fn binsearch_count(g: &DagGraph) -> u64 {
    let csr = g.csr();
    csr.edge_iter()
        .map(|(u, v)| intersect_binsearch(csr.neighbors(u), csr.neighbors(v)))
        .sum()
}

/// Forward with the hash primitive (32 buckets, as in warp-mode H-INDEX).
pub fn hash_count(g: &DagGraph) -> u64 {
    let csr = g.csr();
    csr.edge_iter()
        .map(|(u, v)| intersect_hash(csr.neighbors(u), csr.neighbors(v), 32))
        .sum()
}

/// Forward with the bitmap primitive.
pub fn bitmap_count(g: &DagGraph) -> u64 {
    let csr = g.csr();
    let n = csr.num_vertices();
    csr.edge_iter()
        .map(|(u, v)| intersect_bitmap(csr.neighbors(u), csr.neighbors(v), n))
        .sum()
}

/// Per-DAG-edge triangle supports, in CSR edge order. Used by the k-truss
/// example and by tests that cross-check per-edge contributions.
pub fn per_edge_supports(g: &DagGraph) -> Vec<u64> {
    let csr = g.csr();
    csr.edge_iter()
        .map(|(u, v)| intersect_merge(csr.neighbors(u), csr.neighbors(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::orient::{orient, Orientation};
    use crate::types::EdgeList;

    /// The paper's Figure 1(a) example graph: 6 vertices, edges
    /// 0-1, 0-5, 1-2, 1-3, 1-4, 2-3, 2-4, 2-5, 3-4, 4-5. It contains the
    /// triangles {1,2,3}, {1,2,4}, {1,3,4}, {2,3,4}, {0? no}, {2,4,5}.
    fn figure1_graph() -> DagGraph {
        let raw = EdgeList::new(vec![
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (4, 5),
        ]);
        let (g, _) = clean_edges(&raw);
        orient(&g, Orientation::ById)
    }

    #[test]
    fn figure1_has_five_triangles() {
        assert_eq!(forward_merge(&figure1_graph()), 5);
    }

    #[test]
    fn all_itc_variants_agree() {
        let g = figure1_graph();
        let expected = forward_merge(&g);
        assert_eq!(forward_merge_parallel(&g), expected);
        assert_eq!(binsearch_count(&g), expected);
        assert_eq!(hash_count(&g), expected);
        assert_eq!(bitmap_count(&g), expected);
    }

    #[test]
    fn per_edge_supports_sum_to_total() {
        let g = figure1_graph();
        let supports = per_edge_supports(&g);
        assert_eq!(supports.len() as u64, g.num_edges());
        assert_eq!(supports.iter().sum::<u64>(), forward_merge(&g));
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // A path 0-1-2-3.
        let raw = EdgeList::new(vec![(0, 1), (1, 2), (2, 3)]);
        let (g, _) = clean_edges(&raw);
        let d = orient(&g, Orientation::DegreeAsc);
        assert_eq!(forward_merge(&d), 0);
        assert_eq!(bitmap_count(&d), 0);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let (g, _) = clean_edges(&EdgeList::new(edges));
        let d = orient(&g, Orientation::DegreeAsc);
        // C(5,3) = 10 triangles.
        assert_eq!(forward_merge(&d), 10);
        assert_eq!(hash_count(&d), 10);
    }
}
