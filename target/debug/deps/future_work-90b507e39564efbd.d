/root/repo/target/debug/deps/future_work-90b507e39564efbd.d: crates/tc-bench/src/bin/future_work.rs

/root/repo/target/debug/deps/future_work-90b507e39564efbd: crates/tc-bench/src/bin/future_work.rs

crates/tc-bench/src/bin/future_work.rs:
