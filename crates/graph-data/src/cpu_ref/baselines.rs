//! Non-intersection baselines from the paper's Section II background:
//! the matrix-multiplication approach (Figure 1c) and the subgraph
//! matching approach (Figure 1d), plus the naive node-iterator used as an
//! independent oracle in tests. All operate on the cleaned undirected
//! graph.

use crate::types::UndirGraph;

/// Naive node-iterator: for every vertex, test every neighbour pair for
/// adjacency. O(sum of degree^2) — the independent oracle for small
/// graphs.
pub fn node_iterator(g: &UndirGraph) -> u64 {
    let csr = g.csr();
    let mut count = 0u64;
    for v in 0..g.num_vertices() {
        let nbrs = csr.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            if a <= v {
                continue; // enforce v < a < b to count each triangle once
            }
            for &b in &nbrs[i + 1..] {
                if csr.has_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// The matrix-multiplication approach of Figure 1(c): with `A` the
/// adjacency matrix and `L`/`U` its lower/upper triangular parts, compute
/// `B = L . U` masked by `A` (only entries where `A_ij = 1` matter for the
/// Hadamard product) and return `sum(A o B) / 2`.
///
/// `B_ij` counts wedges `i - k - j` with `k < i` and `k < j`; each
/// triangle {a<b<c} is seen from the ordered pairs (b,c) and (c,b), hence
/// the division by two.
pub fn matmul_count(g: &UndirGraph) -> u64 {
    let csr = g.csr();
    let mut total = 0u64;
    for i in 0..g.num_vertices() {
        // L(i,:) = neighbours of i smaller than i.
        let below_i: Vec<u32> = csr
            .neighbors(i)
            .iter()
            .copied()
            .filter(|&k| k < i)
            .collect();
        for &j in csr.neighbors(i) {
            // U(:,j) has 1 at row k iff k < j and (k,j) is an edge.
            total += below_i
                .iter()
                .filter(|&&k| k < j && csr.has_edge(k, j))
                .count() as u64;
        }
    }
    total / 2
}

/// The subgraph-matching approach of Figure 1(d): match the single-edge
/// query, join to wedges, join to triangles. Every triangle is matched
/// once per automorphism of the ordered query (6 times), hence the
/// division.
pub fn subgraph_match(g: &UndirGraph) -> u64 {
    let csr = g.csr();
    let mut ordered_matches = 0u64;
    // subgraph1: all ordered edges (u, v).
    for u in 0..g.num_vertices() {
        for &v in csr.neighbors(u) {
            // subgraph2 (wedge u - v - w), then close the triangle w - u.
            for &w in csr.neighbors(v) {
                if w != u && csr.has_edge(w, u) {
                    ordered_matches += 1;
                }
            }
        }
    }
    ordered_matches / 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::types::EdgeList;

    fn figure1() -> UndirGraph {
        clean_edges(&EdgeList::new(vec![
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (4, 5),
        ]))
        .0
    }

    #[test]
    fn three_approaches_agree_on_figure1() {
        let g = figure1();
        let ni = node_iterator(&g);
        assert_eq!(ni, 5);
        assert_eq!(matmul_count(&g), ni);
        assert_eq!(subgraph_match(&g), ni);
    }

    #[test]
    fn empty_and_single_edge() {
        let (empty, _) = clean_edges(&EdgeList::default());
        assert_eq!(node_iterator(&empty), 0);
        assert_eq!(matmul_count(&empty), 0);
        assert_eq!(subgraph_match(&empty), 0);

        let (one, _) = clean_edges(&EdgeList::new(vec![(0, 1)]));
        assert_eq!(node_iterator(&one), 0);
        assert_eq!(matmul_count(&one), 0);
        assert_eq!(subgraph_match(&one), 0);
    }

    #[test]
    fn complete_graph_k6() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let (g, _) = clean_edges(&EdgeList::new(edges));
        // C(6,3) = 20.
        assert_eq!(node_iterator(&g), 20);
        assert_eq!(matmul_count(&g), 20);
        assert_eq!(subgraph_match(&g), 20);
    }
}
