/root/repo/target/debug/deps/fig13b-fddea72c3a5173f5.d: crates/tc-bench/src/bin/fig13b.rs Cargo.toml

/root/repo/target/debug/deps/libfig13b-fddea72c3a5173f5.rmeta: crates/tc-bench/src/bin/fig13b.rs Cargo.toml

crates/tc-bench/src/bin/fig13b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
