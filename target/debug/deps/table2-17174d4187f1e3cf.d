/root/repo/target/debug/deps/table2-17174d4187f1e3cf.d: crates/tc-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-17174d4187f1e3cf: crates/tc-bench/src/bin/table2.rs

crates/tc-bench/src/bin/table2.rs:
