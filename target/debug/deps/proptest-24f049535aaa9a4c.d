/root/repo/target/debug/deps/proptest-24f049535aaa9a4c.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-24f049535aaa9a4c.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
