/root/repo/target/debug/deps/proptest_invariants-f93b9566f7085253.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-f93b9566f7085253: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
