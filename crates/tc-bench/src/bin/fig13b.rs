//! Regenerates Figure 13(b): global-load transactions per request of
//! every implementation on every dataset (lower = better coalescing).

use tc_core::framework::report::{extract, MatrixView};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let records = tc_bench::full_sweep(&datasets);
    let view = MatrixView::new(&records);
    println!(
        "{}",
        view.render_figure("FIGURE 13(b): gld_transactions_per_request", extract::tpr)
    );
}
