//! Execution backends: the same registry, prepared datasets and record
//! surface, running either on the cycle-modelled simulator or natively
//! on the host.
//!
//! A [`Backend`] turns one (algorithm, dataset) cell into a
//! [`RunRecord`]. [`SimBackend`] wraps the existing
//! [`run_on_dataset`] path; [`CpuBackend`] executes the algorithm's
//! rayon host kernel ([`TcAlgorithm::count_cpu`]) with the same
//! preferred-orientation pipeline and the same fault isolation — a
//! panicking CPU kernel becomes [`RunOutcome::Failed`] in its own cell,
//! exactly like a device memory fault, instead of tearing down the
//! sweep.
//!
//! What the CPU path deliberately does *not* model: cycles, profiling
//! counters, occupancy — its records carry `kernel_cycles: 0` and
//! default counters. It exists to serve exact counts at wall-clock
//! speed (ROADMAP item 4) and to act as a differential twin for the
//! simulator; only [`RunRecord::wall`] is meaningful for its timing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use gpu_sim::{Device, SimError};
use tc_algos::api::TcAlgorithm;

use rayon::prelude::*;

use crate::framework::runner::{run_on_dataset, PreparedDataset, RunOutcome, RunRecord};

/// An execution substrate for evaluation cells.
pub trait Backend: Sync {
    /// Short tag recorded in [`RunRecord::backend`] and the CSV
    /// `backend` column (`"sim"`, `"cpu"`).
    fn tag(&self) -> &'static str;

    /// Run one algorithm on one prepared dataset, fault-isolated.
    fn run(&self, algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord;
}

/// The cycle-modelled SIMT simulator backend (the default everywhere).
pub struct SimBackend<'d> {
    pub dev: &'d Device,
}

impl Backend for SimBackend<'_> {
    fn tag(&self) -> &'static str {
        "sim"
    }

    fn run(&self, algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord {
        run_on_dataset(self.dev, algo, data)
    }
}

/// The native host backend: rayon kernels, no device model.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuBackend;

impl Backend for CpuBackend {
    fn tag(&self) -> &'static str {
        "cpu"
    }

    fn run(&self, algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord {
        run_on_dataset_cpu(algo, data)
    }
}

/// Run one algorithm's host kernel on one prepared dataset (the
/// algorithm's preferred orientation) and verify the count.
///
/// Fault-isolation parity with the sim path: the kernel runs under
/// [`catch_unwind`], so an index-out-of-bounds or explicit panic in one
/// cell surfaces as [`RunOutcome::Failed`] with the panic message, and
/// the caller's sweep continues.
pub fn run_on_dataset_cpu(algo: &dyn TcAlgorithm, data: &PreparedDataset) -> RunRecord {
    let started = Instant::now();
    let dag = data.dag(algo.preferred_orientation());
    let outcome = match catch_unwind(AssertUnwindSafe(|| algo.count_cpu(&dag))) {
        Ok(triangles) => RunOutcome::Ok {
            triangles,
            // The CPU path models nothing: no cycles, no counters.
            kernel_cycles: 0,
            counters: Default::default(),
            verified: triangles == data.ground_truth,
        },
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                s.to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "unknown panic payload".to_string()
            };
            RunOutcome::Failed(SimError::KernelFault(format!("cpu kernel panicked: {msg}")))
        }
    };
    RunRecord {
        algorithm: algo.name().to_string(),
        dataset: data.spec.name,
        backend: "cpu",
        outcome,
        partition: None,
        wall: started.elapsed(),
    }
}

/// The multi-backend evaluation sweep, serial: dataset-major, then
/// backend, then algorithm — so one prepared dataset serves every
/// backend before it is dropped.
pub fn run_matrix_backends(
    backends: &[&dyn Backend],
    algos: &[Box<dyn TcAlgorithm>],
    datasets: &[graph_data::DatasetSpec],
) -> Vec<RunRecord> {
    let mut records = Vec::with_capacity(backends.len() * algos.len() * datasets.len());
    for spec in datasets {
        let data = PreparedDataset::prepare(spec);
        for backend in backends {
            for algo in algos {
                records.push(backend.run(algo.as_ref(), &data));
            }
        }
    }
    records
}

/// The multi-backend sweep, parallel and fault-isolated: every
/// (dataset × backend × algorithm) cell fans over the thread pool;
/// records come back in exactly [`run_matrix_backends`]' order.
pub fn run_matrix_backends_parallel(
    backends: &[&dyn Backend],
    algos: &[Box<dyn TcAlgorithm>],
    datasets: &[graph_data::DatasetSpec],
) -> Vec<RunRecord> {
    let prepared: Vec<PreparedDataset> =
        datasets.par_iter().map(PreparedDataset::prepare).collect();
    let cells: Vec<(usize, usize, usize)> = (0..datasets.len())
        .flat_map(|d| {
            (0..backends.len()).flat_map(move |b| (0..algos.len()).map(move |a| (d, b, a)))
        })
        .collect();
    cells
        .into_par_iter()
        .map(|(d, b, a)| backends[b].run(algos[a].as_ref(), &prepared[d]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::registry::all_algorithms;
    use gpu_sim::DeviceMem;
    use graph_data::datasets::{DatasetSpec, GenSpec, SizeClass};
    use tc_algos::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcOutput};
    use tc_algos::device_graph::DeviceGraph;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny-rmat",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Rmat {
                scale: 10,
                raw_edges: 8000,
            },
            seed: 7,
        }
    }

    #[test]
    fn cpu_backend_verifies_every_registered_algorithm() {
        let data = PreparedDataset::prepare(&tiny_spec());
        assert!(data.ground_truth > 0);
        for algo in all_algorithms() {
            let rec = CpuBackend.run(algo.as_ref(), &data);
            assert_eq!(rec.backend, "cpu");
            assert!(
                rec.is_verified(),
                "{}: cpu outcome {:?}",
                rec.algorithm,
                rec.outcome
            );
            assert_eq!(rec.kernel_cycles(), Some(0), "cpu cells model no cycles");
        }
    }

    #[test]
    fn sim_backend_is_the_existing_runner_path() {
        let dev = Device::v100();
        let data = PreparedDataset::prepare(&tiny_spec());
        let algos = all_algorithms();
        let via_backend = SimBackend { dev: &dev }.run(algos[0].as_ref(), &data);
        let direct = run_on_dataset(&dev, algos[0].as_ref(), &data);
        assert_eq!(via_backend.backend, "sim");
        assert_eq!(via_backend.algorithm, direct.algorithm);
        assert_eq!(via_backend.kernel_cycles(), direct.kernel_cycles());
    }

    /// A CPU kernel that panics: the probe for fault-isolation parity.
    struct PanickyAlgo;

    impl TcAlgorithm for PanickyAlgo {
        fn meta(&self) -> AlgoMeta {
            AlgoMeta {
                name: "panic-probe",
                reference: "synthetic cpu fault probe",
                year: 2024,
                iterator: IteratorKind::Edge,
                intersection: Intersection::Merge,
                granularity: Granularity::Coarse,
            }
        }

        fn count(
            &self,
            dev: &Device,
            mem: &mut DeviceMem,
            _g: &DeviceGraph,
        ) -> Result<TcOutput, SimError> {
            let stats = dev.launch(mem, gpu_sim::KernelConfig::new(1, 32), |blk| {
                blk.phase(|lane| lane.compute(1));
            })?;
            Ok(TcOutput {
                triangles: 0,
                stats,
            })
        }

        fn count_cpu(&self, _dag: &graph_data::DagGraph) -> u64 {
            panic!("deliberate host-kernel bug");
        }
    }

    #[test]
    fn panicking_cpu_kernel_is_isolated_as_failed() {
        let mut algos = all_algorithms();
        algos.push(Box::new(PanickyAlgo));
        let backends: [&dyn Backend; 1] = [&CpuBackend];
        let specs = [tiny_spec()];
        // The panic must not tear down the parallel sweep.
        let records = run_matrix_backends_parallel(&backends, &algos, &specs);
        assert_eq!(records.len(), algos.len());
        let failed = records.last().unwrap();
        assert_eq!(failed.algorithm, "panic-probe");
        match &failed.outcome {
            RunOutcome::Failed(SimError::KernelFault(msg)) => {
                assert!(
                    msg.contains("cpu kernel panicked: deliberate host-kernel bug"),
                    "msg: {msg}"
                );
            }
            other => panic!("expected Failed(KernelFault), got {other:?}"),
        }
        assert!(
            records[..records.len() - 1].iter().all(|r| r.is_verified()),
            "healthy cpu cells still verify"
        );
    }

    #[test]
    fn multi_backend_sweep_order_and_parity() {
        let dev = Device::v100();
        let backends: [&dyn Backend; 2] = [&SimBackend { dev: &dev }, &CpuBackend];
        let algos = all_algorithms();
        let specs = [tiny_spec()];
        let serial = run_matrix_backends(&backends, &algos, &specs);
        let parallel = run_matrix_backends_parallel(&backends, &algos, &specs);
        assert_eq!(serial.len(), 2 * algos.len());
        assert_eq!(serial.len(), parallel.len());
        // Backend-major within a dataset: sim block, then cpu block.
        for (i, r) in serial.iter().enumerate() {
            let expect = if i < algos.len() { "sim" } else { "cpu" };
            assert_eq!(r.backend, expect, "record {i}");
            assert_eq!(r.algorithm, algos[i % algos.len()].name());
            assert!(r.is_verified(), "{} on {}", r.algorithm, r.backend);
        }
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.algorithm, p.algorithm);
            assert_eq!(s.backend, p.backend);
            assert_eq!(s.is_verified(), p.is_verified());
        }
        // Sim and cpu agree on every triangle count.
        for (s, c) in serial[..algos.len()].iter().zip(&serial[algos.len()..]) {
            match (&s.outcome, &c.outcome) {
                (RunOutcome::Ok { triangles: st, .. }, RunOutcome::Ok { triangles: ct, .. }) => {
                    assert_eq!(st, ct, "{}", s.algorithm)
                }
                (a, b) => panic!("outcome mismatch for {}: {a:?} vs {b:?}", s.algorithm),
            }
        }
    }
}
