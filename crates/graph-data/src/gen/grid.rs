//! Road-network generator: a 2-D lattice with randomly dropped street
//! segments and occasional diagonal shortcuts. Average degree lands near
//! RoadNet-CA's 2.9, the degree distribution is nearly uniform, and
//! triangles are scarce — exactly the regime in which the paper's
//! fine-grained algorithms waste their parallelism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::EdgeList;

/// Generate a `rows x cols` grid. Each lattice edge survives with
/// probability `keep`, and each cell gains one diagonal with probability
/// `diag` (diagonals create the few triangles road networks do have).
pub fn road_grid(rows: u32, cols: u32, keep: f64, diag: f64, seed: u64) -> EdgeList {
    assert!(rows >= 2 && cols >= 2, "grid must be at least 2x2");
    assert!((0.0..=1.0).contains(&keep) && (0.0..=1.0).contains(&diag));
    let mut rng = StdRng::seed_from_u64(seed);
    let at = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(keep) {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows && rng.gen_bool(keep) {
                edges.push((at(r, c), at(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen_bool(diag) {
                edges.push((at(r, c), at(r + 1, c + 1)));
            }
        }
    }
    EdgeList::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::cpu_ref::node_iterator;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(
            road_grid(20, 20, 0.8, 0.1, 1),
            road_grid(20, 20, 0.8, 0.1, 1)
        );
    }

    #[test]
    fn full_grid_degrees() {
        let e = road_grid(10, 10, 1.0, 0.0, 0);
        let (g, _) = clean_edges(&e);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 100);
        assert_eq!(s.edges, 2 * 10 * 9);
        assert_eq!(s.max_degree, 4);
        assert_eq!(node_iterator(&g), 0);
    }

    #[test]
    fn diagonals_make_triangles() {
        let e = road_grid(15, 15, 1.0, 1.0, 2);
        let (g, _) = clean_edges(&e);
        assert!(node_iterator(&g) > 0);
    }

    #[test]
    fn road_like_average_degree() {
        let e = road_grid(60, 60, 0.75, 0.05, 3);
        let (g, _) = clean_edges(&e);
        let s = GraphStats::compute(&g);
        assert!(
            s.avg_degree > 2.0 && s.avg_degree < 3.5,
            "avg degree {} not road-like",
            s.avg_degree
        );
        assert!(s.skew() < 4.0);
    }
}
