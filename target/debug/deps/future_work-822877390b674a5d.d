/root/repo/target/debug/deps/future_work-822877390b674a5d.d: crates/tc-bench/src/bin/future_work.rs

/root/repo/target/debug/deps/libfuture_work-822877390b674a5d.rmeta: crates/tc-bench/src/bin/future_work.rs

crates/tc-bench/src/bin/future_work.rs:
