/root/repo/target/debug/deps/rand-176378a84b3b51a1.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-176378a84b3b51a1.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-176378a84b3b51a1.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
