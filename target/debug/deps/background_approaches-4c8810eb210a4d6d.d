/root/repo/target/debug/deps/background_approaches-4c8810eb210a4d6d.d: crates/tc-bench/src/bin/background_approaches.rs

/root/repo/target/debug/deps/background_approaches-4c8810eb210a4d6d: crates/tc-bench/src/bin/background_approaches.rs

crates/tc-bench/src/bin/background_approaches.rs:
