/root/repo/target/debug/deps/rayon-c6fb58e8f18de78e.d: crates/shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-c6fb58e8f18de78e.rmeta: crates/shims/rayon/src/lib.rs Cargo.toml

crates/shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
