/root/repo/target/debug/examples/format_convert-9bb3af4b2f637445.d: examples/format_convert.rs

/root/repo/target/debug/examples/format_convert-9bb3af4b2f637445: examples/format_convert.rs

examples/format_convert.rs:
