//! The 19-dataset registry mirroring the paper's Table II.
//!
//! The SNAP originals (up to 1.8 B edges) are replaced by deterministic
//! synthetic stand-ins that preserve what the paper's analysis actually
//! depends on: the **relative size ordering** (the x-axis of every
//! figure), the **average degree profile** (the overlaid curve in
//! Figure 11) and the **degree-distribution family** of each graph
//! (power-law social/web graphs vs. the near-regular road network).
//! Everything is scaled down by roughly the same factor as the simulated
//! device's global memory, so the algorithms that exhaust a real V100 on
//! the largest graphs exhaust the simulator on the largest stand-ins.

use crate::clean::clean_edges;
use crate::gen::{barabasi_albert, erdos_renyi, rmat, road_grid};
use crate::types::{EdgeList, UndirGraph};

/// Dataset size bands used throughout the paper's narrative ("small"
/// datasets are those with fewer than 2 M edges; "large" starts at the
/// hundred-million-edge graphs where only TRUST and TriCore stay fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    Small,
    Medium,
    Large,
}

/// Generator recipe for a stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenSpec {
    /// Power-law RMAT with canonical (0.57, 0.19, 0.19, 0.05) weights.
    Rmat { scale: u32, raw_edges: usize },
    /// Uniform random graph.
    Er { n: u32, raw_edges: usize },
    /// Preferential attachment with triad formation (clustered web /
    /// collaboration graphs).
    Ba { n: u32, m: u32, p_triad: f64 },
    /// Road-network lattice.
    Grid {
        rows: u32,
        cols: u32,
        keep: f64,
        diag: f64,
    },
}

/// One row of Table II: the paper's reported statistics plus the recipe
/// for the synthetic stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub paper_vertices: u64,
    pub paper_edges: u64,
    pub paper_avg_degree: f64,
    pub size_class: SizeClass,
    pub gen: GenSpec,
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate, clean and return the stand-in graph. Deterministic.
    pub fn build(&self) -> UndirGraph {
        let raw: EdgeList = match self.gen {
            GenSpec::Rmat { scale, raw_edges } => {
                rmat(scale, raw_edges, 0.57, 0.19, 0.19, 0.05, self.seed)
            }
            GenSpec::Er { n, raw_edges } => erdos_renyi(n, raw_edges, self.seed),
            GenSpec::Ba { n, m, p_triad } => barabasi_albert(n, m, p_triad, self.seed),
            GenSpec::Grid {
                rows,
                cols,
                keep,
                diag,
            } => road_grid(rows, cols, keep, diag, self.seed),
        };
        clean_edges(&raw).0
    }

    /// Look a spec up by its (case-insensitive) Table II name.
    pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
        TABLE2_DATASETS
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }
}

/// All 19 datasets of Table II, ordered by increasing paper edge count —
/// the x-axis order of Figures 11, 12, 13 and 15.
pub const TABLE2_DATASETS: [DatasetSpec; 19] = [
    DatasetSpec {
        name: "As-Caida",
        paper_vertices: 16_000,
        paper_edges: 43_000,
        paper_avg_degree: 5.2,
        size_class: SizeClass::Small,
        gen: GenSpec::Rmat {
            scale: 16,
            raw_edges: 55_000,
        },
        seed: 101,
    },
    DatasetSpec {
        name: "P2p-Gnutella31",
        paper_vertices: 33_000,
        paper_edges: 119_000,
        paper_avg_degree: 7.0,
        size_class: SizeClass::Small,
        gen: GenSpec::Er {
            n: 33_000,
            raw_edges: 125_000,
        },
        seed: 102,
    },
    DatasetSpec {
        name: "Email-EuAll",
        paper_vertices: 39_000,
        paper_edges: 151_000,
        paper_avg_degree: 7.7,
        size_class: SizeClass::Small,
        gen: GenSpec::Rmat {
            scale: 17,
            raw_edges: 190_000,
        },
        seed: 103,
    },
    DatasetSpec {
        name: "Soc-Slashdot0922",
        paper_vertices: 53_000,
        paper_edges: 475_000,
        paper_avg_degree: 17.7,
        size_class: SizeClass::Small,
        gen: GenSpec::Rmat {
            scale: 16,
            raw_edges: 440_000,
        },
        seed: 104,
    },
    DatasetSpec {
        name: "Web-NotreDame",
        paper_vertices: 163_000,
        paper_edges: 928_000,
        paper_avg_degree: 11.3,
        size_class: SizeClass::Small,
        gen: GenSpec::Ba {
            n: 62_000,
            m: 6,
            p_triad: 0.75,
        },
        seed: 105,
    },
    DatasetSpec {
        name: "Com-Dblp",
        paper_vertices: 273_000,
        paper_edges: 1_000_000,
        paper_avg_degree: 7.3,
        size_class: SizeClass::Small,
        gen: GenSpec::Ba {
            n: 110_000,
            m: 4,
            p_triad: 0.6,
        },
        seed: 106,
    },
    DatasetSpec {
        name: "Amazon0601",
        paper_vertices: 391_000,
        paper_edges: 2_400_000,
        paper_avg_degree: 12.4,
        size_class: SizeClass::Medium,
        gen: GenSpec::Ba {
            n: 86_000,
            m: 6,
            p_triad: 0.5,
        },
        seed: 107,
    },
    DatasetSpec {
        name: "RoadNet-CA",
        paper_vertices: 1_600_000,
        paper_edges: 2_400_000,
        paper_avg_degree: 2.9,
        size_class: SizeClass::Medium,
        gen: GenSpec::Grid {
            rows: 620,
            cols: 620,
            keep: 0.75,
            diag: 0.04,
        },
        seed: 108,
    },
    DatasetSpec {
        name: "Wiki-Talk",
        paper_vertices: 626_000,
        paper_edges: 2_800_000,
        paper_avg_degree: 9.2,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 18,
            raw_edges: 850_000,
        },
        seed: 109,
    },
    DatasetSpec {
        name: "Web-BerkStan",
        paper_vertices: 645_000,
        paper_edges: 6_600_000,
        paper_avg_degree: 20.4,
        size_class: SizeClass::Medium,
        gen: GenSpec::Ba {
            n: 70_000,
            m: 10,
            p_triad: 0.7,
        },
        seed: 110,
    },
    DatasetSpec {
        name: "As-Skitter",
        paper_vertices: 1_400_000,
        paper_edges: 10_800_000,
        paper_avg_degree: 14.7,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 18,
            raw_edges: 1_150_000,
        },
        seed: 111,
    },
    DatasetSpec {
        name: "Cit-Patents",
        paper_vertices: 3_100_000,
        paper_edges: 15_800_000,
        paper_avg_degree: 10.2,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 19,
            raw_edges: 1_250_000,
        },
        seed: 112,
    },
    DatasetSpec {
        name: "Soc-Pokec",
        paper_vertices: 1_400_000,
        paper_edges: 22_100_000,
        paper_avg_degree: 30.1,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 17,
            raw_edges: 1_500_000,
        },
        seed: 113,
    },
    DatasetSpec {
        name: "Sx-Stackoverflow",
        paper_vertices: 1_900_000,
        paper_edges: 27_500_000,
        paper_avg_degree: 28.0,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 17,
            raw_edges: 1_700_000,
        },
        seed: 114,
    },
    DatasetSpec {
        name: "Com-Lj",
        paper_vertices: 3_200_000,
        paper_edges: 33_800_000,
        paper_avg_degree: 21.1,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 18,
            raw_edges: 1_750_000,
        },
        seed: 115,
    },
    DatasetSpec {
        name: "Soc-LiveJ",
        paper_vertices: 3_700_000,
        paper_edges: 41_700_000,
        paper_avg_degree: 22.0,
        size_class: SizeClass::Medium,
        gen: GenSpec::Rmat {
            scale: 18,
            raw_edges: 1_900_000,
        },
        seed: 116,
    },
    DatasetSpec {
        name: "Com-Orkut",
        paper_vertices: 3_000_000,
        paper_edges: 117_000_000,
        paper_avg_degree: 77.9,
        size_class: SizeClass::Large,
        gen: GenSpec::Rmat {
            scale: 16,
            raw_edges: 2_200_000,
        },
        seed: 117,
    },
    DatasetSpec {
        name: "Twitter",
        paper_vertices: 39_000_000,
        paper_edges: 1_200_000_000,
        paper_avg_degree: 60.4,
        size_class: SizeClass::Large,
        gen: GenSpec::Rmat {
            scale: 17,
            raw_edges: 3_000_000,
        },
        seed: 118,
    },
    DatasetSpec {
        name: "Com-Friendster",
        paper_vertices: 51_000_000,
        paper_edges: 1_800_000_000,
        paper_avg_degree: 69.0,
        size_class: SizeClass::Large,
        gen: GenSpec::Rmat {
            scale: 17,
            raw_edges: 3_600_000,
        },
        seed: 119,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn registry_ordered_by_paper_edges() {
        for w in TABLE2_DATASETS.windows(2) {
            assert!(
                w[0].paper_edges <= w[1].paper_edges,
                "{} out of order",
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(DatasetSpec::by_name("wiki-talk").is_some());
        assert!(DatasetSpec::by_name("Twitter").is_some());
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn class_bands_match_paper_narrative() {
        // Small = paper edge count below 2M.
        for d in &TABLE2_DATASETS {
            match d.size_class {
                SizeClass::Small => assert!(d.paper_edges < 2_000_000, "{}", d.name),
                SizeClass::Medium => assert!(
                    (2_000_000..100_000_000).contains(&d.paper_edges),
                    "{}",
                    d.name
                ),
                SizeClass::Large => assert!(d.paper_edges >= 100_000_000, "{}", d.name),
            }
        }
    }

    #[test]
    fn small_datasets_build_with_sane_stats() {
        // Build only the quick ones in unit tests; the full sweep is an
        // integration test.
        for name in ["As-Caida", "P2p-Gnutella31", "Email-EuAll"] {
            let spec = DatasetSpec::by_name(name).unwrap();
            let g = spec.build();
            let s = GraphStats::compute(&g);
            assert!(s.vertices > 1000, "{name}: {} vertices", s.vertices);
            assert!(s.edges > 10_000, "{name}: {} edges", s.edges);
            assert!(s.avg_degree > 1.0, "{name}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = DatasetSpec::by_name("As-Caida").unwrap();
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn roadnet_stand_in_is_low_degree() {
        let spec = DatasetSpec::by_name("RoadNet-CA").unwrap();
        let s = GraphStats::compute(&spec.build());
        assert!(s.avg_degree < 4.0, "avg degree {}", s.avg_degree);
        assert!(s.max_degree <= 8);
    }
}
