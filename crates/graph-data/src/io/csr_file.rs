//! Binary CSR format: magic, `u32` vertex count, `u64` target count, the
//! offsets array, then the targets array (all little-endian). Several of
//! the published implementations load CSRs directly; the framework
//! converts once and reuses. The same file doubles as the spill format
//! behind [`crate::chunked::ChunkedCsr`], which serves both arrays
//! through a bounded chunk cache instead of loading them whole.

use std::io::{self, Read, Write};

use super::binary::read_full_at;
use crate::types::Csr;

/// File magic for binary CSR files.
pub const CSR_MAGIC: &[u8; 8] = b"TCCSRv01";

/// Byte offset where the offsets array starts (magic + n + m).
pub(crate) const CSR_HEADER_BYTES: u64 = 20;

/// Streaming slab size for payload reads (see `io::binary`).
const SLAB_BYTES: usize = 1 << 20;

/// Write a CSR.
pub fn write_csr<W: Write>(mut w: W, csr: &Csr) -> io::Result<()> {
    w.write_all(CSR_MAGIC)?;
    w.write_all(&csr.num_vertices().to_le_bytes())?;
    w.write_all(&csr.num_entries().to_le_bytes())?;
    let mut buf = Vec::with_capacity((csr.offsets().len() + csr.targets().len()) * 4);
    for &x in csr.offsets() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    for &x in csr.targets() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    w.write_all(&buf)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The validated header of a CSR file: vertex count, target count, and
/// the absolute byte offsets of the two arrays. Shared by the eager
/// reader below and the chunked out-of-core reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CsrHeader {
    pub num_vertices: u32,
    pub num_targets: u64,
    /// Byte offset of the offsets array (`num_vertices + 1` words).
    pub offsets_base: u64,
    /// Byte offset of the targets array (`num_targets` words).
    pub targets_base: u64,
    /// Total file size implied by the header.
    pub file_len: u64,
}

pub(crate) fn read_csr_header<R: Read>(r: &mut R) -> io::Result<CsrHeader> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != CSR_MAGIC {
        return Err(invalid("not a tc-compare CSR file (bad magic)".into()));
    }
    let mut b4 = [0u8; 4];
    read_full_at(r, &mut b4, 8)?;
    let n = u32::from_le_bytes(b4);
    let mut b8 = [0u8; 8];
    read_full_at(r, &mut b8, 12)?;
    let m = u64::from_le_bytes(b8);
    // Targets are indexed by u32 offsets, so any m beyond u32::MAX can
    // never be consistent with the offsets array — reject it before
    // trusting it to size anything.
    if m > u32::MAX as u64 {
        return Err(invalid(format!(
            "declared target count {m} exceeds the u32 offset space (header at byte offset 12)"
        )));
    }
    let offsets_bytes = (n as u64 + 1)
        .checked_mul(4)
        .ok_or_else(|| invalid(format!("offsets size overflows for {n} vertices")))?;
    let targets_base = CSR_HEADER_BYTES
        .checked_add(offsets_bytes)
        .ok_or_else(|| invalid(format!("offsets region overflows for {n} vertices")))?;
    let file_len = targets_base
        .checked_add(m * 4)
        .ok_or_else(|| invalid(format!("targets region overflows for {m} targets")))?;
    Ok(CsrHeader {
        num_vertices: n,
        num_targets: m,
        offsets_base: CSR_HEADER_BYTES,
        targets_base,
        file_len,
    })
}

/// Stream `count` little-endian u32 words starting at absolute byte
/// offset `base`, in bounded slabs — a header whose declared sizes
/// exceed the remaining stream length fails at the truncation offset
/// instead of allocating the declared size up front.
fn read_u32s_streamed<R: Read>(r: &mut R, count: u64, base: u64) -> io::Result<Vec<u32>> {
    let count_usize = usize::try_from(count).map_err(|_| {
        invalid(format!(
            "declared word count {count} exceeds the address space"
        ))
    })?;
    let total_bytes = count * 4;
    let mut words = Vec::with_capacity(count_usize.min(SLAB_BYTES / 4));
    let mut slab = vec![0u8; SLAB_BYTES.min(total_bytes.max(1) as usize)];
    let mut consumed = 0u64;
    while consumed < total_bytes {
        let want = usize::try_from((total_bytes - consumed).min(SLAB_BYTES as u64)).unwrap();
        read_full_at(r, &mut slab[..want], base + consumed)?;
        words.extend(
            slab[..want]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        consumed += want as u64;
    }
    Ok(words)
}

/// Read a CSR, validating the header and structure. Every length and
/// offset computation is checked; malformed input returns `InvalidData`
/// with the byte offset, never a panic.
pub fn read_csr<R: Read>(mut r: R) -> io::Result<Csr> {
    let header = read_csr_header(&mut r)?;
    let offsets = read_u32s_streamed(&mut r, header.num_vertices as u64 + 1, header.offsets_base)?;
    let targets = read_u32s_streamed(&mut r, header.num_targets, header.targets_base)?;
    validate_offsets(&offsets, header.num_targets)?;
    let mut trailer = [0u8; 1];
    if r.read(&mut trailer)? != 0 {
        return Err(invalid("trailing bytes after declared CSR arrays".into()));
    }
    Ok(Csr::from_parts(offsets, targets))
}

/// The structural invariants [`Csr::from_parts`] would otherwise assert
/// on (and panic): checked here so corrupt files surface as `Err`.
pub(crate) fn validate_offsets(offsets: &[u32], num_targets: u64) -> io::Result<()> {
    if offsets.first() != Some(&0)
        || offsets.last().map(|&o| o as u64) != Some(num_targets)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(invalid("inconsistent CSR offsets".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let csr = Csr::from_adjacency(&[vec![1, 2], vec![2], vec![], vec![0]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        assert_eq!(read_csr(&bytes[..]).unwrap(), csr);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let csr = Csr::from_adjacency(&[]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        let back = read_csr(&bytes[..]).unwrap();
        assert_eq!(back.num_vertices(), 0);
    }

    #[test]
    fn corrupt_offsets_rejected() {
        let csr = Csr::from_adjacency(&[vec![1], vec![0]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        // Corrupt the first offset (byte 20 = after magic + n + m).
        bytes[20] = 9;
        assert!(read_csr(&bytes[..]).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_csr(&b"XXXXXXXX\0\0\0\0\0\0\0\0\0\0\0\0"[..]).is_err());
    }

    #[test]
    fn oversized_vertex_count_rejected_without_huge_alloc() {
        // n = u32::MAX declares a ~16 GiB offsets array; the reader must
        // fail at the truncation offset, not attempt the allocation.
        let mut bytes = CSR_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = read_csr(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte offset"), "{err}");
    }

    #[test]
    fn target_count_beyond_u32_rejected() {
        let mut bytes = CSR_MAGIC.to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX / 8).to_le_bytes());
        let err = read_csr(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("u32 offset space"), "{err}");
    }

    #[test]
    fn declared_sizes_exceeding_stream_rejected_with_offset() {
        // A valid one-vertex header whose targets array is missing.
        let csr = Csr::from_adjacency(&[vec![0]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        bytes.truncate(bytes.len() - 4);
        let err = read_csr(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // offsets end at 20 + 8 = 28; the missing target word is at 28.
        assert!(err.to_string().contains("byte offset 28"), "{err}");
    }

    #[test]
    fn truncated_header_rejected() {
        let mut bytes = CSR_MAGIC.to_vec();
        bytes.extend_from_slice(&[1, 0]); // n cut short
        let err = read_csr(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let csr = Csr::from_adjacency(&[vec![1], vec![]]);
        let mut bytes = Vec::new();
        write_csr(&mut bytes, &csr).unwrap();
        bytes.push(7);
        assert!(read_csr(&bytes[..]).is_err());
    }
}
