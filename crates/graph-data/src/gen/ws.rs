//! Watts–Strogatz small-world generator: ring lattice with random
//! rewiring. High clustering with near-uniform degrees — used in tests as
//! a triangle-rich counterpoint to the power-law generators, and in the
//! examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::EdgeList;

/// Generate a WS graph: `n` vertices on a ring, each connected to `k`
/// nearest neighbours on each side, each edge rewired with probability
/// `beta`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> EdgeList {
    assert!(k >= 1 && n > 2 * k, "ring lattice needs n > 2k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n as usize * k as usize);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint uniformly (self-loops and the
                // occasional duplicate are handled by cleaning).
                edges.push((u, rng.gen_range(0..n)));
            } else {
                edges.push((u, v));
            }
        }
    }
    EdgeList::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::cpu_ref::node_iterator;

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(100, 3, 0.1, 7),
            watts_strogatz(100, 3, 0.1, 7)
        );
    }

    #[test]
    fn zero_beta_is_ring_lattice() {
        let e = watts_strogatz(12, 2, 0.0, 0);
        let (g, _) = clean_edges(&e);
        assert_eq!(g.num_edges(), 24);
        assert!((0..12).all(|v| g.degree(v) == 4));
        // Ring lattice with k=2: each vertex closes k-1 triangles per
        // side; total n * (k - 1) ... for k=2: 12 triangles.
        assert_eq!(node_iterator(&g), 12);
    }

    #[test]
    fn lattice_is_triangle_rich() {
        let (lattice, _) = clean_edges(&watts_strogatz(500, 4, 0.0, 1));
        let (random, _) = clean_edges(&watts_strogatz(500, 4, 1.0, 1));
        assert!(node_iterator(&lattice) > 4 * node_iterator(&random));
    }
}
