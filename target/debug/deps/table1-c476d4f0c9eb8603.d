/root/repo/target/debug/deps/table1-c476d4f0c9eb8603.d: crates/tc-bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-c476d4f0c9eb8603.rmeta: crates/tc-bench/src/bin/table1.rs

crates/tc-bench/src/bin/table1.rs:
