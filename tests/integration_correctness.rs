//! Cross-crate integration: every GPU algorithm must produce the exact
//! CPU-reference triangle count on real-shaped datasets, under its own
//! preferred preprocessing — the property the whole evaluation rests on.

use tc_compare::core::framework::registry::all_algorithms;
use tc_compare::core::{run_on_dataset, PreparedDataset, RunOutcome};
use tc_compare::graph::datasets::GenSpec;
use tc_compare::graph::{DatasetSpec, SizeClass};
use tc_compare::sim::Device;

/// Paste-able description of the failing fixture: the generator
/// parameters plus seed reconstruct the graph exactly.
fn repro(s: &DatasetSpec) -> String {
    format!("regenerate with: {:?} at seed {}", s.gen, s.seed)
}

fn spec(name: &'static str, gen: GenSpec, seed: u64) -> DatasetSpec {
    DatasetSpec {
        name,
        paper_vertices: 0,
        paper_edges: 0,
        paper_avg_degree: 0.0,
        size_class: SizeClass::Small,
        gen,
        seed,
    }
}

/// Reduced-size cousins of each Table II generator family.
fn fixture_specs() -> Vec<DatasetSpec> {
    vec![
        spec(
            "it-rmat",
            GenSpec::Rmat {
                scale: 12,
                raw_edges: 30_000,
            },
            1,
        ),
        spec(
            "it-er",
            GenSpec::Er {
                n: 4_000,
                raw_edges: 16_000,
            },
            2,
        ),
        spec(
            "it-ba",
            GenSpec::Ba {
                n: 3_000,
                m: 5,
                p_triad: 0.6,
            },
            3,
        ),
        spec(
            "it-grid",
            GenSpec::Grid {
                rows: 60,
                cols: 60,
                keep: 0.8,
                diag: 0.05,
            },
            4,
        ),
    ]
}

#[test]
fn all_algorithms_exact_on_all_generator_families() {
    let dev = Device::v100();
    let algos = all_algorithms();
    for s in fixture_specs() {
        let data = PreparedDataset::prepare(&s);
        assert!(data.stats.edges > 1000, "{}: fixture too small", s.name);
        for algo in &algos {
            let rec = run_on_dataset(&dev, algo.as_ref(), &data);
            match rec.outcome {
                RunOutcome::Ok {
                    triangles,
                    verified,
                    ..
                } => assert!(
                    verified,
                    "{} on {}: counted {triangles}, expected {}\n  {}",
                    rec.algorithm,
                    s.name,
                    data.ground_truth,
                    repro(&s)
                ),
                RunOutcome::Failed(e) => {
                    panic!(
                        "{} failed on {}: {e}\n  {}",
                        rec.algorithm,
                        s.name,
                        repro(&s)
                    )
                }
            }
        }
    }
}

#[test]
fn smallest_table2_dataset_verifies_for_everyone() {
    let dev = Device::v100();
    let spec = DatasetSpec::by_name("As-Caida").unwrap();
    let data = PreparedDataset::prepare(spec);
    assert!(data.ground_truth > 0);
    for algo in all_algorithms() {
        let rec = run_on_dataset(&dev, algo.as_ref(), &data);
        assert!(rec.is_verified(), "{} not verified", rec.algorithm);
    }
}

#[test]
fn profiling_counters_are_sane_for_every_algorithm() {
    let dev = Device::v100();
    let s = spec(
        "sanity",
        GenSpec::Rmat {
            scale: 11,
            raw_edges: 15_000,
        },
        9,
    );
    let data = PreparedDataset::prepare(&s);
    for algo in all_algorithms() {
        let rec = run_on_dataset(&dev, algo.as_ref(), &data);
        let c = rec
            .counters()
            .unwrap_or_else(|| panic!("{} failed\n  {}", rec.algorithm, repro(&s)));
        let eff = c.warp_execution_efficiency();
        assert!(
            (0.0..=1.0).contains(&eff),
            "{}: efficiency {eff} out of range",
            rec.algorithm
        );
        assert!(c.global_load_requests > 0, "{}: no loads?", rec.algorithm);
        assert!(
            c.gld_transactions_per_request() >= 0.0,
            "{}: negative tpr",
            rec.algorithm
        );
        assert!(
            c.active_thread_slots <= c.issued_slots * 32,
            "{}: active threads exceed slot capacity",
            rec.algorithm
        );
        assert!(rec.kernel_cycles().unwrap() > 0);
    }
}

#[test]
fn runs_are_deterministic() {
    let dev = Device::v100();
    let s = spec(
        "det",
        GenSpec::Ba {
            n: 1_000,
            m: 4,
            p_triad: 0.5,
        },
        11,
    );
    for algo in all_algorithms() {
        let d1 = PreparedDataset::prepare(&s);
        let d2 = PreparedDataset::prepare(&s);
        let r1 = run_on_dataset(&dev, algo.as_ref(), &d1);
        let r2 = run_on_dataset(&dev, algo.as_ref(), &d2);
        match (&r1.outcome, &r2.outcome) {
            (
                RunOutcome::Ok {
                    kernel_cycles: k1,
                    counters: c1,
                    ..
                },
                RunOutcome::Ok {
                    kernel_cycles: k2,
                    counters: c2,
                    ..
                },
            ) => {
                assert_eq!(k1, k2, "{}: cycles not deterministic", r1.algorithm);
                assert_eq!(c1, c2, "{}: counters not deterministic", r1.algorithm);
            }
            other => panic!(
                "{}: unexpected outcomes {other:?}\n  {}",
                r1.algorithm,
                repro(&s)
            ),
        }
    }
}

#[test]
fn graph_upload_fails_cleanly_on_tiny_device() {
    use tc_compare::algos::DeviceGraph;
    use tc_compare::graph::{orient, Orientation};
    use tc_compare::sim::{DeviceMem, SimError};

    let s = spec(
        "oom",
        GenSpec::Rmat {
            scale: 11,
            raw_edges: 20_000,
        },
        13,
    );
    let g = s.build();
    let dag = orient(&g, Orientation::DegreeAsc);
    let dev = Device::with_memory_words(100);
    let mut mem = DeviceMem::new(&dev);
    assert!(matches!(
        DeviceGraph::upload(&dag, &mut mem),
        Err(SimError::OutOfMemory { .. })
    ));
}
