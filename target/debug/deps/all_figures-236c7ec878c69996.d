/root/repo/target/debug/deps/all_figures-236c7ec878c69996.d: crates/tc-bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/liball_figures-236c7ec878c69996.rmeta: crates/tc-bench/src/bin/all_figures.rs

crates/tc-bench/src/bin/all_figures.rs:
