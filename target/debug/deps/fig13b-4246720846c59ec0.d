/root/repo/target/debug/deps/fig13b-4246720846c59ec0.d: crates/tc-bench/src/bin/fig13b.rs

/root/repo/target/debug/deps/fig13b-4246720846c59ec0: crates/tc-bench/src/bin/fig13b.rs

crates/tc-bench/src/bin/fig13b.rs:
