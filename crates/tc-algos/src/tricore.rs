//! TriCore (Hu, Liu & Huang, SC 2018) — "Parallel triangle counting on
//! GPUs".
//!
//! Edge-centric, fine-grained (Section III-D / Figure 6): **one warp per
//! edge**. For each edge the *longer* neighbour list becomes an implicit
//! binary-search tree; the lanes stride over the shorter list (coalesced)
//! and each key descends the tree. The top 5 levels of the tree (31
//! probe values) are cached in a per-warp shared-memory region, so the
//! hottest probes never touch DRAM.
//!
//! The evaluation-visible trade-off: the per-edge tree-top construction
//! is pure overhead on small low-degree graphs (TriCore trails Polak
//! there) but is amortized by the many cheap lookups on large
//! high-degree graphs, where TriCore is among the leaders.

use gpu_sim::{Device, DeviceMem, KernelConfig, LaneCtx, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

const BLOCK_DIM: u32 = 32;
const WARPS_PER_BLOCK: u32 = BLOCK_DIM / 32;
/// Tree levels cached in shared memory (2^5 - 1 = 31 nodes).
const CACHED_LEVELS: u32 = 5;
const CACHED_NODES: u32 = (1 << CACHED_LEVELS) - 1;

/// The TriCore algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct TriCore;

/// Load the edge's (table, keys) segment bounds; the table is the longer
/// list. Returns (table_base, table_len, keys_base, keys_len). The loads
/// are warp-uniform (every lane reads the same words), i.e. broadcasts.
fn load_edge_lists(lane: &mut LaneCtx, g: &DeviceGraph, e: usize) -> (u32, u32, u32, u32) {
    let u = lane.ld_global(g.edge_src, e);
    let v = lane.ld_global(g.edge_dst, e);
    let u_base = lane.ld_global(g.row_offsets, u as usize);
    let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
    let v_base = lane.ld_global(g.row_offsets, v as usize);
    let v_end = lane.ld_global(g.row_offsets, v as usize + 1);
    let (un, vn) = (u_end - u_base, v_end - v_base);
    lane.compute(1);
    if un >= vn {
        (u_base, un, v_base, vn)
    } else {
        (v_base, vn, u_base, un)
    }
}

/// Interval of implicit-heap node `node` (1-based) in a search over
/// `[0, n)`, following the same subdivision the descent uses.
fn heap_interval(node: u32, n: u32) -> (u32, u32) {
    let depth = 31 - node.leading_zeros();
    let (mut lo, mut hi) = (0u32, n);
    for b in (0..depth).rev() {
        if lo >= hi {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        if node >> b & 1 == 1 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, hi)
}

impl TcAlgorithm for TriCore {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "TriCore",
            reference: "Hu, Liu & Huang, SC 2018",
            year: 2018,
            iterator: IteratorKind::Edge,
            intersection: Intersection::BinSearch,
            granularity: Granularity::Fine,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "tricore.counter")?;
        let grid = (24 * dev.config().num_sms).min(g.owned_edges().max(1));
        let warps_total = grid * WARPS_PER_BLOCK;
        let rounds = g.owned_edges().div_ceil(warps_total);
        let shared_words = WARPS_PER_BLOCK * CACHED_NODES;
        let cfg = KernelConfig::new(grid, BLOCK_DIM).with_shared_words(shared_words);
        let (edge_lo, edge_hi) = (g.edge_lo, g.edge_hi);

        let stats = dev.launch(mem, cfg, |blk| {
            let bidx = blk.block_idx();
            let mut locals = vec![0u32; BLOCK_DIM as usize];
            for round in 0..rounds {
                // Phase A: each warp caches the top of its edge's search
                // tree; lane l fills heap node l+1.
                blk.phase(|lane| {
                    let warp_global = bidx * WARPS_PER_BLOCK + lane.warp_id();
                    let e = edge_lo + warp_global + round * warps_total;
                    if e >= edge_hi || lane.lane_id() >= CACHED_NODES {
                        return;
                    }
                    let (t_base, tn, _, _) = load_edge_lists(lane, g, e as usize);
                    let node = lane.lane_id() + 1;
                    let (lo, hi) = heap_interval(node, tn);
                    lane.compute(CACHED_LEVELS); // path walk address math
                    let slot = (lane.warp_id() * CACHED_NODES + lane.lane_id()) as usize;
                    if lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let val = lane.ld_global(g.col_indices, (t_base + mid) as usize);
                        lane.st_shared(slot, val);
                    } else {
                        lane.st_shared(slot, u32::MAX);
                    }
                });
                // Phase B: lanes stride over the key list and descend the
                // tiered tree.
                blk.phase(|lane| {
                    let warp_global = bidx * WARPS_PER_BLOCK + lane.warp_id();
                    let e = edge_lo + warp_global + round * warps_total;
                    if e >= edge_hi {
                        return;
                    }
                    let (t_base, tn, k_base, kn) = load_edge_lists(lane, g, e as usize);
                    let warp_shared = (lane.warp_id() * CACHED_NODES) as usize;
                    let mut cnt = 0u32;
                    let mut k = lane.lane_id();
                    while k < kn {
                        let key = lane.ld_global(g.col_indices, (k_base + k) as usize);
                        // Tiered binary search.
                        let (mut lo, mut hi) = (0u32, tn);
                        let mut node = 1u32;
                        let mut depth = 0u32;
                        while lo < hi {
                            let mid = lo + (hi - lo) / 2;
                            let val = if depth < CACHED_LEVELS {
                                lane.ld_shared(warp_shared + node as usize - 1)
                            } else {
                                lane.ld_global(g.col_indices, (t_base + mid) as usize)
                            };
                            lane.compute(1);
                            match val.cmp(&key) {
                                std::cmp::Ordering::Equal => {
                                    cnt += 1;
                                    break;
                                }
                                std::cmp::Ordering::Less => {
                                    lo = mid + 1;
                                    node = 2 * node + 1;
                                }
                                std::cmp::Ordering::Greater => {
                                    hi = mid;
                                    node *= 2;
                                }
                            }
                            depth += 1;
                        }
                        lane.converge();
                        k += 32;
                    }
                    locals[lane.tid() as usize] += cnt;
                });
            }
            blk.phase(|lane| {
                warp_reduce_add(lane, counter, 0, locals[lane.tid() as usize]);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: binary-search intersection per edge (the tree-top
    /// cache is a device-memory optimization with no host analogue).
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_binsearch(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::Orientation;

    #[test]
    fn heap_interval_subdivides_consistently() {
        // Root covers everything.
        assert_eq!(heap_interval(1, 10), (0, 10));
        // Children split around mid = 5.
        assert_eq!(heap_interval(2, 10), (0, 5));
        assert_eq!(heap_interval(3, 10), (6, 10));
        // Grandchild: left of left.
        let (lo, hi) = heap_interval(4, 10);
        assert_eq!((lo, hi), (0, 2));
        // Empty interval for deep nodes of a tiny array.
        let (lo, hi) = heap_interval(8, 1);
        assert!(lo >= hi);
    }

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &TriCore,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&TriCore);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&TriCore, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = TriCore.meta();
        assert_eq!(m.year, 2018);
        assert_eq!(m.intersection, Intersection::BinSearch);
        assert_eq!(m.granularity, Granularity::Fine);
    }
}
