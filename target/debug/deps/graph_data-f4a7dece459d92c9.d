/root/repo/target/debug/deps/graph_data-f4a7dece459d92c9.d: crates/graph-data/src/lib.rs crates/graph-data/src/clean.rs crates/graph-data/src/cpu_ref/mod.rs crates/graph-data/src/cpu_ref/baselines.rs crates/graph-data/src/cpu_ref/intersect.rs crates/graph-data/src/cpu_ref/itc.rs crates/graph-data/src/datasets.rs crates/graph-data/src/gen/mod.rs crates/graph-data/src/gen/ba.rs crates/graph-data/src/gen/er.rs crates/graph-data/src/gen/grid.rs crates/graph-data/src/gen/rmat.rs crates/graph-data/src/gen/ws.rs crates/graph-data/src/io/mod.rs crates/graph-data/src/io/binary.rs crates/graph-data/src/io/csr_file.rs crates/graph-data/src/io/matrix_market.rs crates/graph-data/src/io/snap.rs crates/graph-data/src/kcore.rs crates/graph-data/src/orient.rs crates/graph-data/src/stats.rs crates/graph-data/src/types.rs

/root/repo/target/debug/deps/libgraph_data-f4a7dece459d92c9.rmeta: crates/graph-data/src/lib.rs crates/graph-data/src/clean.rs crates/graph-data/src/cpu_ref/mod.rs crates/graph-data/src/cpu_ref/baselines.rs crates/graph-data/src/cpu_ref/intersect.rs crates/graph-data/src/cpu_ref/itc.rs crates/graph-data/src/datasets.rs crates/graph-data/src/gen/mod.rs crates/graph-data/src/gen/ba.rs crates/graph-data/src/gen/er.rs crates/graph-data/src/gen/grid.rs crates/graph-data/src/gen/rmat.rs crates/graph-data/src/gen/ws.rs crates/graph-data/src/io/mod.rs crates/graph-data/src/io/binary.rs crates/graph-data/src/io/csr_file.rs crates/graph-data/src/io/matrix_market.rs crates/graph-data/src/io/snap.rs crates/graph-data/src/kcore.rs crates/graph-data/src/orient.rs crates/graph-data/src/stats.rs crates/graph-data/src/types.rs

crates/graph-data/src/lib.rs:
crates/graph-data/src/clean.rs:
crates/graph-data/src/cpu_ref/mod.rs:
crates/graph-data/src/cpu_ref/baselines.rs:
crates/graph-data/src/cpu_ref/intersect.rs:
crates/graph-data/src/cpu_ref/itc.rs:
crates/graph-data/src/datasets.rs:
crates/graph-data/src/gen/mod.rs:
crates/graph-data/src/gen/ba.rs:
crates/graph-data/src/gen/er.rs:
crates/graph-data/src/gen/grid.rs:
crates/graph-data/src/gen/rmat.rs:
crates/graph-data/src/gen/ws.rs:
crates/graph-data/src/io/mod.rs:
crates/graph-data/src/io/binary.rs:
crates/graph-data/src/io/csr_file.rs:
crates/graph-data/src/io/matrix_market.rs:
crates/graph-data/src/io/snap.rs:
crates/graph-data/src/kcore.rs:
crates/graph-data/src/orient.rs:
crates/graph-data/src/stats.rs:
crates/graph-data/src/types.rs:
