/root/repo/target/release/deps/orientation_study-db4cac6ac252f174.d: crates/tc-bench/src/bin/orientation_study.rs

/root/repo/target/release/deps/orientation_study-db4cac6ac252f174: crates/tc-bench/src/bin/orientation_study.rs

crates/tc-bench/src/bin/orientation_study.rs:
