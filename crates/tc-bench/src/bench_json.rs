//! `BENCH_sim.json` — the simulator's perf-trajectory file.
//!
//! The sweep microbenchmark (`bench_sweep`) emits one JSON document per
//! run: host wall-clock time and modelled cycles for every
//! (algorithm × dataset) cell, plus enough metadata to compare runs
//! across commits. The file is the *host-performance* baseline the
//! ROADMAP's "as fast as the hardware allows" goal regresses against —
//! modelled kernel cycles are deterministic and pinned by tests, but
//! host wall time is what bounds how fast the Table III sweep can run.
//!
//! The format is deliberately flat so a future session (or CI) can diff
//! two files without a JSON library:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "device": "V100",
//!   "reps": 3,
//!   "total_wall_ms": 1234.5,
//!   "records": [
//!     {"algorithm": "Polak", "dataset": "Wiki-Talk", "outcome": "ok",
//!      "wall_ms": 17.3, "kernel_cycles": 123456, "verified": true},
//!     ...
//!   ]
//! }
//! ```
//!
//! Everything here is dependency-free: the emitter hand-renders the JSON
//! and [`validate`] re-parses it with a minimal recursive-descent parser
//! (also used by the CI bench-smoke job to keep the schema honest).

use tc_core::framework::runner::{RunOutcome, RunRecord};

/// One (algorithm × dataset) cell of the benchmark matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    pub algorithm: String,
    pub dataset: String,
    /// Execution backend (`"sim"` or `"cpu"`). Serialized only when a
    /// document mixes backends, so pure-sim `BENCH_sim.json` files keep
    /// their historical shape.
    pub backend: &'static str,
    /// `"ok"` or `"failed"`.
    pub outcome: &'static str,
    /// Best (minimum over reps) host wall-clock time simulating the cell.
    pub wall_ms: f64,
    /// Modelled kernel cycles (0 for failed cells; deterministic).
    pub kernel_cycles: u64,
    /// Whether the GPU count matched the CPU reference.
    pub verified: bool,
}

impl BenchCell {
    /// Fold one sweep's records into cells (first rep), or merge a later
    /// rep into existing cells by taking the per-cell minimum wall time.
    pub fn from_records(records: &[RunRecord]) -> Vec<BenchCell> {
        records
            .iter()
            .map(|r| {
                let (outcome, kernel_cycles, verified) = match &r.outcome {
                    RunOutcome::Ok {
                        kernel_cycles,
                        verified,
                        ..
                    } => ("ok", *kernel_cycles, *verified),
                    RunOutcome::Failed(_) => ("failed", 0, false),
                };
                BenchCell {
                    algorithm: r.algorithm.clone(),
                    dataset: r.dataset.to_string(),
                    backend: r.backend,
                    outcome,
                    wall_ms: r.wall.as_secs_f64() * 1e3,
                    kernel_cycles,
                    verified,
                }
            })
            .collect()
    }

    /// Merge another rep of the *same* matrix: keep the minimum wall time
    /// per cell (the least-noisy estimate of the engine's speed).
    pub fn merge_min_wall(cells: &mut [BenchCell], rep: &[RunRecord]) {
        assert_eq!(cells.len(), rep.len(), "reps must run the same matrix");
        for (cell, r) in cells.iter_mut().zip(rep) {
            debug_assert_eq!(cell.algorithm, r.algorithm);
            debug_assert_eq!(cell.backend, r.backend);
            cell.wall_ms = cell.wall_ms.min(r.wall.as_secs_f64() * 1e3);
        }
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full `BENCH_sim.json` document (one record per line, so
/// plain `diff` shows per-cell drift between two runs).
pub fn render(device: &str, reps: u32, total_wall_ms: f64, cells: &[BenchCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"device\": \"{}\",\n", escape(device)));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"total_wall_ms\": {total_wall_ms:.3},\n"));
    out.push_str("  \"records\": [\n");
    // The backend field only appears in mixed-backend documents, so a
    // pure-sim BENCH_sim.json stays diffable against historical files.
    let multi_backend = cells.iter().any(|c| c.backend != "sim");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let backend = if multi_backend {
            format!("\"backend\": \"{}\", ", c.backend)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"dataset\": \"{}\", {}\"outcome\": \"{}\", \
             \"wall_ms\": {:.3}, \"kernel_cycles\": {}, \"verified\": {}}}{}\n",
            escape(&c.algorithm),
            escape(&c.dataset),
            backend,
            c.outcome,
            c.wall_ms,
            c.kernel_cycles,
            c.verified,
            comma,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parser (validation only — the build has no serde).
// ---------------------------------------------------------------------

/// A parsed JSON value, just rich enough to validate the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validate a `BENCH_sim.json` document against schema version 1 and
/// return the number of records. Used by tests and the CI bench-smoke
/// job; any missing key or mistyped field is an error.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric `schema_version`")?;
    if version != 1.0 {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("device")
        .and_then(Json::as_str)
        .ok_or("missing string `device`")?;
    doc.get("reps")
        .and_then(Json::as_num)
        .ok_or("missing numeric `reps`")?;
    doc.get("total_wall_ms")
        .and_then(Json::as_num)
        .ok_or("missing numeric `total_wall_ms`")?;
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing array `records`")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = |what: &str| format!("record {i}: {what}");
        r.get("algorithm")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `algorithm`"))?;
        r.get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `dataset`"))?;
        if let Some(b) = r.get("backend") {
            match b.as_str() {
                Some("sim") | Some("cpu") => {}
                _ => return Err(ctx("`backend`, when present, must be \"sim\" or \"cpu\"")),
            }
        }
        let outcome = r
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `outcome`"))?;
        if outcome != "ok" && outcome != "failed" {
            return Err(ctx(&format!("bad outcome `{outcome}`")));
        }
        let wall = r
            .get("wall_ms")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing numeric `wall_ms`"))?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(ctx("wall_ms must be finite and non-negative"));
        }
        r.get("kernel_cycles")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing numeric `kernel_cycles`"))?;
        match r.get("verified") {
            Some(Json::Bool(_)) => {}
            _ => return Err(ctx("missing boolean `verified`")),
        }
    }
    Ok(records.len())
}

// ---------------------------------------------------------------------
// Baseline comparison (the CI regression gate).
// ---------------------------------------------------------------------

/// Result of regressing a fresh sweep against a committed baseline file.
///
/// `failures` is what CI gates on; `advisories` is context a human reads
/// when triaging (wall-clock drift, cells with no baseline counterpart).
#[derive(Debug, Default)]
pub struct BaselineReport {
    /// Hard failures: kernel-cycle regressions beyond the tolerance band,
    /// or a cell that was a verified `ok` in the baseline but failed now.
    pub failures: Vec<String>,
    /// Informational findings that must not fail the build: wall-clock
    /// drift (host timing is noisy on shared runners), cycle *drops*
    /// (an intentional model change should refresh the baseline), and
    /// cells missing on either side.
    pub advisories: Vec<String>,
    /// Number of (algorithm × dataset) cells present on both sides.
    pub compared: usize,
}

impl BaselineReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a fresh sweep's cells against a committed `BENCH_sim.json`.
///
/// Modelled `kernel_cycles` are deterministic, so for every cell present
/// in both runs the current value may exceed the baseline by at most
/// `tolerance` (0.25 = +25%) before the comparison **fails** — the band
/// absorbs intentional small cost-model recalibrations while catching
/// the "accidentally made every kernel slower" class of regression.
/// Cycle *decreases* and host wall-clock drift of any size are reported
/// as advisories only. Baseline cells absent from the current run are
/// ignored (a smoke run may sweep a subset of the baseline matrix), but
/// at least one cell must overlap or the comparison is an error.
pub fn compare_to_baseline(
    baseline_text: &str,
    cells: &[BenchCell],
    tolerance: f64,
) -> Result<BaselineReport, String> {
    validate(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let doc = parse(baseline_text)?;
    let records = doc.get("records").and_then(Json::as_arr).unwrap_or(&[]);

    let mut report = BaselineReport::default();
    for cell in cells {
        let base = records.iter().find(|r| {
            r.get("algorithm").and_then(Json::as_str) == Some(cell.algorithm.as_str())
                && r.get("dataset").and_then(Json::as_str) == Some(cell.dataset.as_str())
                && r.get("backend").and_then(Json::as_str).unwrap_or("sim") == cell.backend
        });
        let label = format!("{} / {} [{}]", cell.algorithm, cell.dataset, cell.backend);
        let Some(base) = base else {
            report
                .advisories
                .push(format!("{label}: no baseline cell (new coverage?)"));
            continue;
        };
        report.compared += 1;

        let base_outcome = base.get("outcome").and_then(Json::as_str).unwrap_or("");
        if base_outcome == "ok" && cell.outcome != "ok" {
            report
                .failures
                .push(format!("{label}: baseline ran ok but this sweep failed"));
            continue;
        }

        let base_cycles = base
            .get("kernel_cycles")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if base_cycles > 0.0 {
            let ratio = cell.kernel_cycles as f64 / base_cycles;
            if ratio > 1.0 + tolerance {
                report.failures.push(format!(
                    "{label}: kernel_cycles {} vs baseline {} ({:+.1}% > +{:.0}% band)",
                    cell.kernel_cycles,
                    base_cycles as u64,
                    (ratio - 1.0) * 100.0,
                    tolerance * 100.0,
                ));
            } else if cell.kernel_cycles as f64 != base_cycles {
                report.advisories.push(format!(
                    "{label}: kernel_cycles {} vs baseline {} ({:+.1}%, within band) \
                     — refresh BENCH_sim.json if the model change is intentional",
                    cell.kernel_cycles,
                    base_cycles as u64,
                    (ratio - 1.0) * 100.0,
                ));
            }
        }

        let base_wall = base.get("wall_ms").and_then(Json::as_num).unwrap_or(0.0);
        if base_wall > 0.0 && cell.wall_ms > 0.0 {
            let ratio = cell.wall_ms / base_wall;
            if (ratio - 1.0).abs() > 0.10 {
                report.advisories.push(format!(
                    "{label}: wall {:.1} ms vs baseline {:.1} ms ({:+.0}%, advisory — \
                     host timing is machine-dependent)",
                    cell.wall_ms,
                    base_wall,
                    (ratio - 1.0) * 100.0,
                ));
            }
        }
    }
    if report.compared == 0 {
        return Err(
            "no (algorithm × dataset) cell overlaps the baseline — nothing to regress against"
                .to_string(),
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(algo: &str, wall: f64) -> BenchCell {
        BenchCell {
            algorithm: algo.to_string(),
            dataset: "tiny-rmat".to_string(),
            backend: "sim",
            outcome: "ok",
            wall_ms: wall,
            kernel_cycles: 42,
            verified: true,
        }
    }

    #[test]
    fn render_roundtrips_through_validate() {
        let cells = vec![cell("Polak", 1.25), cell("TRUST", 3.5)];
        let text = render("V100", 3, 12.0, &cells);
        assert_eq!(validate(&text).unwrap(), 2);
    }

    #[test]
    fn backend_field_appears_only_in_mixed_documents() {
        // Pure sim: no backend key anywhere (historical shape).
        let pure = render("V100", 1, 1.0, &[cell("Polak", 1.0)]);
        assert!(!pure.contains("\"backend\""));
        // Mixed: every record is tagged, and it still validates.
        let mut c = cell("Polak", 2.0);
        c.backend = "cpu";
        let mixed = render("V100", 1, 3.0, &[cell("Polak", 1.0), c]);
        assert!(mixed.contains("\"backend\": \"sim\""));
        assert!(mixed.contains("\"backend\": \"cpu\""));
        assert_eq!(validate(&mixed).unwrap(), 2);
        // A bogus backend value is rejected.
        let bad = mixed.replace("\"backend\": \"cpu\"", "\"backend\": \"gpu\"");
        assert!(validate(&bad).unwrap_err().contains("backend"));
    }

    #[test]
    fn baseline_matching_is_backend_aware() {
        // Baseline holds a sim cell; a cpu cell with the same name must
        // not be compared against it.
        let mut c = cell("Polak", 10.0);
        c.backend = "cpu";
        c.kernel_cycles = 0;
        let err = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap_err();
        assert!(err.contains("overlaps"), "err: {err}");
    }

    #[test]
    fn empty_matrix_is_valid() {
        let text = render("V100", 1, 0.0, &[]);
        assert_eq!(validate(&text).unwrap(), 0);
    }

    #[test]
    fn missing_fields_are_rejected() {
        let bad = r#"{"schema_version": 1, "device": "V100", "reps": 1,
                      "total_wall_ms": 1.0,
                      "records": [{"algorithm": "Polak"}]}"#;
        let err = validate(bad).unwrap_err();
        assert!(err.contains("dataset"), "err: {err}");
        assert!(validate("{").is_err());
        assert!(validate(r#"{"schema_version": 2}"#).is_err());
    }

    #[test]
    fn outcome_vocabulary_is_closed() {
        let bad = r#"{"schema_version": 1, "device": "V100", "reps": 1,
                      "total_wall_ms": 1.0,
                      "records": [{"algorithm": "a", "dataset": "d",
                                   "outcome": "maybe", "wall_ms": 1.0,
                                   "kernel_cycles": 1, "verified": true}]}"#;
        assert!(validate(bad).unwrap_err().contains("bad outcome"));
    }

    #[test]
    fn escaping_survives_the_roundtrip() {
        let mut c = cell("we\"ird\\name", 0.5);
        c.dataset = "line\nbreak".to_string();
        let text = render("V100", 1, 0.5, &[c]);
        let doc = parse(&text).unwrap();
        let rec = &doc.get("records").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            rec.get("algorithm").unwrap().as_str(),
            Some("we\"ird\\name")
        );
        assert_eq!(rec.get("dataset").unwrap().as_str(), Some("line\nbreak"));
    }

    fn baseline_text() -> String {
        let mut base = cell("Polak", 10.0);
        base.kernel_cycles = 1000;
        render("V100", 3, 10.0, &[base])
    }

    #[test]
    fn baseline_gate_passes_within_band_and_flags_drift() {
        let mut c = cell("Polak", 10.5);
        c.kernel_cycles = 1100; // +10%: inside the +25% band
        let report = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.compared, 1);
        // In-band drift of a deterministic counter is still surfaced.
        assert!(report.advisories.iter().any(|a| a.contains("within band")));
    }

    #[test]
    fn baseline_gate_fails_on_cycle_regression_beyond_band() {
        let mut c = cell("Polak", 10.0);
        c.kernel_cycles = 1300; // +30%: outside the +25% band
        let report = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("kernel_cycles"));
    }

    #[test]
    fn baseline_gate_treats_improvements_and_wall_drift_as_advisory() {
        let mut c = cell("Polak", 30.0); // 3x the baseline wall: advisory only
        c.kernel_cycles = 500; // 2x faster: advisory only
        let report = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.advisories.iter().any(|a| a.contains("wall")));
    }

    #[test]
    fn baseline_gate_fails_when_an_ok_cell_starts_failing() {
        let mut c = cell("Polak", 10.0);
        c.outcome = "failed";
        c.kernel_cycles = 0;
        let report = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("failed"));
    }

    #[test]
    fn baseline_gate_needs_at_least_one_overlapping_cell() {
        let c = cell("TRUST", 1.0); // baseline only has Polak
        let err = compare_to_baseline(&baseline_text(), &[c], 0.25).unwrap_err();
        assert!(err.contains("overlaps"), "err: {err}");
        // ...but extra cells alongside an overlapping one are fine.
        let mut polak = cell("Polak", 10.0);
        polak.kernel_cycles = 1000;
        let report =
            compare_to_baseline(&baseline_text(), &[cell("TRUST", 1.0), polak], 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.compared, 1);
        assert!(report.advisories.iter().any(|a| a.contains("no baseline")));
    }

    #[test]
    fn merge_min_wall_takes_per_cell_minimum() {
        use std::time::Duration;
        use tc_core::framework::runner::{RunOutcome, RunRecord};
        let mut cells = vec![cell("Polak", 5.0)];
        let rep = vec![RunRecord {
            algorithm: "Polak".to_string(),
            dataset: "tiny-rmat",
            backend: "sim",
            outcome: RunOutcome::Failed(gpu_sim::SimError::KernelFault("x".into())),
            partition: None,
            wall: Duration::from_millis(2),
        }];
        BenchCell::merge_min_wall(&mut cells, &rep);
        assert!((cells[0].wall_ms - 2.0).abs() < 1e-9);
    }
}
