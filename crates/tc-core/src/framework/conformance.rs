//! Registry-driven conformance sweep: every registered algorithm —
//! current and future, with no per-algorithm enrollment — runs the full
//! differential + metamorphic suite of `tc_algos::conformance` under the
//! data-race detector and SimSan (with an end-of-run leak check), with
//! every sim run mirrored by the algorithm's native host kernel (the
//! CPU ≡ sim ≡ node-iterator differential wall).
//!
//! Keeping the driver on the registry (rather than a hand-maintained
//! list) means a tenth algorithm added to
//! [`registry::all_algorithms`](crate::framework::registry::all_algorithms)
//! is conformance-tested the moment it is registered.

use tc_algos::api::TcAlgorithm;
use tc_algos::conformance::{self, ConformanceStats};

use crate::framework::registry::all_algorithms;

/// One algorithm's verdict from a conformance sweep. Construction implies
/// the algorithm *passed* — any violation panics inside the checks with a
/// reproduction one-liner for the failing graph.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    pub algorithm: &'static str,
    pub stats: ConformanceStats,
}

/// Run the full conformance suite for one algorithm.
pub fn run_conformance(algo: &dyn TcAlgorithm) -> ConformanceReport {
    ConformanceReport {
        algorithm: algo.name(),
        stats: conformance::run_all(algo),
    }
}

/// Run the suite for every algorithm in the registry; panics on the first
/// violation, otherwise returns one report per registered algorithm.
pub fn run_conformance_suite() -> Vec<ConformanceReport> {
    all_algorithms()
        .iter()
        .map(|a| run_conformance(a.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouptc_passes_the_full_suite() {
        // The published eight are covered per-algorithm by the workspace
        // conformance test; this pins the paper's own contribution (the
        // registry entry tc-algos cannot see) at crate level too.
        let algos = all_algorithms();
        let grouptc = algos
            .iter()
            .find(|a| a.name() == "GroupTC")
            .expect("GroupTC registered");
        let report = run_conformance(grouptc.as_ref());
        assert_eq!(report.algorithm, "GroupTC");
        assert!(report.stats.runs > 0);
        assert_eq!(
            report.stats.cpu_runs, report.stats.runs,
            "every sim run must have a host-kernel twin"
        );
        assert!(report.stats.race_checks > 0);
        assert!(report.stats.sanitizer_checks > 0);
        assert!(report.stats.lint_checks > 0);
    }
}
