use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::sanitize::{SanitizerKind, ShadowState};
use crate::{Device, SimError};

/// Handle to a device-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

/// Deterministic garbage filled into [`DeviceMem::alloc_uninit`] buffers,
/// so a kernel that consumes an uninitialized word without the sanitizer
/// on still gets a reproducible (and conspicuous) value.
const UNINIT_PATTERN: u32 = 0xDEAD_BEEF;

pub(crate) struct Buffer {
    /// Byte address of the first word in the flat device address space.
    base: u64,
    /// Words charged against device capacity: the requested length rounded
    /// up to the 256-byte allocation granularity, like `cudaMalloc`.
    padded_words: u64,
    data: Vec<AtomicU32>,
    name: String,
    /// Set by [`DeviceMem::free`]; the slot is retired for good so stale
    /// handles are caught even after the extent is reused.
    freed: bool,
    /// SimSan per-word init shadow: `None` means every word is `Init`
    /// (zeroed / copied-from-host buffers), `Some` tracks which words of
    /// an [`DeviceMem::alloc_uninit`] buffer have been written. Promotion
    /// to init happens on every store/RMW/fill, sanitizer on or off, so
    /// a later sanitized launch never false-positives on earlier writes.
    shadow: Option<Vec<AtomicBool>>,
}

/// The lane-facing word accessors live on `Buffer` rather than
/// [`DeviceMem`] so the record path can resolve a [`BufId`] to its
/// buffer once (`DeviceMem::buffer`) and keep the reference in a
/// per-lane cache — consecutive accesses to the same buffer, which is
/// the overwhelmingly common pattern in a scan or probe loop, then skip
/// the buffer-table chase entirely. The `DeviceMem::try_*` methods are
/// thin delegating wrappers.
impl Buffer {
    #[inline]
    fn mark_init(&self, idx: usize) {
        if let Some(shadow) = &self.shadow {
            if let Some(s) = shadow.get(idx) {
                s.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Out-of-bounds error construction, outlined and cold: the fault
    /// path allocates (it clones the buffer name), and keeping that code
    /// out of the inlined accessors is worth several percent on the
    /// record side of a sweep.
    #[cold]
    #[inline(never)]
    fn oob(&self, idx: usize) -> SimError {
        SimError::MemoryFault {
            buffer: self.name.clone(),
            index: idx,
            len: self.data.len(),
        }
    }

    #[inline]
    pub(crate) fn addr_of(&self, idx: usize) -> u64 {
        self.base + (idx as u64) * 4
    }

    #[inline]
    fn try_word(&self, idx: usize) -> Result<&AtomicU32, SimError> {
        match self.data.get(idx) {
            Some(w) => Ok(w),
            None => Err(self.oob(idx)),
        }
    }

    /// Load a word and return it together with its flat device address.
    /// One bounds check and no table lookup — this sits on the hottest
    /// path of the simulator (every `ld_global` of every lane).
    #[inline]
    pub(crate) fn try_load_addr(&self, idx: usize) -> Result<(u32, u64), SimError> {
        match self.data.get(idx) {
            Some(w) => Ok((w.load(Ordering::Relaxed), self.addr_of(idx))),
            None => Err(self.oob(idx)),
        }
    }

    #[inline]
    pub(crate) fn try_load(&self, idx: usize) -> Result<u32, SimError> {
        Ok(self.try_word(idx)?.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn try_store(&self, idx: usize, val: u32) -> Result<(), SimError> {
        self.try_word(idx)?.store(val, Ordering::Relaxed);
        self.mark_init(idx);
        Ok(())
    }

    #[inline]
    pub(crate) fn try_fetch_add(&self, idx: usize, val: u32) -> Result<u32, SimError> {
        let old = self.try_word(idx)?.fetch_add(val, Ordering::Relaxed);
        self.mark_init(idx);
        Ok(old)
    }

    #[inline]
    pub(crate) fn try_fetch_or(&self, idx: usize, val: u32) -> Result<u32, SimError> {
        let old = self.try_word(idx)?.fetch_or(val, Ordering::Relaxed);
        self.mark_init(idx);
        Ok(old)
    }

    #[inline]
    pub(crate) fn try_fetch_and(&self, idx: usize, val: u32) -> Result<u32, SimError> {
        let old = self.try_word(idx)?.fetch_and(val, Ordering::Relaxed);
        self.mark_init(idx);
        Ok(old)
    }

    #[inline]
    pub(crate) fn try_compare_exchange(
        &self,
        idx: usize,
        cur: u32,
        new: u32,
    ) -> Result<u32, SimError> {
        let old = match self.try_word(idx)?.compare_exchange(
            cur,
            new,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(old) | Err(old) => old,
        };
        self.mark_init(idx);
        Ok(old)
    }
}

/// The device's global-memory address space.
///
/// All words are `AtomicU32` so that blocks executing in parallel (on
/// rayon workers) can load, store and RMW concurrently, just like CUDA
/// thread blocks. Capacity is bounded by the owning [`Device`]'s
/// configuration; exceeding it yields [`SimError::OutOfMemory`], which is
/// how several published implementations fail on the largest graphs.
pub struct DeviceMem {
    buffers: Vec<Buffer>,
    capacity_words: u64,
    allocated_words: u64,
    next_base: u64,
    /// Freed address-space extents `(base_bytes, size_bytes)`, sorted by
    /// base and coalesced; allocations reuse them first-fit before
    /// bumping `next_base`.
    free_extents: Vec<(u64, u64)>,
}

/// Buffers are aligned to 256 bytes like `cudaMalloc` allocations, so a
/// buffer's element 0 always starts a fresh sector.
const ALLOC_ALIGN: u64 = 256;

impl DeviceMem {
    pub fn new(device: &Device) -> Self {
        DeviceMem {
            buffers: Vec::new(),
            capacity_words: device.config().global_mem_words,
            allocated_words: 0,
            next_base: 0,
            free_extents: Vec::new(),
        }
    }

    /// Words still available for allocation.
    pub fn available_words(&self) -> u64 {
        self.capacity_words - self.allocated_words
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> u64 {
        self.allocated_words
    }

    fn alloc_inner(&mut self, len: usize, name: &str) -> Result<BufId, SimError> {
        let words = len as u64;
        // Like `cudaMalloc`, every allocation occupies a 256-byte-aligned
        // extent, and the alignment padding counts against capacity too.
        let padded_bytes = (words * 4).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let padded_words = padded_bytes / 4;
        if padded_words > self.available_words() {
            return Err(SimError::OutOfMemory {
                what: name.to_string(),
                requested_words: words,
                available_words: self.available_words(),
            });
        }
        // First-fit into a freed extent, else bump the high-water mark.
        let base = match self
            .free_extents
            .iter()
            .position(|&(_, size)| size >= padded_bytes)
        {
            Some(i) => {
                let (ext_base, ext_size) = self.free_extents[i];
                if ext_size == padded_bytes {
                    self.free_extents.remove(i);
                } else {
                    self.free_extents[i] = (ext_base + padded_bytes, ext_size - padded_bytes);
                }
                ext_base
            }
            None => {
                let base = self.next_base;
                self.next_base = base + padded_bytes;
                base
            }
        };
        self.allocated_words += padded_words;
        self.buffers.push(Buffer {
            base,
            padded_words,
            data: Vec::new(),
            name: name.to_string(),
            freed: false,
            shadow: None,
        });
        Ok(BufId(self.buffers.len() - 1))
    }

    /// Allocate and copy a host slice to the device. Every word is
    /// host-defined, so the buffer is born fully `Init` for SimSan.
    pub fn alloc_from_slice(&mut self, data: &[u32], name: &str) -> Result<BufId, SimError> {
        let id = self.alloc_inner(data.len(), name)?;
        self.buffers[id.0].data = data.iter().map(|&w| AtomicU32::new(w)).collect();
        Ok(id)
    }

    /// Allocate a zero-filled buffer (`cudaMalloc` + `cudaMemset(0)`):
    /// fully `Init` for SimSan.
    pub fn alloc_zeroed(&mut self, len: usize, name: &str) -> Result<BufId, SimError> {
        let id = self.alloc_inner(len, name)?;
        self.buffers[id.0].data = (0..len).map(|_| AtomicU32::new(0)).collect();
        Ok(id)
    }

    /// Allocate without initializing — the honest `cudaMalloc` analog.
    /// Words hold a deterministic garbage pattern and are born `Uninit`
    /// in the SimSan shadow: a sanitized launch that reads one before
    /// any store reports [`SimError::Sanitizer`] with
    /// [`SanitizerKind::UninitRead`].
    pub fn alloc_uninit(&mut self, len: usize, name: &str) -> Result<BufId, SimError> {
        let id = self.alloc_inner(len, name)?;
        let buf = &mut self.buffers[id.0];
        buf.data = (0..len).map(|_| AtomicU32::new(UNINIT_PATTERN)).collect();
        buf.shadow = Some((0..len).map(|_| AtomicBool::new(false)).collect());
        Ok(id)
    }

    /// Free a buffer: capacity, contents *and* address space are all
    /// reclaimed (the extent returns to the free list, coalescing with
    /// neighbours, so a later allocation can reuse it). The handle (and
    /// any copy of it) must not be used afterwards; the slot keeps its
    /// base address so stale handles fail loudly on access.
    ///
    /// Freeing the same handle twice is refused with
    /// [`SimError::Sanitizer`] ([`SanitizerKind::DoubleFree`]) — before
    /// this check, a second free would re-push the extent onto the free
    /// list and under-count `allocated_words`, corrupting the allocator.
    /// This check is always on; it guards the harness's own accounting.
    pub fn free(&mut self, id: BufId) -> Result<(), SimError> {
        let buf = &mut self.buffers[id.0];
        if buf.freed {
            return Err(SimError::Sanitizer {
                kind: SanitizerKind::DoubleFree,
                buffer: buf.name.clone(),
                word: 0,
                lane: None,
                pc_hint: "host free".to_string(),
            });
        }
        let (mut base, mut size) = (buf.base, buf.padded_words * 4);
        self.allocated_words -= buf.padded_words;
        buf.padded_words = 0;
        buf.data = Vec::new();
        buf.shadow = None;
        buf.freed = true;
        buf.name.push_str(" (freed)");
        // Insert sorted by base, merging with the previous and next
        // extents when they touch.
        let at = self.free_extents.partition_point(|&(b, _)| b < base);
        if at < self.free_extents.len() && base + size == self.free_extents[at].0 {
            size += self.free_extents[at].1;
            self.free_extents.remove(at);
        }
        if at > 0 {
            let (pb, ps) = self.free_extents[at - 1];
            if pb + ps == base {
                base = pb;
                size += ps;
                self.free_extents.remove(at - 1);
            }
        }
        if base + size == self.next_base {
            // The extent touches the high-water mark: give the address
            // space back to the bump allocator instead.
            self.next_base = base;
        } else {
            let at = self.free_extents.partition_point(|&(b, _)| b < base);
            self.free_extents.insert(at, (base, size));
        }
        Ok(())
    }

    /// Copy a buffer back to the host. Copy-back from a freed buffer is a
    /// harness bug and panics (use [`DeviceMem::try_read_back`] to get a
    /// structured error instead).
    pub fn read_back(&self, id: BufId) -> Vec<u32> {
        match self.try_read_back(id) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible copy-back: a freed buffer yields [`SimError::Sanitizer`]
    /// with [`SanitizerKind::UseAfterFree`] (the dangling-`cudaMemcpy`
    /// case) instead of silently returning another buffer's bytes or an
    /// empty vector.
    pub fn try_read_back(&self, id: BufId) -> Result<Vec<u32>, SimError> {
        let buf = &self.buffers[id.0];
        if buf.freed {
            return Err(SimError::Sanitizer {
                kind: SanitizerKind::UseAfterFree,
                buffer: buf.name.clone(),
                word: 0,
                lane: None,
                pc_hint: "host copy-back".to_string(),
            });
        }
        Ok(buf.data.iter().map(|w| w.load(Ordering::Relaxed)).collect())
    }

    /// End-of-run leak check: every buffer must have been freed. Returns
    /// [`SimError::Sanitizer`] with [`SanitizerKind::Leak`] naming the
    /// still-live buffers otherwise. Like double-free detection this is
    /// not gated on the per-launch sanitizer toggle — the conformance
    /// harness calls it after every algorithm run.
    pub fn leak_check(&self) -> Result<(), SimError> {
        if self.allocated_words == 0 {
            return Ok(());
        }
        let live: Vec<&str> = self
            .buffers
            .iter()
            .filter(|b| !b.freed)
            .map(|b| b.name.as_str())
            .collect();
        Err(SimError::Sanitizer {
            kind: SanitizerKind::Leak,
            buffer: live.join(", "),
            word: self.allocated_words as usize,
            lane: None,
            pc_hint: "end-of-run leak check".to_string(),
        })
    }

    /// SimSan probe: where `idx` of `id` sits in the shadow lattice.
    #[inline]
    pub(crate) fn shadow_state(&self, id: BufId, idx: usize) -> ShadowState {
        let buf = &self.buffers[id.0];
        if buf.freed {
            return ShadowState::Freed;
        }
        if idx < buf.data.len() {
            return match &buf.shadow {
                None => ShadowState::Init,
                Some(shadow) => {
                    if shadow[idx].load(Ordering::Relaxed) {
                        ShadowState::Init
                    } else {
                        ShadowState::Uninit
                    }
                }
            };
        }
        if (idx as u64) < buf.padded_words {
            ShadowState::Redzone
        } else {
            ShadowState::OutOfBounds
        }
    }

    /// Number of words in a buffer.
    pub fn len(&self, id: BufId) -> usize {
        self.buffers[id.0].data.len()
    }

    /// Whether the buffer has zero words.
    pub fn is_empty(&self, id: BufId) -> bool {
        self.buffers[id.0].data.is_empty()
    }

    /// Host-side fill (no traffic counted) — the CUDA `cudaMemset`
    /// analog. Defines every word, so the whole buffer becomes `Init`.
    pub fn fill(&self, id: BufId, value: u32) {
        let buf = &self.buffers[id.0];
        for w in &buf.data {
            w.store(value, Ordering::Relaxed);
        }
        if let Some(shadow) = &buf.shadow {
            for s in shadow {
                s.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Debug name of the buffer.
    pub fn name(&self, id: BufId) -> &str {
        &self.buffers[id.0].name
    }

    #[inline]
    pub(crate) fn addr_of(&self, id: BufId, idx: usize) -> u64 {
        self.buffers[id.0].addr_of(idx)
    }

    /// Reverse lookup for diagnostics: which live buffer (and word index
    /// within it) owns a flat byte address. Only the *data* extent
    /// counts — redzone padding and freed extents resolve to `None`, so
    /// a diagnostic never names a buffer the address isn't really in.
    pub(crate) fn locate(&self, addr: u64) -> Option<(&str, usize)> {
        self.buffers.iter().find_map(|b| {
            if b.freed {
                return None;
            }
            let end = b.base + (b.data.len() as u64) * 4;
            if addr >= b.base && addr < end {
                Some((b.name.as_str(), ((addr - b.base) / 4) as usize))
            } else {
                None
            }
        })
    }

    /// Resolve a handle to its buffer. The record path caches the
    /// returned reference per lane (sound: every lane holds `&DeviceMem`
    /// for the whole launch, so the buffer table cannot change under it).
    #[inline]
    pub(crate) fn buffer(&self, id: BufId) -> &Buffer {
        &self.buffers[id.0]
    }

    /// Host-side word access: out of bounds is a harness bug, so it
    /// panics (like dereferencing a bad host pointer). Kernel lanes go
    /// through the fallible `try_*` accessors instead.
    #[cfg(test)]
    #[inline]
    pub(crate) fn word(&self, id: BufId, idx: usize) -> &AtomicU32 {
        let buf = &self.buffers[id.0];
        match buf.data.get(idx) {
            Some(w) => w,
            None => panic!(
                "device memory fault: `{}`[{idx}] out of bounds (len {})",
                buf.name,
                buf.data.len()
            ),
        }
    }

    #[inline]
    pub(crate) fn try_load(&self, id: BufId, idx: usize) -> Result<u32, SimError> {
        self.buffers[id.0].try_load(idx)
    }

    // Handle-keyed convenience wrappers for the buffer accessors above;
    // the lane path resolves the handle once via [`DeviceMem::buffer`]
    // instead, so only tests go through these.

    #[cfg(test)]
    #[inline]
    pub(crate) fn try_store(&self, id: BufId, idx: usize, val: u32) -> Result<(), SimError> {
        self.buffers[id.0].try_store(idx, val)
    }

    #[cfg(test)]
    #[inline]
    pub(crate) fn try_fetch_add(&self, id: BufId, idx: usize, val: u32) -> Result<u32, SimError> {
        self.buffers[id.0].try_fetch_add(idx, val)
    }

    #[cfg(test)]
    #[inline]
    pub(crate) fn try_fetch_or(&self, id: BufId, idx: usize, val: u32) -> Result<u32, SimError> {
        self.buffers[id.0].try_fetch_or(idx, val)
    }

    #[cfg(test)]
    #[inline]
    pub(crate) fn try_fetch_and(&self, id: BufId, idx: usize, val: u32) -> Result<u32, SimError> {
        self.buffers[id.0].try_fetch_and(idx, val)
    }

    #[cfg(test)]
    #[inline]
    pub(crate) fn try_compare_exchange(
        &self,
        id: BufId,
        idx: usize,
        cur: u32,
        new: u32,
    ) -> Result<u32, SimError> {
        self.buffers[id.0].try_compare_exchange(idx, cur, new)
    }

    #[cfg(test)]
    #[inline]
    pub(crate) fn load(&self, id: BufId, idx: usize) -> u32 {
        self.word(id, idx).load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn small_device() -> Device {
        Device::with_memory_words(1024)
    }

    #[test]
    fn alloc_and_read_back() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_from_slice(&[7, 8, 9], "t").unwrap();
        assert_eq!(mem.read_back(b), vec![7, 8, 9]);
        assert_eq!(mem.len(b), 3);
        assert!(!mem.is_empty(b));
        assert_eq!(mem.name(b), "t");
    }

    #[test]
    fn capacity_enforced() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        // 1000 words pad to a 4096-byte extent = all 1024 words of the
        // device; alignment padding counts against capacity like it does
        // for `cudaMalloc`.
        mem.alloc_zeroed(1000, "big").unwrap();
        let err = mem.alloc_zeroed(100, "overflow").unwrap_err();
        match err {
            SimError::OutOfMemory {
                requested_words,
                available_words,
                ..
            } => {
                assert_eq!(requested_words, 100);
                assert_eq!(available_words, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn alignment_padding_charged() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        // A 1-word buffer still occupies a 256-byte extent (64 words).
        mem.alloc_zeroed(1, "tiny").unwrap();
        assert_eq!(mem.allocated_words(), 64);
        assert_eq!(mem.available_words(), 1024 - 64);
    }

    #[test]
    fn free_returns_capacity() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(1000, "big").unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.allocated_words(), 0);
        mem.alloc_zeroed(1000, "again").unwrap();
    }

    #[test]
    fn double_free_is_refused_and_accounting_survives() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(64, "scratch").unwrap();
        mem.free(b).unwrap();
        let err = mem.free(b).unwrap_err();
        match err {
            SimError::Sanitizer {
                kind, buffer, lane, ..
            } => {
                assert_eq!(kind, SanitizerKind::DoubleFree);
                assert_eq!(buffer, "scratch (freed)");
                assert_eq!(lane, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The failed second free must not have corrupted the books: the
        // whole device is still allocatable exactly once.
        assert_eq!(mem.allocated_words(), 0);
        mem.alloc_zeroed(1000, "all").unwrap();
        assert!(mem.alloc_zeroed(64, "over").is_err());
    }

    #[test]
    fn freed_marker_does_not_grow_across_reuse_cycles() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(64, "cyc").unwrap();
        mem.free(b).unwrap();
        for _ in 0..10 {
            assert!(mem.free(b).is_err());
        }
        assert_eq!(mem.name(b), "cyc (freed)");
    }

    #[test]
    fn uninit_alloc_carries_shadow_and_writes_promote() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_uninit(4, "raw").unwrap();
        assert_eq!(mem.read_back(b), vec![UNINIT_PATTERN; 4]);
        assert_eq!(mem.shadow_state(b, 0), ShadowState::Uninit);
        mem.try_store(b, 0, 7).unwrap();
        assert_eq!(mem.shadow_state(b, 0), ShadowState::Init);
        assert_eq!(mem.shadow_state(b, 1), ShadowState::Uninit);
        mem.try_fetch_add(b, 1, 1).unwrap();
        assert_eq!(mem.shadow_state(b, 1), ShadowState::Init);
        mem.fill(b, 0);
        assert_eq!(mem.shadow_state(b, 3), ShadowState::Init);
    }

    #[test]
    fn shadow_states_cover_redzone_freed_and_oob() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        // 4 words pad to a 64-word extent: [4, 64) is redzone.
        let b = mem.alloc_zeroed(4, "z").unwrap();
        assert_eq!(mem.shadow_state(b, 3), ShadowState::Init);
        assert_eq!(mem.shadow_state(b, 4), ShadowState::Redzone);
        assert_eq!(mem.shadow_state(b, 63), ShadowState::Redzone);
        assert_eq!(mem.shadow_state(b, 64), ShadowState::OutOfBounds);
        mem.free(b).unwrap();
        assert_eq!(mem.shadow_state(b, 0), ShadowState::Freed);
        assert_eq!(mem.shadow_state(b, 999), ShadowState::Freed);
    }

    #[test]
    fn copy_back_from_freed_buffer_is_caught() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(4, "gone").unwrap();
        mem.free(b).unwrap();
        let err = mem.try_read_back(b).unwrap_err();
        assert!(matches!(
            err,
            SimError::Sanitizer {
                kind: SanitizerKind::UseAfterFree,
                lane: None,
                ..
            }
        ));
    }

    #[test]
    fn leak_check_names_live_buffers() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        assert!(mem.leak_check().is_ok());
        let a = mem.alloc_zeroed(4, "kept").unwrap();
        let b = mem.alloc_zeroed(4, "dropped").unwrap();
        mem.free(b).unwrap();
        let err = mem.leak_check().unwrap_err();
        match err {
            SimError::Sanitizer {
                kind, buffer, word, ..
            } => {
                assert_eq!(kind, SanitizerKind::Leak);
                assert_eq!(buffer, "kept");
                assert_eq!(word, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        mem.free(a).unwrap();
        assert!(mem.leak_check().is_ok());
    }

    #[test]
    fn free_reclaims_address_space() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        // Regression: repeated alloc/free cycles used to leak address
        // space (the bump pointer only ever grew), so a fresh allocation
        // after a free landed at an ever-higher base.
        let a = mem.alloc_zeroed(512, "a").unwrap();
        let base_a = mem.addr_of(a, 0);
        mem.free(a).unwrap();
        for round in 0..100 {
            let b = mem.alloc_zeroed(512, "b").unwrap();
            assert_eq!(
                mem.addr_of(b, 0),
                base_a,
                "round {round}: freed extent not reused"
            );
            mem.free(b).unwrap();
        }
    }

    #[test]
    fn freed_neighbours_coalesce() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let a = mem.alloc_zeroed(64, "a").unwrap();
        let b = mem.alloc_zeroed(64, "b").unwrap();
        let c = mem.alloc_zeroed(64, "c").unwrap();
        let base_a = mem.addr_of(a, 0);
        let base_c = mem.addr_of(c, 0);
        // Free a and b in either order: their extents merge, so a single
        // 128-word allocation fits where two 64-word buffers were.
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        let big = mem.alloc_zeroed(128, "big").unwrap();
        assert_eq!(mem.addr_of(big, 0), base_a);
        // c is still live and untouched.
        assert_eq!(mem.addr_of(c, 0), base_c);
        assert_eq!(mem.read_back(c), vec![0; 64]);
    }

    #[test]
    fn freeing_top_extent_rewinds_bump_pointer() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let a = mem.alloc_zeroed(64, "a").unwrap();
        let b = mem.alloc_zeroed(64, "b").unwrap();
        mem.free(b).unwrap();
        // b was the topmost extent, so its space rejoins the bump region
        // and the next same-size allocation lands exactly where b was.
        let b2 = mem.alloc_zeroed(64, "b2").unwrap();
        assert_eq!(mem.addr_of(b2, 0), mem.addr_of(a, 0) + 256);
    }

    #[test]
    fn buffers_start_sector_aligned() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let a = mem.alloc_from_slice(&[1], "a").unwrap();
        let b = mem.alloc_from_slice(&[2], "b").unwrap();
        assert_eq!(mem.addr_of(a, 0) % ALLOC_ALIGN, 0);
        assert_eq!(mem.addr_of(b, 0) % ALLOC_ALIGN, 0);
        assert_ne!(mem.addr_of(a, 0), mem.addr_of(b, 0));
    }

    #[test]
    fn locate_resolves_data_words_but_not_redzone_or_freed() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let a = mem.alloc_zeroed(4, "a").unwrap();
        let b = mem.alloc_zeroed(4, "b").unwrap();
        assert_eq!(mem.locate(mem.addr_of(a, 0)), Some(("a", 0)));
        assert_eq!(mem.locate(mem.addr_of(a, 3) + 2), Some(("a", 3)));
        assert_eq!(mem.locate(mem.addr_of(b, 1)), Some(("b", 1)));
        // Redzone (words [4, 64) of the padded extent) is nobody's data.
        assert_eq!(mem.locate(mem.addr_of(a, 0) + 4 * 4), None);
        mem.free(a).unwrap();
        assert_eq!(mem.locate(0), None);
        // A reused extent resolves to the new owner, not the freed one.
        let c = mem.alloc_zeroed(4, "c").unwrap();
        assert_eq!(mem.locate(mem.addr_of(c, 0)), Some(("c", 0)));
    }

    #[test]
    fn fill_overwrites_all_words() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_from_slice(&[1, 2, 3], "t").unwrap();
        mem.fill(b, 9);
        assert_eq!(mem.read_back(b), vec![9, 9, 9]);
    }

    #[test]
    fn atomics_behave() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(2, "t").unwrap();
        assert_eq!(mem.try_fetch_add(b, 0, 5).unwrap(), 0);
        assert_eq!(mem.try_fetch_add(b, 0, 5).unwrap(), 5);
        assert_eq!(mem.try_fetch_or(b, 1, 0b10).unwrap(), 0);
        assert_eq!(mem.try_fetch_and(b, 1, 0b10).unwrap(), 0b10);
        assert_eq!(mem.try_compare_exchange(b, 0, 10, 99).unwrap(), 10);
        assert_eq!(mem.load(b, 0), 99);
        assert_eq!(mem.try_compare_exchange(b, 0, 10, 50).unwrap(), 99);
        assert_eq!(mem.load(b, 0), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let dev = small_device();
        let mut mem = DeviceMem::new(&dev);
        let b = mem.alloc_zeroed(2, "t").unwrap();
        mem.load(b, 2);
    }
}
