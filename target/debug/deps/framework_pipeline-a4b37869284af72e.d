/root/repo/target/debug/deps/framework_pipeline-a4b37869284af72e.d: tests/framework_pipeline.rs

/root/repo/target/debug/deps/framework_pipeline-a4b37869284af72e: tests/framework_pipeline.rs

tests/framework_pipeline.rs:
