//! Sweep microbenchmark: host wall-clock time of the evaluation engine.
//!
//! Runs every registered algorithm over the selected datasets
//! (default: Wiki-Talk, the medium R-MAT stand-in) `--reps` times and
//! reports, per cell, the best host wall time plus the modelled kernel
//! cycles. This measures the *simulator's* speed — the bottleneck of the
//! full Table III sweep — not the modelled device time, which is
//! deterministic and pinned by the snapshot tests.
//!
//! ```sh
//! cargo run --release -p tc-bench --bin bench_sweep -- \
//!     [dataset-name... | --small | --medium] [--serial] [--reps N] \
//!     [--backend sim|cpu|both] [--devices N] \
//!     [--bench-json PATH] [--check-baseline PATH]
//! ```
//!
//! `--backend` selects the execution substrate: `sim` (default) runs the
//! cycle-modelled simulator, `cpu` runs each algorithm's native rayon
//! host kernel (kernel cycles report 0 — the CPU path models nothing),
//! and `both` sweeps the two back to back for a differential wall-clock
//! comparison. Mixed-backend JSON output tags every record with its
//! backend; pure-sim output keeps the historical schema.
//!
//! `--devices N` (default 1) runs the sim backend partitioned over N
//! simulated devices (see `tc_core::framework::partitioned`); cycle
//! figures are then per-cell makespans. At the default `--devices 1`
//! every code path, record and output byte is identical to builds
//! without the flag.
//!
//! `--bench-json` writes the machine-readable trajectory file (see
//! `tc_bench::bench_json`); committing it as `BENCH_sim.json` records the
//! perf baseline future PRs regress against. `--check-baseline` regresses
//! this run against such a committed file: any overlapping cell whose
//! deterministic `kernel_cycles` exceeds the baseline by more than 25%
//! fails the run (exit 1); wall-clock drift is reported as advisory only,
//! because host timing varies across machines. This is the CI
//! bench-smoke regression gate.

use std::time::Instant;

use gpu_sim::Device;
use tc_bench::bench_json::{self, BenchCell};
use tc_bench::{datasets_from_args, eprint_progress};
use tc_core::framework::backend::{
    run_matrix_backends, run_matrix_backends_parallel, Backend, CpuBackend, SimBackend,
};
use tc_core::framework::partitioned::PartitionedSimBackend;
use tc_core::framework::registry::all_algorithms;
use tc_core::framework::runner::RunRecord;

fn main() -> Result<(), String> {
    let mut reps: u32 = 3;
    let mut serial = false;
    let mut backend_arg = "sim".to_string();
    let mut devices: u32 = 1;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut dataset_args: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => serial = true,
            "--backend" => {
                backend_arg = args.next().ok_or("--backend needs sim|cpu|both")?;
            }
            "--devices" => {
                devices = args
                    .next()
                    .ok_or("--devices needs a value")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?;
                if devices == 0 {
                    return Err("--devices must be at least 1".to_string());
                }
            }
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
            }
            "--bench-json" => {
                json_path = Some(args.next().ok_or("--bench-json needs a path")?);
            }
            "--check-baseline" => {
                baseline_path = Some(args.next().ok_or("--check-baseline needs a path")?);
            }
            other => dataset_args.push(other.to_string()),
        }
    }
    if dataset_args.is_empty() {
        dataset_args.push("Wiki-Talk".to_string());
    }
    let datasets = datasets_from_args(&dataset_args)?;
    let algos = all_algorithms();
    let dev = Device::v100();
    let sim = SimBackend { dev: &dev };
    let part = PartitionedSimBackend {
        dev: &dev,
        num_devices: devices,
    };
    // `--devices 1` stays on the plain sim backend so its records and
    // JSON are byte-identical to builds without the flag.
    let sim_backend: &dyn Backend = if devices > 1 { &part } else { &sim };
    let backends: Vec<&dyn Backend> = match backend_arg.as_str() {
        "sim" => vec![sim_backend],
        "cpu" => vec![&CpuBackend],
        "both" => vec![sim_backend, &CpuBackend],
        other => return Err(format!("--backend must be sim|cpu|both, got `{other}`")),
    };
    let mode = if serial { "serial" } else { "parallel" };
    eprint_progress(&format!(
        "bench_sweep: {} algorithms x {} datasets x {} backend(s) ({backend_arg}), \
         {reps} rep(s), {mode}",
        algos.len(),
        datasets.len(),
        backends.len(),
    ));

    let run = |label: &str| -> Vec<RunRecord> {
        let started = Instant::now();
        let records = if serial {
            run_matrix_backends(&backends, &algos, &datasets)
        } else {
            run_matrix_backends_parallel(&backends, &algos, &datasets)
        };
        eprint_progress(&format!(
            "{label}: {:.1} ms",
            started.elapsed().as_secs_f64() * 1e3
        ));
        records
    };

    let total_started = Instant::now();
    let first = run("rep 1");
    let mut cells = BenchCell::from_records(&first);
    for rep in 1..reps {
        let records = run(&format!("rep {}", rep + 1));
        BenchCell::merge_min_wall(&mut cells, &records);
    }
    let total_wall_ms = total_started.elapsed().as_secs_f64() * 1e3;

    let multi = backends.len() > 1;
    println!(
        "{:<12} {:<18} {:<7} {:>10} {:>14} {:>9}",
        "algorithm",
        "dataset",
        if multi { "backend" } else { "" },
        "wall ms",
        "kernel cycles",
        "outcome"
    );
    for c in &cells {
        println!(
            "{:<12} {:<18} {:<7} {:>10.3} {:>14} {:>9}",
            c.algorithm,
            c.dataset,
            if multi { c.backend } else { "" },
            c.wall_ms,
            c.kernel_cycles,
            if c.outcome == "ok" && c.verified {
                "ok"
            } else {
                c.outcome
            }
        );
    }
    let sweep_wall: f64 = cells.iter().map(|c| c.wall_ms).sum();
    println!("best-rep sweep wall (sum of cells): {sweep_wall:.1} ms");
    println!("total harness wall ({reps} reps):   {total_wall_ms:.1} ms");

    if let Some(path) = json_path {
        let text = bench_json::render("V100", reps, total_wall_ms, &cells);
        bench_json::validate(&text).map_err(|e| format!("internal: emitted bad JSON: {e}"))?;
        std::fs::write(&path, &text).map_err(|e| format!("write {path}: {e}"))?;
        eprint_progress(&format!("wrote {path}"));
    }

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).map_err(|e| format!("read baseline {path}: {e}"))?;
        let report = bench_json::compare_to_baseline(&baseline, &cells, 0.25)
            .map_err(|e| format!("baseline check against {path}: {e}"))?;
        for adv in &report.advisories {
            eprint_progress(&format!("advisory: {adv}"));
        }
        if report.passed() {
            eprint_progress(&format!(
                "baseline check vs {path}: {} cell(s) within the +25% kernel-cycle band",
                report.compared,
            ));
        } else {
            for f in &report.failures {
                eprintln!("REGRESSION: {f}");
            }
            return Err(format!(
                "baseline check vs {path} failed: {} regression(s) in {} compared cell(s)",
                report.failures.len(),
                report.compared,
            ));
        }
    }
    Ok(())
}
