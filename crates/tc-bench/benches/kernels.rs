//! Criterion bench behind Figures 11/12/13: every algorithm end-to-end
//! on a small and a mid-sized power-law fixture. Wall time here measures
//! the simulation, but since the simulator executes the kernels' real
//! access patterns, the relative ordering tracks the modelled kernel
//! cycles the figure binaries report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpu_sim::{Device, DeviceMem};
use graph_data::{clean_edges, gen, orient, DagGraph, Orientation};
use tc_algos::device_graph::DeviceGraph;
use tc_core::framework::registry::all_algorithms;

fn fixture(scale: u32, edges: usize, seed: u64) -> (Device, DagGraph) {
    let raw = gen::rmat(scale, edges, 0.57, 0.19, 0.19, 0.05, seed);
    let (g, _) = clean_edges(&raw);
    (Device::v100(), orient(&g, Orientation::DegreeAsc))
}

fn bench_all_kernels(c: &mut Criterion) {
    let fixtures = [
        ("small-12k", fixture(12, 12_000, 21)),
        ("mid-60k", fixture(14, 60_000, 22)),
    ];
    let mut group = c.benchmark_group("fig11_runtime");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (fname, (dev, dag)) in &fixtures {
        for algo in all_algorithms() {
            // Each algorithm may prefer a different orientation, but the
            // fixture is power-law either way; reuse the DegreeAsc DAG.
            group.bench_with_input(
                BenchmarkId::new(algo.name(), fname),
                &(dev, dag),
                |b, (dev, dag)| {
                    b.iter(|| {
                        let mut mem = DeviceMem::new(dev);
                        let dg = DeviceGraph::upload(dag, &mut mem).expect("upload");
                        algo.count(dev, &mut mem, &dg).expect("count").triangles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_all_kernels);
criterion_main!(benches);
