/root/repo/target/release/deps/diag-cf32990188c5464f.d: crates/tc-bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-cf32990188c5464f: crates/tc-bench/src/bin/diag.rs

crates/tc-bench/src/bin/diag.rs:
