/root/repo/target/debug/deps/fig12-897d92747fd9a405.d: crates/tc-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-897d92747fd9a405.rmeta: crates/tc-bench/src/bin/fig12.rs

crates/tc-bench/src/bin/fig12.rs:
