//! Exact CPU triangle counters used as ground truth for every GPU run,
//! plus the two non-intersection baselines sketched in the paper's
//! Section II (matrix multiplication and subgraph matching).

mod baselines;
mod intersect;
mod itc;

pub use baselines::{matmul_count, node_iterator, subgraph_match};
pub use intersect::{intersect_binsearch, intersect_bitmap, intersect_hash, intersect_merge};
pub use itc::{
    binsearch_count, bitmap_count, forward_merge, forward_merge_parallel, hash_count,
    per_edge_supports,
};
