/root/repo/target/debug/deps/rand-54e57c67bda5596a.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-54e57c67bda5596a: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
