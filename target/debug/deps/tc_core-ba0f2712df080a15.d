/root/repo/target/debug/deps/tc_core-ba0f2712df080a15.d: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libtc_core-ba0f2712df080a15.rmeta: crates/tc-core/src/lib.rs crates/tc-core/src/framework/mod.rs crates/tc-core/src/framework/claims.rs crates/tc-core/src/framework/csv.rs crates/tc-core/src/framework/registry.rs crates/tc-core/src/framework/report.rs crates/tc-core/src/framework/runner.rs crates/tc-core/src/grouptc.rs crates/tc-core/src/grouptc_hybrid.rs Cargo.toml

crates/tc-core/src/lib.rs:
crates/tc-core/src/framework/mod.rs:
crates/tc-core/src/framework/claims.rs:
crates/tc-core/src/framework/csv.rs:
crates/tc-core/src/framework/registry.rs:
crates/tc-core/src/framework/report.rs:
crates/tc-core/src/framework/runner.rs:
crates/tc-core/src/grouptc.rs:
crates/tc-core/src/grouptc_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
