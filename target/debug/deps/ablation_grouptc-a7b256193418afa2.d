/root/repo/target/debug/deps/ablation_grouptc-a7b256193418afa2.d: crates/tc-bench/src/bin/ablation_grouptc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_grouptc-a7b256193418afa2.rmeta: crates/tc-bench/src/bin/ablation_grouptc.rs Cargo.toml

crates/tc-bench/src/bin/ablation_grouptc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
