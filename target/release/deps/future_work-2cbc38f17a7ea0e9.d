/root/repo/target/release/deps/future_work-2cbc38f17a7ea0e9.d: crates/tc-bench/src/bin/future_work.rs

/root/repo/target/release/deps/future_work-2cbc38f17a7ea0e9: crates/tc-bench/src/bin/future_work.rs

crates/tc-bench/src/bin/future_work.rs:
