/root/repo/target/debug/deps/orientation_study-495ef8b13c937b8c.d: crates/tc-bench/src/bin/orientation_study.rs

/root/repo/target/debug/deps/orientation_study-495ef8b13c937b8c: crates/tc-bench/src/bin/orientation_study.rs

crates/tc-bench/src/bin/orientation_study.rs:
