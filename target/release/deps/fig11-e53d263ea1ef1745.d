/root/repo/target/release/deps/fig11-e53d263ea1ef1745.d: crates/tc-bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-e53d263ea1ef1745: crates/tc-bench/src/bin/fig11.rs

crates/tc-bench/src/bin/fig11.rs:
