/root/repo/target/debug/examples/device_comparison-038a1658793019a7.d: examples/device_comparison.rs

/root/repo/target/debug/examples/device_comparison-038a1658793019a7: examples/device_comparison.rs

examples/device_comparison.rs:
