/root/repo/target/debug/deps/proptest_invariants-c3f662f9d372e8ab.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-c3f662f9d372e8ab.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
