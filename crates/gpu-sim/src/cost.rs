/// Cycle costs charged per issued warp-instruction slot.
///
/// Slot costs are *visible-latency* scale (what a dependent instruction
/// chain experiences after intra-warp overlap), not raw throughput: a
/// merge whose next load depends on the previous comparison pays the
/// cache round-trip each step, which is exactly why Polak's long
/// straggler lanes dominate warp time on large graphs. Device-level
/// latency hiding across warps is modelled by the block-level wave
/// scheduler plus the DRAM bandwidth floor, so the absolute values
/// matter less than the ratios; they are loosely calibrated to a Tesla
/// V100 (cheap ALU, ~30-cycle L1, a few hundred cycles to DRAM, 32-byte
/// sectors on the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per arithmetic warp instruction.
    pub compute: u64,
    /// Cycles for a global load slot fully served by the L1 model.
    pub global_hit: u64,
    /// Extra cycles per additional L1 wavefront: a divergent request
    /// touching k sectors occupies the LSU/L1 pipe for ~k cycles even
    /// when every sector hits.
    pub l1_wavefront: u64,
    /// Base cycles for a global load/store slot that misses to DRAM.
    pub global_issue: u64,
    /// Additional cycles per 32-byte DRAM sector transferred.
    pub global_sector: u64,
    /// Cycles per shared-memory access slot (conflict-free).
    pub shared_access: u64,
    /// Extra cycles per additional shared-memory bank conflict way.
    pub shared_conflict: u64,
    /// Base cycles per global atomic slot.
    pub global_atomic: u64,
    /// Extra cycles per same-address collision way of a global atomic.
    pub global_atomic_conflict: u64,
    /// Base cycles per shared atomic slot.
    pub shared_atomic: u64,
    /// Extra cycles per same-address collision way of a shared atomic.
    pub shared_atomic_conflict: u64,
    /// Device-wide DRAM bandwidth: 32-byte sectors the memory system can
    /// deliver per cycle (V100: ~900 GB/s at 1.38 GHz ≈ 20 sectors).
    /// Kernel time is floored at `total_sectors / dram_sectors_per_cycle`
    /// — triangle counting is memory-bound, as the paper stresses.
    pub dram_sectors_per_cycle: u64,
    /// Inter-device interconnect bandwidth: bytes per (reference) cycle a
    /// device can pull from a peer in a multi-GPU run. V100 assumes an
    /// NVLink 2.0 brick (~25 GB/s per direction at 1.38 GHz ≈ 18 B/cy);
    /// the 4090 has no NVLink and is stuck with PCIe 4.0 x16
    /// (~25 GB/s shared ≈ 10 B/cy at the reference clock).
    pub link_bytes_per_cycle: u64,
    /// Fixed per-transfer latency (cycles) of an inter-device pull: DMA
    /// setup plus the first-byte round trip over the link.
    pub link_latency: u64,
}

impl CostModel {
    /// V100-flavoured defaults.
    pub const fn v100() -> Self {
        CostModel {
            compute: 2,
            global_hit: 30,
            l1_wavefront: 2,
            global_issue: 150,
            global_sector: 16,
            shared_access: 25,
            shared_conflict: 8,
            global_atomic: 120,
            global_atomic_conflict: 40,
            shared_atomic: 30,
            shared_atomic_conflict: 10,
            dram_sectors_per_cycle: 20,
            link_bytes_per_cycle: 18,
            link_latency: 2_000,
        }
    }

    /// RTX 4090 (Ada)-flavoured costs, scaled off [`CostModel::v100`]
    /// with the same single-clock-domain convention (kernel time is
    /// reported by `cycles_to_ms` at the V100 reference clock, so the
    /// higher boost clock of Ada is folded into cheaper slots here):
    ///
    /// * ALU and shared memory are markedly cheaper — Ada's ~2.5 GHz
    ///   boost clock and 128 KB unified L1/shared per SM cut both the
    ///   visible ALU latency and the shared round-trip roughly in half
    ///   relative to the 1.38 GHz reference clock.
    /// * L1 hits are cheaper and divergent wavefronts drain faster (the
    ///   4090's L1 bandwidth per SM is about twice Volta's).
    /// * DRAM round-trip latency in reference cycles stays V100-like
    ///   (GDDR6X latency is no better than HBM2), but the *bandwidth*
    ///   floor is looser: ~1 TB/s at the reference clock is ~24 sectors
    ///   per cycle, and the 72 MB L2 absorbs enough re-reads that the
    ///   effective sectors-per-cycle the floor sees is higher still; we
    ///   use 28.
    /// * Atomics benefit from the larger L2 slice count: cheaper base
    ///   cost and milder same-address serialization.
    pub const fn rtx4090() -> Self {
        CostModel {
            compute: 1,
            global_hit: 18,
            l1_wavefront: 1,
            global_issue: 140,
            global_sector: 12,
            shared_access: 12,
            shared_conflict: 4,
            global_atomic: 80,
            global_atomic_conflict: 24,
            shared_atomic: 16,
            shared_atomic_conflict: 6,
            dram_sectors_per_cycle: 28,
            link_bytes_per_cycle: 10,
            link_latency: 5_000,
        }
    }

    /// Cost of a global load slot addressing `total_sectors` distinct
    /// sectors of which `miss_sectors` went to DRAM: the L1 pipe
    /// serializes one wavefront per sector (even on hits), and any miss
    /// adds the DRAM round-trip plus per-sector transfer.
    #[inline]
    pub fn global_load_slot(&self, total_sectors: u64, miss_sectors: u64) -> u64 {
        let l1 = self.global_hit + self.l1_wavefront * total_sectors.saturating_sub(1);
        if miss_sectors == 0 {
            l1
        } else {
            l1 + self.global_issue + self.global_sector * miss_sectors
        }
    }

    /// Cost of a global store slot (write-through; no hit path).
    #[inline]
    pub fn global_slot(&self, sectors: u64) -> u64 {
        if sectors == 0 {
            self.global_hit
        } else {
            self.global_issue + self.global_sector * sectors
        }
    }

    /// Cost of a shared load/store slot with a `ways`-way bank conflict
    /// (`ways == 1` means conflict-free).
    #[inline]
    pub fn shared_slot(&self, ways: u64) -> u64 {
        self.shared_access + self.shared_conflict * ways.saturating_sub(1)
    }

    /// Cost of a global atomic slot whose worst single-address collision
    /// depth within the warp is `depth`.
    #[inline]
    pub fn global_atomic_slot(&self, depth: u64) -> u64 {
        self.global_atomic + self.global_atomic_conflict * depth.max(1).saturating_sub(1)
    }

    /// Cost of a shared atomic slot.
    #[inline]
    pub fn shared_atomic_slot(&self, depth: u64) -> u64 {
        self.shared_atomic + self.shared_atomic_conflict * depth.max(1).saturating_sub(1)
    }

    /// Cycles to pull `bytes` from a peer device over the interconnect:
    /// fixed setup latency plus the bandwidth term. Zero bytes cost
    /// nothing (no transfer is issued).
    #[inline]
    pub fn link_transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            self.link_latency + bytes.div_ceil(self.link_bytes_per_cycle.max(1))
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_load_cheaper_than_scattered() {
        let m = CostModel::v100();
        assert!(m.global_slot(1) < m.global_slot(32));
    }

    #[test]
    fn l1_hits_are_much_cheaper_than_misses() {
        let m = CostModel::v100();
        assert!(m.global_slot(0) * 4 < m.global_slot(1));
    }

    #[test]
    fn conflict_free_shared_is_base_cost() {
        let m = CostModel::v100();
        assert_eq!(m.shared_slot(1), m.shared_access);
        assert_eq!(m.shared_slot(0), m.shared_access);
        assert!(m.shared_slot(4) > m.shared_slot(1));
    }

    #[test]
    fn atomic_collision_depth_scales_cost() {
        let m = CostModel::v100();
        assert_eq!(m.global_atomic_slot(0), m.global_atomic);
        assert_eq!(m.global_atomic_slot(1), m.global_atomic);
        assert!(m.global_atomic_slot(32) > m.global_atomic_slot(1));
        assert!(m.shared_atomic_slot(8) > m.shared_atomic_slot(1));
    }

    #[test]
    fn shared_cheaper_than_global_miss() {
        let m = CostModel::v100();
        assert!(m.shared_slot(1) < m.global_slot(1));
    }

    #[test]
    fn rtx4090_is_a_distinct_faster_model() {
        let v = CostModel::v100();
        let a = CostModel::rtx4090();
        assert_ne!(a, v);
        // Ada: cheaper ALU/shared/L1, looser bandwidth floor...
        assert!(a.compute < v.compute);
        assert!(a.shared_slot(1) < v.shared_slot(1));
        assert!(a.global_load_slot(4, 0) < v.global_load_slot(4, 0));
        assert!(a.dram_sectors_per_cycle > v.dram_sectors_per_cycle);
        assert!(a.global_atomic_slot(32) < v.global_atomic_slot(32));
        // ...but no miracle on DRAM round-trip latency.
        assert!(a.global_issue >= v.global_issue * 9 / 10);
        // The 4090's PCIe link is slower than the V100's NVLink.
        assert!(a.link_bytes_per_cycle < v.link_bytes_per_cycle);
    }

    #[test]
    fn link_transfer_charges_latency_plus_bandwidth() {
        let m = CostModel::v100();
        assert_eq!(m.link_transfer_cycles(0), 0);
        assert_eq!(m.link_transfer_cycles(1), m.link_latency + 1);
        let big = m.link_transfer_cycles(1 << 20);
        assert_eq!(
            big,
            m.link_latency + (1u64 << 20).div_ceil(m.link_bytes_per_cycle)
        );
        // Bandwidth-bound asymptotically: doubling bytes roughly doubles
        // the bandwidth term.
        assert!(m.link_transfer_cycles(2 << 20) > big + (big - m.link_latency) / 2);
    }
}
