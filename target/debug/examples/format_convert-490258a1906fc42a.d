/root/repo/target/debug/examples/format_convert-490258a1906fc42a.d: examples/format_convert.rs Cargo.toml

/root/repo/target/debug/examples/libformat_convert-490258a1906fc42a.rmeta: examples/format_convert.rs Cargo.toml

examples/format_convert.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
