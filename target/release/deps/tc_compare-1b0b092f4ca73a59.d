/root/repo/target/release/deps/tc_compare-1b0b092f4ca73a59.d: src/lib.rs

/root/repo/target/release/deps/libtc_compare-1b0b092f4ca73a59.rlib: src/lib.rs

/root/repo/target/release/deps/libtc_compare-1b0b092f4ca73a59.rmeta: src/lib.rs

src/lib.rs:
