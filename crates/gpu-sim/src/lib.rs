//! # gpu-sim — a deterministic SIMT GPU simulator
//!
//! This crate stands in for the CUDA runtime and an NVIDIA GPU in the
//! reproduction of *"A Comparative Study of Intersection-Based Triangle
//! Counting Algorithms on GPUs"*. Kernels are written as ordinary Rust
//! closures against a [`LaneCtx`] API; they execute **eagerly** against real
//! data (so results are exact) while recording a per-lane *operation trace*.
//! The traces of the 32 lanes of a warp are then replayed in lockstep to
//! account for the three hardware effects the paper analyses:
//!
//! 1. **Total amount of work** — every global/shared access and compute step
//!    is counted.
//! 2. **Workload imbalance** — lanes whose traces are shorter than their
//!    warp siblings' sit idle, lowering `warp_execution_efficiency`
//!    (average active lanes per issued warp instruction / 32), exactly the
//!    SIMD divergence stall the paper describes.
//! 3. **Memory access pattern** — the addresses a warp issues in one step
//!    are grouped into 32-byte sectors; scattered per-lane scans touch ~32
//!    sectors per request while strided cooperative probing touches 1-2,
//!    reproducing `gld_transactions_per_request`.
//!
//! A [`CostModel`] converts issued slots into cycles and a wave scheduler
//! maps blocks onto streaming multiprocessors, yielding a kernel "time"
//! that is deterministic and hardware-independent.
//!
//! ## Execution model
//!
//! A launch is a grid of independent blocks (run in parallel with rayon,
//! mirroring CUDA's independence guarantee). A block runs as a sequence of
//! **phases** separated by `__syncthreads()`-equivalent barriers
//! ([`BlockCtx::phase`]). Within a phase each lane runs to completion in
//! lane order, so cooperative fill-then-use of shared memory across a
//! barrier is deterministic. Reading a value another lane wrote in the
//! *same* phase is a data race in CUDA and is unsupported here too: the
//! phase-based race detector (see [`race`](crate::RaceKind) and
//! [`KernelConfig::with_race_detection`]) turns such conflicts into
//! [`SimError::DataRace`] failures instead of silently reporting whichever
//! interleaving the sequential lane order happened to produce.
//!
//! ```
//! use gpu_sim::{Device, DeviceMem, KernelConfig};
//!
//! let dev = Device::v100();
//! let mut mem = DeviceMem::new(&dev);
//! let input = mem.alloc_from_slice(&[1, 2, 3, 4], "input").unwrap();
//! let output = mem.alloc_zeroed(4, "output").unwrap();
//!
//! let cfg = KernelConfig::new(1, 32);
//! let stats = dev.launch(&mem, cfg, |blk| {
//!     blk.phase(|lane| {
//!         let tid = lane.tid() as usize;
//!         if tid < 4 {
//!             let x = lane.ld_global(input, tid);
//!             lane.st_global(output, tid, x * 10);
//!         }
//!     });
//! }).unwrap();
//!
//! assert_eq!(mem.read_back(output), vec![10, 20, 30, 40]);
//! assert!(stats.counters.global_load_requests > 0);
//! ```

mod cost;
mod counters;
mod device;
mod error;
mod exec;
mod lint;
mod mem;
mod race;
mod sanitize;
mod schedule;
mod trace;

pub use cost::CostModel;
pub use counters::{LaunchStats, ProfileCounters};
pub use device::{Device, DeviceConfig};
pub use error::SimError;
pub use exec::{global_thread_id, BlockCtx, BlockScratch, KernelConfig, LaneCtx};
pub use lint::{Diag, LintConfig, LintReport, LintRule};
pub use mem::{BufId, DeviceMem};
pub use race::RaceKind;
pub use sanitize::SanitizerKind;
pub use schedule::schedule_blocks;
pub use trace::Op;

/// Number of lanes in a warp, the fundamental SIMT execution unit.
pub const WARP_SIZE: usize = 32;

/// Bytes per DRAM sector; a warp-level load that touches `k` distinct
/// sectors performs `k` transactions (the `gld_transactions_per_request`
/// numerator).
pub const SECTOR_BYTES: u64 = 32;

/// Number of shared-memory banks (word-interleaved, as on Volta/Ada).
pub const SHARED_BANKS: usize = 32;
