//! Report formatting: ASCII tables and per-figure series extraction from
//! a run matrix. The tc-bench binaries print exactly the rows/series the
//! paper's tables and figures report.

use std::collections::BTreeMap;

use crate::framework::runner::{RunOutcome, RunRecord};

/// V100 boost clock, used only to render modelled cycles as a familiar
/// "milliseconds" scale.
pub const V100_CLOCK_GHZ: f64 = 1.38;

/// Render modelled device cycles as milliseconds at the V100 clock.
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / (V100_CLOCK_GHZ * 1e6)
}

/// Human-readable count with K/M/B suffix (Table II style).
pub fn human_count(n: u64) -> String {
    match n {
        0..=999 => n.to_string(),
        1_000..=999_999 => format!("{:.1}K", n as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", n as f64 / 1e6),
        _ => format!("{:.1}B", n as f64 / 1e9),
    }
}

/// Speedup of `ours` over `baseline` (both times; higher = faster us).
pub fn speedup(baseline: f64, ours: f64) -> f64 {
    if ours == 0.0 {
        return f64::INFINITY;
    }
    baseline / ours
}

/// Minimal fixed-width ASCII table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    s.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    s.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            s
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// A run matrix reorganized for figure emission: values addressable by
/// (algorithm, dataset).
pub struct MatrixView {
    cells: BTreeMap<(String, &'static str), RunOutcome>,
    pub algorithms: Vec<String>,
    pub datasets: Vec<&'static str>,
}

impl MatrixView {
    pub fn new(records: &[RunRecord]) -> Self {
        let mut cells = BTreeMap::new();
        let mut algorithms = Vec::new();
        let mut datasets = Vec::new();
        for r in records {
            if !algorithms.contains(&r.algorithm) {
                algorithms.push(r.algorithm.clone());
            }
            if !datasets.contains(&r.dataset) {
                datasets.push(r.dataset);
            }
            cells.insert((r.algorithm.clone(), r.dataset), r.outcome.clone());
        }
        MatrixView {
            cells,
            algorithms,
            datasets,
        }
    }

    pub fn outcome(&self, algo: &str, dataset: &str) -> Option<&RunOutcome> {
        self.cells
            .iter()
            .find(|((a, d), _)| a == algo && *d == dataset)
            .map(|(_, o)| o)
    }

    /// A numeric cell via an extractor; `None` for failed cells (the
    /// figure's red crosses).
    pub fn value<F: Fn(&RunOutcome) -> Option<f64>>(
        &self,
        algo: &str,
        dataset: &str,
        f: F,
    ) -> Option<f64> {
        self.outcome(algo, dataset).and_then(f)
    }

    /// Render one figure: rows = algorithms, columns = datasets, with a
    /// per-cell extractor; failed cells print as `x` (the red crosses).
    pub fn render_figure<F>(&self, title: &str, extract: F) -> String
    where
        F: Fn(&RunOutcome) -> Option<f64>,
    {
        let mut header = vec!["algorithm"];
        header.extend(self.datasets.iter().copied());
        let mut t = Table::new(&header);
        for algo in &self.algorithms {
            let mut row = vec![algo.clone()];
            for ds in &self.datasets {
                let cell = match self.outcome(algo, ds) {
                    Some(o) => match extract(o) {
                        Some(v) => format_sig(v),
                        None => "x".to_string(),
                    },
                    None => "-".to_string(),
                };
                row.push(cell);
            }
            t.row(row);
        }
        format!("{title}\n{}", t.render())
    }
}

/// Compact significant-figure formatting for figure cells.
pub fn format_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Summarize the measured host wall time of a sweep: total simulation
/// time plus the slowest cells (the ones worth parallelizing over). The
/// numbers are measured, not modelled — they vary run to run and are for
/// operator feedback, not for figures.
pub fn wall_summary(records: &[RunRecord], slowest: usize) -> String {
    let total: f64 = records.iter().map(|r| r.wall.as_secs_f64()).sum();
    let mut by_wall: Vec<&RunRecord> = records.iter().collect();
    by_wall.sort_by_key(|r| std::cmp::Reverse(r.wall));
    let mut out = format!(
        "host wall time: {:.2}s across {} cells",
        total,
        records.len()
    );
    for r in by_wall.iter().take(slowest) {
        // Tag non-sim cells so mixed sweeps stay readable; pure sim
        // summaries keep their historical shape.
        let tag = if r.backend == "sim" {
            String::new()
        } else {
            format!(" [{}]", r.backend)
        };
        out.push_str(&format!(
            "\n  {:>8.1} ms  {} / {}{}",
            r.wall.as_secs_f64() * 1e3,
            r.algorithm,
            r.dataset,
            tag
        ));
    }
    out
}

/// Extractors for the standard figures.
pub mod extract {
    use super::RunOutcome;

    /// Figure 11/15: modelled kernel time in ms.
    pub fn time_ms(o: &RunOutcome) -> Option<f64> {
        match o {
            RunOutcome::Ok { kernel_cycles, .. } => Some(super::cycles_to_ms(*kernel_cycles)),
            RunOutcome::Failed(_) => None,
        }
    }

    /// Figure 12: global load requests.
    pub fn load_requests(o: &RunOutcome) -> Option<f64> {
        match o {
            RunOutcome::Ok { counters, .. } => Some(counters.global_load_requests as f64),
            RunOutcome::Failed(_) => None,
        }
    }

    /// Figure 13(a): warp execution efficiency (%).
    pub fn warp_efficiency(o: &RunOutcome) -> Option<f64> {
        match o {
            RunOutcome::Ok { counters, .. } => Some(counters.warp_execution_efficiency() * 100.0),
            RunOutcome::Failed(_) => None,
        }
    }

    /// Figure 13(b): global-load transactions per request.
    pub fn tpr(o: &RunOutcome) -> Option<f64> {
        match o {
            RunOutcome::Ok { counters, .. } => Some(counters.gld_transactions_per_request()),
            RunOutcome::Failed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::ProfileCounters;

    fn ok_record(algo: &str, dataset: &'static str, cycles: u64) -> RunRecord {
        RunRecord {
            algorithm: algo.to_string(),
            dataset,
            backend: "sim",
            outcome: RunOutcome::Ok {
                triangles: 1,
                kernel_cycles: cycles,
                counters: ProfileCounters::default(),
                verified: true,
            },
            partition: None,
            wall: std::time::Duration::from_millis(cycles),
        }
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(43_000), "43.0K");
        assert_eq!(human_count(2_400_000), "2.4M");
        assert_eq!(human_count(1_800_000_000), "1.8B");
    }

    #[test]
    fn speedups() {
        assert!((speedup(10.0, 5.0) - 2.0).abs() < 1e-12);
        assert!(speedup(1.0, 0.0).is_infinite());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_malformed_rows() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn matrix_view_organizes_and_renders() {
        let records = vec![
            ok_record("Polak", "ds1", 1000),
            ok_record("TRUST", "ds1", 500),
            RunRecord {
                algorithm: "H-INDEX".into(),
                dataset: "ds1",
                backend: "sim",
                outcome: RunOutcome::Failed(gpu_sim::SimError::KernelFault("boom".into())),
                partition: None,
                wall: std::time::Duration::ZERO,
            },
        ];
        let view = MatrixView::new(&records);
        assert_eq!(view.algorithms, vec!["Polak", "TRUST", "H-INDEX"]);
        assert_eq!(view.datasets, vec!["ds1"]);
        let fig = view.render_figure("Figure 11", extract::time_ms);
        assert!(fig.contains("Figure 11"));
        assert!(fig.contains('x'), "failed cell renders as a red cross");
        let polak = view.value("Polak", "ds1", extract::time_ms).unwrap();
        let trust = view.value("TRUST", "ds1", extract::time_ms).unwrap();
        assert!(polak > trust);
    }

    #[test]
    fn wall_summary_totals_and_ranks() {
        let records = vec![
            ok_record("Polak", "ds1", 1000),
            ok_record("TRUST", "ds1", 3000),
        ];
        let s = wall_summary(&records, 1);
        assert!(s.contains("4.00s across 2 cells"), "summary: {s}");
        // Only the slowest cell is listed.
        assert!(s.contains("TRUST"));
        assert!(!s.contains("Polak"));
        // Pure sim rows carry no backend tag.
        assert!(!s.contains('['), "summary: {s}");
    }

    #[test]
    fn wall_summary_tags_non_sim_cells() {
        let mut slow = ok_record("TRUST", "ds1", 3000);
        slow.backend = "cpu";
        let records = vec![ok_record("Polak", "ds1", 1000), slow];
        let s = wall_summary(&records, 2);
        assert!(s.contains("TRUST / ds1 [cpu]"), "summary: {s}");
        assert!(
            s.contains("Polak / ds1\n") || s.ends_with("Polak / ds1"),
            "summary: {s}"
        );
    }

    #[test]
    fn format_sig_ranges() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(12345.0), "12345");
        assert_eq!(format_sig(56.78), "56.8");
        assert_eq!(format_sig(1.2345), "1.234");
    }
}
