//! Property tests of the simulator's accounting: whatever a kernel does,
//! the profiling identities must hold and replay must be deterministic.

use proptest::prelude::*;

use gpu_sim::{Device, DeviceMem, KernelConfig, LaunchStats};

/// A tiny random "program": per lane, a mix of ops driven by the lane id
/// and two parameters.
fn run_program(block_dim: u32, grid_dim: u32, stride: usize, work: u32) -> LaunchStats {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let data = mem.alloc_zeroed(1 << 16, "data").unwrap();
    let counter = mem.alloc_zeroed(16, "counter").unwrap();
    let cfg = KernelConfig::new(grid_dim, block_dim).with_shared_words(64);
    dev.launch(&mem, cfg, |blk| {
        blk.phase(|lane| {
            let t = lane.global_tid() as usize;
            for i in 0..(work as usize) {
                let idx = (t * stride + i * 97) % (1 << 16);
                let v = lane.ld_global(data, idx);
                lane.compute(1 + (v % 3));
                if i % 7 == 0 {
                    lane.st_global(data, (idx + 1) % (1 << 16), v + 1);
                }
                if i % 11 == 0 {
                    lane.atomic_add_global(counter, t % 16, 1);
                }
            }
            lane.st_shared((lane.tid() % 64) as usize, 1);
            let _ = lane.ld_shared((lane.tid() % 64) as usize);
        });
    })
    .unwrap()
}

/// The accounting identities every launch must satisfy, shared by the
/// property below and the pinned historical failures at the bottom.
fn check_accounting_identities(block_dim: u32, grid: u32, stride: usize, work: u32) {
    let s = run_program(block_dim, grid, stride, work);
    let c = &s.counters;
    // Efficiency in (0, 1].
    let eff = c.warp_execution_efficiency();
    assert!(eff > 0.0 && eff <= 1.0, "eff {eff}");
    // No slot can have more than a warp of active threads.
    assert!(c.active_thread_slots <= c.issued_slots * 32);
    // A load request needs at most 32 transactions (one per lane).
    assert!(c.gld_transactions <= c.global_load_requests * 32);
    assert!(c.gst_transactions <= c.global_store_requests * 32);
    // Kernel time can never beat either the per-block critical path
    // spread over all slots or the DRAM floor.
    assert!(
        s.kernel_cycles * (80 * 32) + 1 > s.total_block_cycles,
        "makespan {} vs total {}",
        s.kernel_cycles,
        s.total_block_cycles
    );
    // DRAM misses are a subset of the wavefront transactions, and
    // kernel time can never beat the DRAM floor over the misses.
    assert!(c.dram_load_sectors <= c.gld_transactions);
    let sectors = c.dram_load_sectors + c.gst_transactions + c.global_atomic_requests;
    assert!(s.kernel_cycles >= sectors / 20);
    assert_eq!(s.blocks, grid as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accounting_identities_hold(
        block_pow in 0u32..6,
        grid in 1u32..20,
        stride in 1usize..600,
        work in 0u32..40,
    ) {
        let block_dim = 32 << block_pow; // 32..=1024
        check_accounting_identities(block_dim, grid, stride, work);
    }

    #[test]
    fn launches_are_deterministic(
        grid in 1u32..16,
        stride in 1usize..300,
        work in 1u32..30,
    ) {
        let a = run_program(64, grid, stride, work);
        let b = run_program(64, grid, stride, work);
        prop_assert_eq!(a.kernel_cycles, b.kernel_cycles);
        prop_assert_eq!(a.total_block_cycles, b.total_block_cycles);
        prop_assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn atomic_sums_are_exact_under_concurrency(
        grid in 1u32..32,
        block_pow in 0u32..5,
    ) {
        let block_dim = 32u32 << block_pow;
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let counter = mem.alloc_zeroed(1, "counter").unwrap();
        dev.launch(&mem, KernelConfig::new(grid, block_dim), |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(counter, 0, 1);
            });
        })
        .unwrap();
        prop_assert_eq!(mem.read_back(counter)[0], grid * block_dim);
    }

    #[test]
    fn wider_strides_never_reduce_transactions(work in 1u32..24) {
        // Same op count; scattering addresses more can only increase the
        // sector traffic.
        let narrow = run_program(64, 4, 1, work);
        let wide = run_program(64, 4, 512, work);
        prop_assert!(
            wide.counters.gld_transactions >= narrow.counters.gld_transactions
        );
    }
}

// Historical shrunk failures from `proptest_sim.proptest-regressions`.
// The vendored proptest stand-in does not consume that file, so the two
// recorded cases are pinned here as always-run regression tests (and kept
// deterministic across repeated runs, since the second case's original
// failure mode was cross-block interleaving dependent).

#[test]
fn regression_block128_grid1_work0() {
    // cc c03123a9… : block_pow = 2, grid = 1, stride = 1, work = 0
    check_accounting_identities(32 << 2, 1, 1, 0);
}

#[test]
fn regression_block1024_grid13_stride48_work2() {
    // cc b114c230… : block_pow = 5, grid = 13, stride = 48, work = 2
    check_accounting_identities(32 << 5, 13, 48, 2);
    let a = run_program(32 << 5, 13, 48, 2);
    for _ in 0..4 {
        let b = run_program(32 << 5, 13, 48, 2);
        assert_eq!(a.kernel_cycles, b.kernel_cycles);
        assert_eq!(a.total_block_cycles, b.total_block_cycles);
        assert_eq!(a.counters, b.counters);
    }
}
