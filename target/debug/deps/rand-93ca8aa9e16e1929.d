/root/repo/target/debug/deps/rand-93ca8aa9e16e1929.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-93ca8aa9e16e1929.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-93ca8aa9e16e1929.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
