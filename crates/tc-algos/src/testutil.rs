//! Shared test fixtures for the algorithm modules.

use gpu_sim::{Device, DeviceMem};
use graph_data::{clean_edges, cpu_ref, gen, orient, DagGraph, EdgeList, Orientation};

use crate::api::TcAlgorithm;
use crate::device_graph::DeviceGraph;

/// The paper's Figure 1(a) graph (5 triangles).
pub fn figure1_edges() -> EdgeList {
    EdgeList::new(vec![
        (0, 1),
        (0, 5),
        (1, 2),
        (1, 3),
        (1, 4),
        (2, 3),
        (2, 4),
        (2, 5),
        (3, 4),
        (4, 5),
    ])
}

/// Run `algo` on `edges` under `orientation` and assert it matches the
/// CPU Forward reference. Returns the count.
pub fn assert_matches_reference(
    algo: &dyn TcAlgorithm,
    edges: &EdgeList,
    orientation: Orientation,
) -> u64 {
    let (g, _) = clean_edges(edges);
    let dag = orient(&g, orientation);
    let expected = cpu_ref::forward_merge(&dag);
    let out = run_on_dag(algo, &dag);
    assert_eq!(
        out,
        expected,
        "{} disagrees with reference on {} vertices / {} edges ({orientation:?})",
        algo.name(),
        g.num_vertices(),
        g.num_edges()
    );
    out
}

/// Upload a DAG and run the algorithm end to end on a fresh V100, with
/// the data-race detector and SimSan forced on — every fixture-based
/// kernel test doubles as a race-freedom, memory-state and leak check.
pub fn run_on_dag(algo: &dyn TcAlgorithm, dag: &DagGraph) -> u64 {
    let dev = Device::v100().with_race_detection().with_sanitizer();
    let mut mem = DeviceMem::new(&dev);
    let dg = DeviceGraph::upload(dag, &mut mem).expect("upload");
    let triangles = algo.count(&dev, &mut mem, &dg).expect("count").triangles;
    dg.free(&mut mem).expect("free device graph");
    mem.leak_check().expect("algorithm leaked device buffers");
    triangles
}

/// A batch of structurally diverse small graphs every algorithm must get
/// exactly right, under its preferred orientation.
pub fn exhaustive_small_graph_check(algo: &dyn TcAlgorithm) {
    let orientation = algo.preferred_orientation();
    // Figure 1.
    assert_matches_reference(algo, &figure1_edges(), orientation);
    // Complete graph K7.
    let mut k7 = Vec::new();
    for u in 0..7u32 {
        for v in (u + 1)..7 {
            k7.push((u, v));
        }
    }
    assert_matches_reference(algo, &EdgeList::new(k7), orientation);
    // Path (triangle-free).
    assert_matches_reference(
        algo,
        &EdgeList::new((0..20u32).map(|i| (i, i + 1)).collect()),
        orientation,
    );
    // Star (triangle-free, maximally skewed degrees).
    assert_matches_reference(
        algo,
        &EdgeList::new((1..40u32).map(|i| (0, i)).collect()),
        orientation,
    );
    // Hub with a fringe of triangles (skew + triangles).
    let mut hub = Vec::new();
    for i in 1..30u32 {
        hub.push((0, i));
    }
    for i in (1..28u32).step_by(2) {
        hub.push((i, i + 1));
    }
    assert_matches_reference(algo, &EdgeList::new(hub), orientation);
    // Two disconnected triangles plus an isolated edge.
    assert_matches_reference(
        algo,
        &EdgeList::new(vec![
            (0, 1),
            (1, 2),
            (0, 2),
            (5, 6),
            (6, 7),
            (5, 7),
            (10, 11),
        ]),
        orientation,
    );
    // Random graphs from each generator family.
    assert_matches_reference(
        algo,
        &gen::rmat(9, 4000, 0.57, 0.19, 0.19, 0.05, 17),
        orientation,
    );
    assert_matches_reference(algo, &gen::barabasi_albert(300, 4, 0.6, 18), orientation);
    assert_matches_reference(algo, &gen::watts_strogatz(200, 3, 0.2, 19), orientation);
    assert_matches_reference(algo, &gen::road_grid(15, 15, 0.85, 0.3, 20), orientation);
    assert_matches_reference(algo, &gen::erdos_renyi(150, 900, 21), orientation);
}
