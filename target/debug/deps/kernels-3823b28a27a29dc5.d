/root/repo/target/debug/deps/kernels-3823b28a27a29dc5.d: crates/tc-bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-3823b28a27a29dc5.rmeta: crates/tc-bench/benches/kernels.rs Cargo.toml

crates/tc-bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
