/root/repo/target/debug/deps/future_work-1034a42b6eaed8a5.d: crates/tc-bench/src/bin/future_work.rs

/root/repo/target/debug/deps/future_work-1034a42b6eaed8a5: crates/tc-bench/src/bin/future_work.rs

crates/tc-bench/src/bin/future_work.rs:
