//! Regenerates Table II: the 19 datasets with vertex count, edge count
//! and average degree — for both the paper's SNAP originals and the
//! synthetic stand-ins this reproduction actually runs, so the scale
//! substitution is visible at a glance.

use graph_data::GraphStats;
use tc_core::framework::report::{human_count, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets = tc_bench::datasets_from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let mut t = Table::new(&[
        "dataset",
        "paper V",
        "paper E",
        "paper deg",
        "stand-in V",
        "stand-in E",
        "stand-in deg",
        "max deg",
    ]);
    for spec in &datasets {
        tc_bench::eprint_progress(&format!("building {}", spec.name));
        let g = spec.build();
        let s = GraphStats::compute(&g);
        t.row(vec![
            spec.name.to_string(),
            human_count(spec.paper_vertices),
            human_count(spec.paper_edges),
            format!("{:.1}", spec.paper_avg_degree),
            human_count(s.vertices as u64),
            human_count(s.edges),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
        ]);
    }
    println!("TABLE II: DATASETS (paper SNAP originals vs synthetic stand-ins)");
    println!("{}", t.render());
}
