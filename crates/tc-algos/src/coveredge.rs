//! Bader et al. (2024) — "Cover edge based novel triangle counting"
//! (arXiv 2403.02997).
//!
//! Every triangle's three vertices span at most two adjacent BFS levels,
//! so at least one of its edges is *horizontal* (both endpoints on the
//! same level): the horizontal edges form a **cover set**, and scanning
//! only them finds every triangle. The algorithm runs a linear-work BFS
//! prepass to label levels and emit the cover list, then intersects the
//! *undirected* neighbour lists of each cover edge — typically a small
//! fraction of the edge set on low-diameter graphs.
//!
//! A triangle whose three vertices share one level has three cover
//! edges; the dedup rule counts it only at its lexicographically
//! smallest one. With the cover edge normalized as `(u, v)`, `u < v`,
//! and `w` the common neighbour, that collapses to: count when `w`'s
//! level differs (the other two edges are wing edges, not cover), or
//! when `w > v` (all three horizontal, and `(u, v)` is the smallest
//! pair).
//!
//! Unlike the oriented counters, the kernel works on the symmetrized
//! graph — the BFS prepass replaces the orientation prepass, so the
//! count is identical under every [`Orientation`]. The level/cover
//! construction is host work (like Fox's workload binning); the timed
//! kernel is one coarse thread per cover edge doing a two-pointer merge.

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};
use graph_data::{DagGraph, Orientation};
use rayon::prelude::*;

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

const BLOCK_DIM: u32 = 256;

/// The cover-edge algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoverEdge;

/// Host prepass output: the symmetrized CSR, per-vertex BFS levels and
/// the normalized (`src < dst`) cover-edge list.
pub struct CoverPlan {
    pub und_offsets: Vec<u32>,
    pub und_targets: Vec<u32>,
    pub levels: Vec<u32>,
    pub cover_src: Vec<u32>,
    pub cover_dst: Vec<u32>,
    /// Index of the input edge each cover edge came from (edge-scan
    /// order) — the ownership key multi-device partitioning splits on.
    pub cover_origin: Vec<u32>,
}

/// Build the cover plan from one direction of each undirected edge
/// (duplicate-free, no self-loops — the cleaned-graph invariants).
pub fn cover_plan(num_vertices: u32, src: &[u32], dst: &[u32]) -> CoverPlan {
    let nv = num_vertices as usize;

    // Symmetrize into a sorted undirected CSR.
    let mut deg = vec![0u32; nv];
    for (&u, &v) in src.iter().zip(dst) {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut und_offsets = vec![0u32; nv + 1];
    for i in 0..nv {
        und_offsets[i + 1] = und_offsets[i] + deg[i];
    }
    let mut und_targets = vec![0u32; 2 * src.len()];
    let mut cursor = und_offsets[..nv].to_vec();
    for (&u, &v) in src.iter().zip(dst) {
        und_targets[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
        und_targets[cursor[v as usize] as usize] = u;
        cursor[v as usize] += 1;
    }
    for i in 0..nv {
        und_targets[und_offsets[i] as usize..und_offsets[i + 1] as usize].sort_unstable();
    }

    // BFS levels, one tree per component (roots in id order).
    const UNSEEN: u32 = u32::MAX;
    let mut levels = vec![UNSEEN; nv];
    let mut queue = Vec::new();
    for root in 0..nv {
        if levels[root] != UNSEEN {
            continue;
        }
        levels[root] = 0;
        queue.clear();
        queue.push(root as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            let next = levels[u] + 1;
            for &w in &und_targets[und_offsets[u] as usize..und_offsets[u + 1] as usize] {
                if levels[w as usize] == UNSEEN {
                    levels[w as usize] = next;
                    queue.push(w);
                }
            }
        }
    }

    // Cover set: the horizontal edges, endpoints normalized.
    let mut cover_src = Vec::new();
    let mut cover_dst = Vec::new();
    let mut cover_origin = Vec::new();
    for (e, (&u, &v)) in src.iter().zip(dst).enumerate() {
        if levels[u as usize] == levels[v as usize] {
            cover_src.push(u.min(v));
            cover_dst.push(u.max(v));
            cover_origin.push(e as u32);
        }
    }

    CoverPlan {
        und_offsets,
        und_targets,
        levels,
        cover_src,
        cover_dst,
        cover_origin,
    }
}

/// Count the triangles a single cover edge `(u, v)` owns: common
/// neighbours `w` in the sorted undirected lists, filtered by the
/// lexicographic dedup rule.
fn count_cover_edge(plan: &CoverPlan, u: u32, v: u32) -> u64 {
    let a = &plan.und_targets
        [plan.und_offsets[u as usize] as usize..plan.und_offsets[u as usize + 1] as usize];
    let b = &plan.und_targets
        [plan.und_offsets[v as usize] as usize..plan.und_offsets[v as usize + 1] as usize];
    let lu = plan.levels[u as usize];
    let (mut i, mut j) = (0, 0);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                let w = a[i];
                if plan.levels[w as usize] != lu || w > v {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    count
}

impl TcAlgorithm for CoverEdge {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "CoverEdge",
            reference: "Bader et al., arXiv 2403.02997",
            year: 2024,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Merge,
            granularity: Granularity::Coarse,
        }
    }

    /// The BFS prepass ignores edge direction, so orientation only
    /// changes vertex labels; plain id order skips the degree sort.
    fn preferred_orientation(&self) -> Orientation {
        Orientation::ById
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        // Host prepass, from the planning mirrors (CPU work — real
        // implementations run the linear BFS before the timed kernel).
        let mut plan = cover_plan(g.num_vertices, &g.host_src, &g.host_dst);
        if (g.edge_lo, g.edge_hi) != (0, g.num_edges) {
            // Multi-device run: this device owns the cover edges whose
            // originating edge falls in its range. Each triangle has
            // exactly one owning cover edge, so device counts sum to the
            // single-device total.
            let keep: Vec<usize> = plan
                .cover_origin
                .iter()
                .enumerate()
                .filter(|&(_, &e)| g.edge_lo <= e && e < g.edge_hi)
                .map(|(i, _)| i)
                .collect();
            plan.cover_src = keep.iter().map(|&i| plan.cover_src[i]).collect();
            plan.cover_dst = keep.iter().map(|&i| plan.cover_dst[i]).collect();
        }
        let n_cover = plan.cover_src.len() as u32;
        if plan.cover_src.is_empty() {
            // Keep the launch non-empty on cover-free graphs (paths,
            // stars): one self-loop sentinel the kernel skips.
            plan.cover_src.push(0);
            plan.cover_dst.push(0);
        }
        if plan.und_targets.is_empty() {
            plan.und_targets.push(0);
        }
        if plan.levels.is_empty() {
            plan.levels.push(0);
        }

        let und_offsets = mem.alloc_from_slice(&plan.und_offsets, "cover.und_offsets")?;
        let und_targets = mem.alloc_from_slice(&plan.und_targets, "cover.und_targets")?;
        let levels = mem.alloc_from_slice(&plan.levels, "cover.levels")?;
        let cover_src = mem.alloc_from_slice(&plan.cover_src, "cover.src")?;
        let cover_dst = mem.alloc_from_slice(&plan.cover_dst, "cover.dst")?;
        let counter = mem.alloc_zeroed(1, "cover.counter")?;

        let n_launch = plan.cover_src.len() as u32;
        let grid = n_launch.div_ceil(BLOCK_DIM).max(1);
        let cfg = KernelConfig::new(grid, BLOCK_DIM);

        let stats = dev.launch(mem, cfg, |blk| {
            blk.phase(|lane| {
                let e = lane.global_tid();
                let mut local = 0u32;
                lane.compute(1);
                if e < n_cover as u64 {
                    let e = e as usize;
                    let u = lane.ld_global(cover_src, e);
                    let v = lane.ld_global(cover_dst, e);
                    let lu = lane.ld_global(levels, u as usize);
                    let mut i = lane.ld_global(und_offsets, u as usize);
                    let u_end = lane.ld_global(und_offsets, u as usize + 1);
                    let mut j = lane.ld_global(und_offsets, v as usize);
                    let v_end = lane.ld_global(und_offsets, v as usize + 1);
                    // Two-pointer merge of the sorted undirected lists.
                    if i < u_end && j < v_end {
                        let mut a = lane.ld_global(und_targets, i as usize);
                        let mut b = lane.ld_global(und_targets, j as usize);
                        loop {
                            lane.compute(1);
                            match a.cmp(&b) {
                                std::cmp::Ordering::Equal => {
                                    let lw = lane.ld_global(levels, a as usize);
                                    if lw != lu || a > v {
                                        local += 1;
                                    }
                                    i += 1;
                                    j += 1;
                                    if i >= u_end || j >= v_end {
                                        break;
                                    }
                                    a = lane.ld_global(und_targets, i as usize);
                                    b = lane.ld_global(und_targets, j as usize);
                                }
                                std::cmp::Ordering::Less => {
                                    i += 1;
                                    if i >= u_end {
                                        break;
                                    }
                                    a = lane.ld_global(und_targets, i as usize);
                                }
                                std::cmp::Ordering::Greater => {
                                    j += 1;
                                    if j >= v_end {
                                        break;
                                    }
                                    b = lane.ld_global(und_targets, j as usize);
                                }
                            }
                        }
                    }
                }
                warp_reduce_add(lane, counter, 0, local);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        mem.free(cover_dst)?;
        mem.free(cover_src)?;
        mem.free(levels)?;
        mem.free(und_targets)?;
        mem.free(und_offsets)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: the same BFS/cover prepass, then one rayon task per
    /// cover edge merging the undirected lists.
    fn count_cpu(&self, dag: &DagGraph) -> u64 {
        let (src, dst) = dag.edge_arrays();
        let plan = cover_plan(dag.num_vertices(), &src, &dst);
        (0..plan.cover_src.len() as u32)
            .into_par_iter()
            .map(|e| {
                count_cover_edge(
                    &plan,
                    plan.cover_src[e as usize],
                    plan.cover_dst[e as usize],
                )
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use graph_data::{clean_edges, cpu_ref, orient, EdgeList};

    #[test]
    fn bfs_levels_differ_by_at_most_one_across_edges() {
        let edges = graph_data::gen::rmat(7, 600, 0.45, 0.22, 0.22, 0.11, 5);
        let (g, _) = clean_edges(&edges);
        let dag = orient(&g, Orientation::ById);
        let (src, dst) = dag.edge_arrays();
        let plan = cover_plan(dag.num_vertices(), &src, &dst);
        for (&u, &v) in src.iter().zip(&dst) {
            let (lu, lv) = (plan.levels[u as usize], plan.levels[v as usize]);
            assert!(lu.abs_diff(lv) <= 1, "edge ({u},{v}): levels {lu},{lv}");
        }
    }

    #[test]
    fn cover_set_is_the_horizontal_edges_and_normalized() {
        let (g, _) = clean_edges(&testutil::figure1_edges());
        let dag = orient(&g, Orientation::ById);
        let (src, dst) = dag.edge_arrays();
        let plan = cover_plan(dag.num_vertices(), &src, &dst);
        let horizontal = src
            .iter()
            .zip(&dst)
            .filter(|&(&u, &v)| plan.levels[u as usize] == plan.levels[v as usize])
            .count();
        assert_eq!(plan.cover_src.len(), horizontal);
        for (&u, &v) in plan.cover_src.iter().zip(&plan.cover_dst) {
            assert!(u < v);
            assert_eq!(plan.levels[u as usize], plan.levels[v as usize]);
        }
    }

    #[test]
    fn counts_figure1_graph() {
        let n = testutil::assert_matches_reference(
            &CoverEdge,
            &testutil::figure1_edges(),
            Orientation::DegreeAsc,
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn exhaustive_small_graphs() {
        testutil::exhaustive_small_graph_check(&CoverEdge);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            testutil::assert_matches_reference(&CoverEdge, &testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn cover_free_graph_still_burns_cycles() {
        // A path has no horizontal edges at all: the sentinel keeps the
        // launch alive so the runner's dead-kernel check stays meaningful.
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (2, 3)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        let out = CoverEdge.count(&dev, &mut mem, &dg).unwrap();
        assert_eq!(out.triangles, 0);
        assert!(out.stats.kernel_cycles > 0);
        dg.free(&mut mem).unwrap();
        assert!(mem.leak_check().is_ok());
    }

    #[test]
    fn cpu_kernel_matches_oracle_on_generators() {
        for (label, edges) in [
            (
                "rmat",
                graph_data::gen::rmat(8, 2500, 0.57, 0.19, 0.19, 0.05, 41),
            ),
            ("er", graph_data::gen::erdos_renyi(150, 900, 42)),
            ("ws", graph_data::gen::watts_strogatz(180, 6, 0.1, 43)),
        ] {
            let (g, _) = clean_edges(&edges);
            let expected = cpu_ref::node_iterator(&g);
            let dag = orient(&g, Orientation::ById);
            assert_eq!(CoverEdge.count_cpu(&dag), expected, "{label}");
        }
    }

    #[test]
    fn metadata_row() {
        let m = CoverEdge.meta();
        assert_eq!(m.year, 2024);
        assert_eq!(m.iterator, IteratorKind::Edge);
        assert_eq!(m.intersection, Intersection::Merge);
        assert_eq!(m.granularity, Granularity::Coarse);
    }
}
