/root/repo/target/release/deps/fig13b-d1a4956271da5d6b.d: crates/tc-bench/src/bin/fig13b.rs

/root/repo/target/release/deps/fig13b-d1a4956271da5d6b: crates/tc-bench/src/bin/fig13b.rs

crates/tc-bench/src/bin/fig13b.rs:
